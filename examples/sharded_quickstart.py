"""Sharded scatter-gather engine in five minutes.

Builds a clustered geo-social dataset, partitions it across four
spatial shards, and shows the three promises of `repro.shard`:

1. rankings are identical to the single engine (the equivalence the
   property suite pins);
2. the shard-level MINF bound prunes provably non-contributing shards;
3. updates route across shards — a boundary-crossing move re-homes the
   user, and the serving layer's cache invalidation works unchanged.

Run:  PYTHONPATH=src python examples/sharded_quickstart.py
"""

from repro import GeoSocialEngine, gowalla_like
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine


def main() -> None:
    dataset = gowalla_like(n=1500, seed=11)
    single = GeoSocialEngine.from_dataset(dataset)
    sharded = ShardedGeoSocialEngine(
        dataset.graph,
        dataset.locations,
        n_shards=4,
        landmarks=single.landmarks,          # share the built tables
        normalization=single.normalization,  # identical scoring
    )
    print(f"engine : {single!r}")
    print(f"sharded: {sharded!r}")
    print(f"active backend: {sharded.backend} (kernels: {type(sharded.kernels).__name__})")
    print(f"shard populations: {sharded.shard_sizes()}")

    # 1. identical rankings, shard pruning at work
    query_user = next(iter(single.located_users()))
    a = single.query(query_user, k=10, alpha=0.3, method="ais")
    b = sharded.query(query_user, k=10, alpha=0.3, method="ais")
    assert a.users == b.users
    print(f"\ntop-10 around user {query_user} (alpha=0.3): {b.users}")
    print(
        f"identical to the single engine: {a.users == b.users}; "
        f"shards searched {b.stats.extra['shards_searched']}, "
        f"pruned {b.stats.extra['shards_pruned']}"
    )

    # 2. serve traffic through the same QueryService, cache included
    with QueryService(sharded, max_workers=2, cache_size=256) as service:
        users = list(sharded.locations.located_users())[:32]
        responses = service.query_many([QueryRequest(u, k=10) for u in users])
        print(f"\nserved a {len(responses)}-request batch through QueryService")

        # 3. a boundary-crossing move: old shard evicts, new shard serves
        mover = users[0]
        before = sharded.shard_of_user(mover)
        service.query(QueryRequest(mover, k=10))          # warm the cache
        hit = service.query(QueryRequest(mover, k=10))
        x, y = sharded.locations.get(mover)
        service.move_user(mover, 1.0 - x, 1.0 - y)        # across the map
        after = sharded.shard_of_user(mover)
        refreshed = service.query(QueryRequest(mover, k=10))
        print(
            f"user {mover} moved shard {before} -> {after}; "
            f"cached before move: {hit.cached}, after move: {refreshed.cached}"
        )
        assert hit.cached and not refreshed.cached

    print(f"\ncumulative scatter stats: {sharded.scatter_info()}")
    sharded.close()


if __name__ == "__main__":
    main()
