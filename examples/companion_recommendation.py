#!/usr/bin/env python3
"""Lunch-companion recommendation — the paper's motivating scenario.

A user of a badoo.com-style service wants company for lunch.  Pure
spatial k-NN recommends whoever is nearest; SSRQ additionally weighs
how close candidates are in the social graph, so a slightly-farther
friend-of-a-friend beats an unknown neighbour (Figure 1 of the paper).

This example builds a small city: a downtown core where everyone is
spatially close, plus the query user's social circle spread around
town, and contrasts the pure-spatial recommendation with SSRQ.

Run:  python examples/companion_recommendation.py
"""

import random

from repro import GeoSocialEngine, LocationTable, SocialGraph

rng = random.Random(4)

# --- Build the scenario ----------------------------------------------------
# User 0 is our diner.  Users 1-10 are their social circle (friends and
# friends-of-friends); users 11-199 are strangers downtown.
n = 200
edges = []
# Tight social circle: a small community around user 0.
for friend in range(1, 6):
    edges.append((0, friend, 0.1))  # strong direct ties
for fof in range(6, 11):
    edges.append((rng.randint(1, 5), fof, 0.15))  # friends-of-friends
# Strangers form their own random society, far from user 0 socially.
for _ in range(600):
    u, v = rng.randint(11, n - 1), rng.randint(11, n - 1)
    if u != v:
        edges.append((u, v, rng.uniform(0.2, 1.0)))
# A couple of weak bridges so the graph is connected.
edges.append((5, 11, 1.0))
edges.append((9, 42, 1.0))

graph = SocialGraph.from_edges(n, edges)

locations = LocationTable.empty(n)
locations.set(0, 0.50, 0.50)  # the diner, downtown
# Strangers: all packed downtown (spatially nearest).
for u in range(11, n):
    locations.set(u, rng.gauss(0.50, 0.02), rng.gauss(0.50, 0.02))
# The social circle: scattered a bit farther out.
for u in range(1, 11):
    locations.set(u, rng.gauss(0.56, 0.03), rng.gauss(0.44, 0.03))

engine = GeoSocialEngine(graph, locations, num_landmarks=4, s=5)

# --- Compare recommendations ----------------------------------------------
def describe(user: int) -> str:
    return "social circle" if 1 <= user <= 10 else "stranger"


print("Pure spatial k-NN (alpha = 0): whoever is physically nearest")
for nb in engine.query(0, k=5, alpha=0.0):
    print(f"  user {nb.user:>3}  d={nb.spatial:.3f}  ({describe(nb.user)})")

print("\nSSRQ (alpha = 0.5): jointly near in space AND in the social graph")
for nb in engine.query(0, k=5, alpha=0.5):
    print(
        f"  user {nb.user:>3}  f={nb.score:.3f}  d={nb.spatial:.3f} "
        f" p={nb.social:.3f}  ({describe(nb.user)})"
    )

spatial_only = set(engine.query(0, k=5, alpha=0.0).users)
ssrq = set(engine.query(0, k=5, alpha=0.5).users)
circle = set(range(1, 11))
print(
    f"\nsocial-circle members recommended: "
    f"spatial-only {len(spatial_only & circle)}/5, SSRQ {len(ssrq & circle)}/5"
)
