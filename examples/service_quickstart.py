#!/usr/bin/env python3
"""Serving SSRQ traffic: batching, worker-pool concurrency, and the
update-aware result cache.

The engine answers one query at a time; `repro.service.QueryService`
turns it into a traffic-serving component.  This example drives a
Zipf-skewed arrival stream (hot users dominate, as in real check-in
workloads) through the service, shows the cache paying for repeats,
then moves a user and shows the invalidation evicting exactly the
affected entries while every served answer stays correct.

Run:  python examples/service_quickstart.py
"""

import time

from repro import GeoSocialEngine, gowalla_like
from repro.bench.service_workload import zipf_arrivals
from repro.service import QueryRequest, QueryService

dataset = gowalla_like(n=2_000, seed=7)
engine = GeoSocialEngine.from_dataset(dataset)
located = list(engine.located_users())

# --- Skewed traffic through the service -------------------------------------
arrivals = zipf_arrivals(located, count=400, skew=1.1, seed=3)
requests = [QueryRequest(user=u, k=10, alpha=0.3, method="ais") for u in arrivals]

with QueryService(engine, max_workers=4, cache_size=2048) as service:
    start = time.perf_counter()
    for lo in range(0, len(requests), 64):
        batch = requests[lo : lo + 64]
        responses = service.query_many(batch)
        assert [r.request.user for r in responses] == [q.user for q in batch]
    elapsed = time.perf_counter() - start

    stats = service.stats
    print(
        f"served {stats.requests} queries in {elapsed:.2f}s "
        f"({stats.requests / elapsed:.0f} qps)"
    )
    print(
        f"cache hit rate: {stats.hit_rate:.1%}  "
        f"(hits={stats.cache_hits}, deduped in-batch={stats.deduplicated}, "
        f"executed={stats.executed})"
    )

    # --- Batched answers are exactly the sequential answers ------------------
    probe = [QueryRequest(user=u, k=5, alpha=0.5) for u in located[:8]]
    batched = service.query_many(probe)
    for response in batched:
        sequential = engine.query(response.request.user, k=5, alpha=0.5)
        assert response.result.users == sequential.users
    print("batched rankings identical to sequential engine.query: True")

    # --- A location update invalidates exactly what it must ------------------
    hot_user = arrivals[0]
    assert service.query(QueryRequest(user=hot_user, k=10, alpha=0.3)).cached
    cached_before = len(service.cache)
    service.move_user(hot_user, 0.05, 0.95)
    evicted = stats.invalidated_entries
    print(
        f"moved user {hot_user}: evicted {evicted} of {cached_before} "
        f"cached results (exact screening, no full flush)"
    )
    refreshed = service.query(QueryRequest(user=hot_user, k=10, alpha=0.3))
    assert not refreshed.cached, "the mover's cache line must be gone"
    truth = engine.query(hot_user, k=10, alpha=0.3, method="bruteforce")
    assert refreshed.result.users == truth.users
    print(f"fresh answer after the move verified against brute force: True")

    # --- A social-edge change flushes the cache (sound default) --------------
    service.update_edge(located[0], located[1], 0.01)
    print(
        f"edge update -> epoch-based full invalidation "
        f"(cache now {len(service.cache)} entries, epoch {service.cache.epoch})"
    )
