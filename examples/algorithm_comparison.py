#!/usr/bin/env python3
"""Side-by-side run of every SSRQ algorithm in the paper.

All methods return the same answer (Definition 1 has a unique score
multiset); they differ — hugely — in how much of the graph and the grid
they touch.  This example prints the paper's two cost metrics for each
method on the same query workload, a miniature of Figure 8.

Run:  python examples/algorithm_comparison.py
"""

import time

from repro import GeoSocialEngine, gowalla_like
from repro.core.engine import METHODS

dataset = gowalla_like(n=4_000, seed=7)
engine = GeoSocialEngine.from_dataset(dataset)

users = list(engine.located_users())[:10]
k, alpha = 20, 0.3

print(f"dataset: {dataset.stats()}")
print(f"workload: {len(users)} queries, k={k}, alpha={alpha}\n")

reference = None
print(f"{'method':>12} {'avg time':>10} {'pop ratio':>10} {'evals':>7}  result")
# "auto" rides along: the adaptive planner resolves it per query (the
# resolved pick lands on result.method) and must match everyone else.
for method in METHODS + ("auto",):
    if method in ("sfa-ch", "spa-ch", "tsa-ch"):
        continue  # CH preprocessing is worthwhile only for repeated use
    start = time.perf_counter()
    total_pops = 0
    total_evals = 0
    scores = None
    for user in users:
        result = engine.query(user, k=k, alpha=alpha, method=method, t=150)
        total_pops += result.stats.pops
        total_evals += result.stats.evaluations
        scores = [round(s, 9) for s in result.scores]
    elapsed = (time.perf_counter() - start) / len(users)
    if reference is None:
        reference = scores
        status = "(reference)"
    else:
        status = "identical" if scores == reference else "MISMATCH!"
    print(
        f"{method:>12} {elapsed * 1000:>8.1f}ms "
        f"{total_pops / len(users) / engine.graph.n:>10.3f} "
        f"{total_evals / len(users):>7.0f}  {status}"
    )

print(
    "\nReading guide: SFA/SPA explore one domain blindly; TSA bounds both"
    "\ndomains at once; AIS prunes whole index cells via social summaries"
    "\nand shares one forward Dijkstra across all exact evaluations"
    "\n(Sections 4-5 of the paper)."
)
