#!/usr/bin/env python3
"""Quickstart: build a geo-social dataset, index it, run SSRQ queries.

Run:  python examples/quickstart.py
"""

from repro import GeoSocialEngine, gowalla_like

# 1. A calibrated synthetic stand-in for the paper's Gowalla dataset
#    (power-law friendships, degree-product tie strengths, clustered
#    check-in locations, 54.4% of users with a known location).
dataset = gowalla_like(n=2_000, seed=7)
print(f"dataset: {dataset.stats()}")

# 2. The engine builds everything Section 5 of the paper needs: ALT
#    landmark tables (M=8), the SPA grid, and the aggregate index with
#    social summaries.
engine = GeoSocialEngine.from_dataset(dataset)
print(f"engine:  {engine}")

# 3. Ask a social-and-spatial ranking query (SSRQ): the top-10 users
#    around user 42 weighting social proximity 30% / spatial 70%.
query_user = next(iter(engine.located_users()))
result = engine.query(query_user, k=10, alpha=0.3, method="ais")

print(f"\ntop-{result.k} companions for user {query_user} (alpha={result.alpha}):")
print(f"{'user':>6} {'f-score':>10} {'social dist':>12} {'euclid dist':>12}")
for nb in result:
    print(f"{nb.user:>6} {nb.score:>10.4f} {nb.social:>12.4f} {nb.spatial:>12.4f}")

# 4. Each query reports the paper's cost metrics.
stats = result.stats
print(
    f"\ncost: {stats.pops} heap pops "
    f"(pop ratio {stats.pop_ratio(engine.graph.n):.3f}), "
    f"{stats.evaluations} exact graph-distance evaluations, "
    f"{stats.elapsed * 1000:.1f} ms"
)

# 5. Preference is a dial: alpha=0.9 asks for socially close users,
#    alpha=0.1 for spatially close ones.
social_first = engine.query(query_user, k=5, alpha=0.9).users
spatial_first = engine.query(query_user, k=5, alpha=0.1).users
print(f"\nalpha=0.9 (social) top-5:  {social_first}")
print(f"alpha=0.1 (spatial) top-5: {spatial_first}")
