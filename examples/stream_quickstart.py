#!/usr/bin/env python3
"""Continuous top-k subscriptions: standing queries maintained across
the update stream.

One-shot queries recompute from scratch; production traffic asks the
*same* questions continuously while everybody moves.  This example
registers a handful of standing queries with
`repro.stream.SubscriptionRegistry`, replays location updates, and
shows (a) the repair-aware result cache fixing entries in place when a
cached companion drifts, (b) the NO-OP / REPAIR / RECOMPUTE
classification doing almost all updates for free, and (c) every
maintained result staying exactly equal to a fresh recompute.

Run:  python examples/stream_quickstart.py
"""

import random
import time

from repro import GeoSocialEngine, gowalla_like
from repro.service import QueryService
from repro.stream import SubscriptionRegistry

dataset = gowalla_like(n=2_000, seed=7)
engine = GeoSocialEngine.from_dataset(dataset)
located = list(engine.located_users())

service = QueryService(engine, cache_size=1024)
registry = SubscriptionRegistry(service)

# --- Standing queries: "keep my top-10 companions current" ------------------
query_users = located[:8]
subs = [registry.subscribe(u, k=10, alpha=0.3, method="tsa") for u in query_users]
print(f"registered {len(subs)} standing queries (k=10, alpha=0.3, method=tsa)")

# Prime the (repair-aware) result cache with one-shot traffic too.
for u in located[:40]:
    service.query(u, k=10, alpha=0.3, method="tsa")

# --- Phase 1: cached companions drift — entries repair in place -------------
rng = random.Random(42)
watched = sorted({m for sub in subs for m in registry.result(sub).users})
for mover in watched[:30]:
    x, y = engine.locations.get(mover) or (rng.random(), rng.random())
    service.move_user(
        mover,
        min(1.0, max(0.0, x + rng.uniform(-0.002, 0.002))),
        min(1.0, max(0.0, y + rng.uniform(-0.002, 0.002))),
    )
info = service.cache_info()
print(
    f"30 cached companions drifted: {info['repaired']} cache entries repaired "
    f"in place, {info['reused']} proven reusable, {info['invalidated']} evicted"
)

# --- Phase 2: full-population churn -----------------------------------------
start = time.perf_counter()
for _ in range(500):
    mover = rng.randrange(engine.graph.n)
    x, y = engine.locations.get(mover) or (rng.random(), rng.random())
    if rng.random() < 0.9:  # mostly small jitter, occasionally a hop
        x = min(1.0, max(0.0, x + rng.uniform(-0.02, 0.02)))
        y = min(1.0, max(0.0, y + rng.uniform(-0.02, 0.02)))
    else:
        x, y = rng.random(), rng.random()
    service.move_user(mover, x, y)
applied = registry.flush()
elapsed = time.perf_counter() - start

stats = registry.stats
print(
    f"absorbed {stats.location_updates} updates in {elapsed:.2f}s: "
    f"{stats.noops} NO-OP, {stats.repair_marks} repair-marked, "
    f"{stats.recompute_marks} recompute-marked"
)
print(
    f"applied in batched passes: {stats.repairs_applied} repairs, "
    f"{stats.recomputes_applied} recomputes "
    f"({stats.maintained_fraction:.1%} of classifications avoided a recompute)"
)

# --- Maintained results are exactly fresh results ---------------------------
all_equal = all(
    [(nb.user, nb.score) for nb in registry.result(sub)]
    == [(nb.user, nb.score) for nb in engine.query(sub.user, 10, 0.3, "tsa")]
    for sub in subs
)
print(f"maintained results identical to fresh recompute: {all_equal}")

registry.close()
service.close()
