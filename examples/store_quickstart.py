#!/usr/bin/env python3
"""Durable snapshots and mmap warm-start: restart in O(read), not
O(rebuild).

An engine cold-starts by re-running landmark selection and M Dijkstra
sweeps; `engine.save(path)` persists the columnar data plane once —
checksummed `.npy` columns behind an atomically-renamed manifest — and
`load_engine(path)` memory-maps it back in a fraction of the time,
answering every query bit-identically.  This example times both paths,
shows the snapshot history a `QueryService` keeps through
`SnapshotManager` (update folding, crash-safe `CURRENT` pointer,
restore through the engine-swap path), and demonstrates the typed
corruption error a damaged snapshot raises.

Run:  python examples/store_quickstart.py
"""

import tempfile
import time
from pathlib import Path

from repro import (
    GeoSocialEngine,
    StoreCorruptionError,
    gowalla_like,
    load_engine,
)
from repro.service import QueryService

workdir = Path(tempfile.mkdtemp(prefix="repro-store-"))

# --- Cold build, then snapshot ----------------------------------------------
start = time.perf_counter()
dataset = gowalla_like(n=20_000, seed=7)
engine = GeoSocialEngine.from_dataset(dataset, num_landmarks=4, seed=2)
cold_s = time.perf_counter() - start

snap = engine.save(workdir / "snap")
print(f"cold build: {cold_s:.2f}s -> snapshot at {snap.name}/")

# --- Warm start: mmap'd columns, no Dijkstra re-run -------------------------
start = time.perf_counter()
warm = load_engine(snap)  # verify=True: sha256 per column
warm_s = time.perf_counter() - start
print(f"warm start: {warm_s:.3f}s ({cold_s / warm_s:.1f}x faster)")

user = next(iter(engine.locations.located_users()))
fresh = [(nb.user, round(nb.score, 6)) for nb in engine.query(user=user, k=5, alpha=0.3)]
restored = [(nb.user, round(nb.score, 6)) for nb in warm.query(user=user, k=5, alpha=0.3)]
print(f"bit-identical answers after restart: {fresh == restored}")

# --- Snapshot history on a service ------------------------------------------
with QueryService(engine) as service:
    manager = service.snapshots(workdir / "history")
    manager.snapshot()

    # batched edge updates fold into the next snapshot automatically
    other = (user + 1) % engine.graph.n
    service.update_edge(user, other, 0.123)
    print(f"pending edge updates: {service.pending_edge_updates}")
    manager.snapshot()  # rebuild_engine folds, then the image commits
    print(f"snapshots committed: {len(manager.snapshots())}, latest={manager.latest().name}")

    # restore swaps the loaded engine back into the service
    manager.restore()
    print(f"restored engine serves the folded edge: "
          f"{service.engine.graph.edge_weight(user, other) == 0.123}")

# --- Corruption is typed, never garbage -------------------------------------
column = next(p for p in snap.iterdir() if p.suffix == ".npy")
damaged = bytearray(column.read_bytes())
damaged[-1] ^= 0xFF
column.write_bytes(bytes(damaged))
try:
    load_engine(snap)
except StoreCorruptionError as err:
    print(f"damaged snapshot refused: {str(err)[:60]}...")
