#!/usr/bin/env python3
"""The network boundary: serve SSRQ over HTTP and operate it.

`repro.server` puts a socket in front of `QueryService`: an asyncio
HTTP/1.1 server with admission control (bounded queue + 429 shedding),
request coalescing into `query_many`, Server-Sent-Event streams for
standing subscriptions, and `/stats` + `/metrics` observability.  This
example boots one in-process, proves the wire answer equals the
library answer, tails a subscription through a location move, inspects
the counters, and drains gracefully.

Run:  python examples/server_quickstart.py
"""

import threading

from repro import GeoSocialEngine, QueryService, gowalla_like
from repro.server import ServerClient, ServerThread

dataset = gowalla_like(n=1_000, seed=7)
engine = GeoSocialEngine.from_dataset(dataset)
user = sorted(engine.located_users())[0]

with QueryService(engine, cache_size=1024) as service:
    with ServerThread(service, workers=2, queue_depth=32) as handle:
        print(f"serving on http://{handle.address} (in a daemon thread)")
        client = ServerClient(handle.host, handle.port)

        # --- The wire answer IS the library answer --------------------------
        served = client.query(user, k=5, alpha=0.3, method="ais")
        direct = engine.query(user, k=5, alpha=0.3, method="ais")
        same = served["result"]["users"] == direct.users
        print(f"HTTP answer identical to in-process engine.query: {same}")

        # --- Batches ride the coalescing/batching path ----------------------
        batch = client.query_batch(
            [{"user": u} for u in sorted(engine.located_users())[:8]],
            k=5,
            alpha=0.3,
        )
        print(f"batch of {len(batch['responses'])} served in one round trip")

        # --- Errors are typed, not stack traces -----------------------------
        from repro.server import ServerApiError

        try:
            client.query(user, k=0)
        except ServerApiError as err:
            print(f"bad request -> {err.status} {err.code}: {err.message}")

        # --- Tail a subscription through an update --------------------------
        events = []

        def tail() -> None:
            for event, payload in client_b.tail(user, k=5, alpha=0.3, timeout=30):
                events.append((event, payload))
                if len(events) >= 2:  # snapshot + one delta is our story
                    break

        client_b = ServerClient(handle.host, handle.port)
        tailer = threading.Thread(target=tail)
        tailer.start()
        import time

        time.sleep(0.3)  # let the subscription register
        client.move(user, 0.123, 0.456)  # the subscribed user moves
        tailer.join(timeout=30)
        kinds = [event for event, _ in events]
        print(f"subscription stream delivered: {kinds}")
        delta = events[1][1]
        print(
            f"delta after the move: {len(delta.get('entered', []))} entered, "
            f"{len(delta.get('left', []))} left, "
            f"{len(delta.get('moved', []))} re-ranked"
        )

        # --- Observability ----------------------------------------------------
        stats = client.stats()
        server = stats["server"]
        print(
            f"server counters: requests={server['requests']} "
            f"admitted={server['admitted']} shed={server['shed']} "
            f"coalesced_batches={server['coalesced_batches']}"
        )
        prom = client.metrics()
        print(f"/metrics exposes {sum(1 for l in prom.splitlines() if l and not l.startswith('#'))} Prometheus samples")

        client.close()
        client_b.close()
    # leaving the ServerThread context drains: in-flight requests finish,
    # streams get a final `end` event, new connections are refused
    print("drained cleanly: True")
