#!/usr/bin/env python3
"""Dynamic locations: users move, the indexes follow, answers change.

The paper designs its indexes for exactly this workload (Section 5.1):
location updates are deletions+insertions in the grid with incremental
social-summary maintenance, far cheaper than rebuilding.  This example
simulates an evening where users wander around town, interleaving moves
with queries, and verifies the indexed answers against brute force.

Run:  python examples/location_updates.py
"""

import random
import time

from repro import GeoSocialEngine, foursquare_like

dataset = foursquare_like(n=3_000, seed=11)
engine = GeoSocialEngine.from_dataset(dataset)
rng = random.Random(5)

located = list(engine.located_users())
query_user = located[0]

print("initial top-5:", engine.query(query_user, k=5, alpha=0.3).users)

# --- An evening of movement -------------------------------------------------
moves = 0
start = time.perf_counter()
for step in range(5):
    # A few hundred users report new positions...
    for _ in range(300):
        user = rng.choice(located)
        x, y = rng.random(), rng.random()
        engine.move_user(user, x, y)
        moves += 1
    # ...and someone new turns on location sharing.
    newcomer = next(
        u for u in range(engine.graph.n) if not engine.locations.has_location(u)
    )
    engine.move_user(newcomer, rng.random(), rng.random())
    moves += 1

    answer = engine.query(query_user, k=5, alpha=0.3, method="ais")
    truth = engine.query(query_user, k=5, alpha=0.3, method="bruteforce")
    agree = [round(a, 9) for a in answer.scores] == [round(t, 9) for t in truth.scores]
    print(
        f"after {moves:>5} moves: top-5 = {answer.users}  "
        f"(matches brute force: {agree})"
    )
    assert agree, "index maintenance must preserve exactness"

elapsed = time.perf_counter() - start
print(f"\n{moves} location updates + 5 verified queries in {elapsed:.2f}s")

# --- A user going dark -------------------------------------------------------
leaver = engine.query(query_user, k=1, alpha=0.3).users[0]
engine.forget_location(leaver)
after = engine.query(query_user, k=5, alpha=0.3)
print(f"user {leaver} disabled location sharing -> new top-5: {after.users}")
assert leaver not in after.users
