"""Thin legacy shim: all packaging metadata lives in ``pyproject.toml``
(PEP 621), with the version single-sourced from ``repro.__version__``
via ``[tool.setuptools.dynamic]``.  Kept only so tooling that still
invokes ``setup.py`` directly (old editable-install flows, some CI
images) keeps working."""

from setuptools import setup

setup()
