"""Package metadata for the SSRQ reproduction.

``numpy`` is declared with a floor version for the vectorized data
plane (:mod:`repro.backend`); the scalar backend keeps the library
importable and correct when it is absent (``REPRO_BACKEND=python``
forces that path even when numpy is installed).  The ``py.typed``
marker ships the inline annotations to type checkers (PEP 561).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro-ssrq",
    version=VERSION,
    description=(
        "Reproduction of 'Joint Search by Social and Spatial Proximity' "
        "(ICDE 2016): SSRQ algorithms, serving layer, sharding, and a "
        "columnar NumPy data plane"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark", "pytest-cov"],
    },
    zip_safe=False,
)
