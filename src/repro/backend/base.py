"""The ``Kernels`` protocol and its scalar reference implementation.

A *kernel* is one of the few bulk primitives every SSRQ hot loop is
made of, lifted from per-user scalar calls to whole candidate arrays:

==========================  ==========================================
``euclidean_to_point``      distances from a query point to a batch of
                            users (``NaN`` coordinates → ``inf``)
``alt_lower_bounds``        per-user ALT landmark lower bounds on the
                            social distance (Lemma 2's vertex form)
``blend``                   the α-blended rank score
                            ``w_social·p + w_spatial·d`` with the
                            zero-weight/∞ contract of
                            :class:`~repro.core.ranking.RankingFunction`
``top_k_by_score``          smallest-``(score, id)`` selection with the
                            deterministic smaller-id tie-break
``blend_topk_multi``        fused same-user batch scoring: several
                            ``(k, α)`` variants answered from one pair
                            of shared columns, one blend+top-k pass each
``nanbbox``                 coordinate envelope of a user batch
``summary_minmax``          per-landmark min/max over a user batch (the
                            ``(m̌, m̂)`` social-summary vectors)
==========================  ==========================================

:class:`PythonKernels` is the *extracted* scalar behavior — the exact
loops the algorithms ran before the columnar refactor, kept as the
semantics oracle.  :class:`~repro.backend.numpy_backend.NumpyKernels`
vectorizes the same contracts; because every floating-point operation
involved (``-``, ``*``, ``+``, ``sqrt``, ``abs``, comparisons) is
IEEE-exact elementwise, the two backends produce *bit-identical*
scores, rankings, and tie-breaks — a property the backend-equivalence
test suite pins rather than assumes.

Kernels accept user batches as any integer sequence (Python lists or
``intp`` id-arrays from :meth:`repro.spatial.grid.UniformGrid.ids_in`)
and coordinate columns as whatever
:meth:`repro.spatial.point.LocationTable.columns` stores.

Besides the searchers, the stream layer's repair pass
(:meth:`repro.stream.SubscriptionRegistry.flush`) leans on
``euclidean_to_point`` to re-derive the spatial column of a whole
pending-delta batch in one call — bit-identical to what the searchers
computed, which is what makes repaired results indistinguishable from
fresh ones.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.landmarks import LandmarkIndex

INF = math.inf
_sqrt = math.sqrt


@runtime_checkable
class Kernels(Protocol):
    """Batched evaluation primitives behind every candidate loop."""

    #: backend identifier ("python" / "numpy")
    name: str
    #: whether bulk calls are array-vectorized — introspection only
    #: (callers batch unconditionally; the scalar backend loops inside
    #: the kernel, so both shapes share one code path)
    vectorized: bool

    def euclidean_to_point(
        self, xs, ys, qx: float, qy: float, ids=None
    ) -> Sequence[float]:
        """Distances from ``(qx, qy)`` to users ``ids`` (all users when
        ``None``), aligned with ``ids``; unknown locations (and an
        unknown query point) yield ``inf``."""
        ...

    def alt_lower_bounds(
        self, landmarks: "LandmarkIndex", query_vector: Sequence[float], ids
    ) -> Sequence[float]:
        """Per-user ALT lower bounds ``p̌(v_q, v_i) = max_j |m_qj − m_ij|``
        over the landmark tables (``inf`` when exactly one side is
        disconnected from some landmark; uninformative landmarks
        contribute 0)."""
        ...

    def alt_upper_bounds(
        self, landmarks: "LandmarkIndex", query_vector: Sequence[float], ids
    ) -> Sequence[float]:
        """Per-user ALT upper bounds ``p̂(v_q, v_i) = min_j (m_qj + m_ij)``
        over the landmark tables (``inf`` when no landmark reaches both
        sides) — the batched form of
        :meth:`~repro.graph.landmarks.LandmarkIndex.upper_bound`."""
        ...

    def interval_midpoints(self, lower, upper) -> tuple:
        """``(estimate, halfwidth)`` columns for per-user distance
        intervals ``[lower, upper]``: the midpoint ``lo + (hi − lo)/2``
        and its certified error radius ``(hi − lo)/2``.  An infinite
        upper bound (no finite certificate) yields ``inf`` for both."""
        ...

    def blend(
        self, w_social: float, w_spatial: float, social, spatial
    ) -> Sequence[float]:
        """α-blended scores ``w_social·p + w_spatial·d`` where a
        zero-weight term contributes exactly 0 even at ``p``/``d`` =
        ``inf`` (the :class:`~repro.core.ranking.RankingFunction`
        contract)."""
        ...

    def top_k_by_score(self, scores, ids, k: int) -> list[int]:
        """Positions of the ``k`` smallest entries by ``(score, id)``
        (deterministic smaller-id tie-break), in ascending order;
        ``inf``/NaN scores never qualify."""
        ...

    def blend_topk_multi(
        self, requests, social, spatial, exclude: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """Fused same-user batch scoring: for each ``(k, w_social,
        w_spatial)`` request, ``blend`` the shared columns and select
        the ``(score, id)``-smallest ``k`` — the columns are
        materialised once and every request is one columnar pass.
        Either column may be ``None`` when every request's matching
        weight is 0 (``blend``'s zero-weight gate never reads it);
        ``exclude`` is a position forced to ``inf`` first (the query
        user).  Returns per request ``[(position, score), ...]`` in
        ascending ``(score, id)`` order as plain Python values —
        backend-independent, bit-identical to a per-request ``blend`` +
        ``top_k_by_score``."""
        ...

    def nanbbox(self, xs, ys, ids=None) -> tuple[float, float, float, float] | None:
        """``(minx, miny, maxx, maxy)`` over the known locations of
        ``ids`` (all users when ``None``); ``None`` when none are
        located."""
        ...

    def summary_minmax(
        self, landmarks: "LandmarkIndex", ids
    ) -> tuple[list[float], list[float]]:
        """The ``(m̌, m̂)`` social-summary vectors over ``ids``: per
        landmark, the min and max distance among the batch."""
        ...

    def dense_from_dict(self, n: int, mapping: dict, default: float) -> Sequence[float]:
        """A dense length-``n`` column with ``mapping``'s values at its
        keys and ``default`` elsewhere (marshals e.g. a Dijkstra
        distance dict into kernel-ready form)."""
        ...

    def count_finite(self, values) -> int:
        """Number of finite (non-``inf``, non-NaN) entries."""
        ...


class PythonKernels:
    """Scalar kernels: the pre-refactor per-user loops, verbatim.

        >>> from repro.backend import PythonKernels
        >>> kernels = PythonKernels()
        >>> list(kernels.blend(0.5, 0.0, [2.0, float("inf")], [1.0, 1.0]))
        [1.0, inf]
    """

    name = "python"
    vectorized = False

    def euclidean_to_point(self, xs, ys, qx, qy, ids=None):
        if qx != qx or qy != qy:
            n = len(xs) if ids is None else len(ids)
            return [INF] * n
        out = []
        append = out.append
        if ids is None:
            for ux, uy in zip(xs, ys):
                if ux != ux or uy != uy:
                    append(INF)
                else:
                    dx = qx - ux
                    dy = qy - uy
                    append(_sqrt(dx * dx + dy * dy))
            return out
        for u in ids:
            ux = xs[u]
            uy = ys[u]
            if ux != ux or uy != uy:
                append(INF)
            else:
                dx = qx - ux
                dy = qy - uy
                append(_sqrt(dx * dx + dy * dy))
        return out

    def alt_lower_bounds(self, landmarks, query_vector, ids):
        rows = landmarks.dist
        out = []
        append = out.append
        for u in ids:
            best = 0.0
            for j, mqj in enumerate(query_vector):
                mij = rows[j][u]
                if mqj == mij:
                    continue
                if mqj == INF or mij == INF:
                    best = INF
                    break
                diff = mqj - mij if mqj > mij else mij - mqj
                if diff > best:
                    best = diff
            append(best)
        return out

    def alt_upper_bounds(self, landmarks, query_vector, ids):
        rows = landmarks.dist
        out = []
        append = out.append
        for u in ids:
            best = INF
            for j, mqj in enumerate(query_vector):
                s = mqj + rows[j][u]
                if s < best:
                    best = s
            append(best)
        return out

    def interval_midpoints(self, lower, upper):
        est = []
        half = []
        for lo, hi in zip(lower, upper):
            if hi == INF:
                est.append(INF)
                half.append(INF)
            else:
                h = (hi - lo) * 0.5
                est.append(lo + h)
                half.append(h)
        return est, half

    def blend(self, w_social, w_spatial, social, spatial):
        if w_social == 0.0:
            if w_spatial == 0.0:
                return [0.0] * len(spatial)
            return [w_spatial * d for d in spatial]
        if w_spatial == 0.0:
            return [w_social * p for p in social]
        return [w_social * p + w_spatial * d for p, d in zip(social, spatial)]

    def top_k_by_score(self, scores, ids, k):
        finite = [
            (s, ids[i], i) for i, s in enumerate(scores) if s == s and s != INF
        ]
        return [i for _, _, i in heapq.nsmallest(k, finite)]

    def blend_topk_multi(self, requests, social, spatial, exclude=None):
        n = len(social) if social is not None else len(spatial)
        out = []
        for k, w_social, w_spatial in requests:
            scores = self.blend(w_social, w_spatial, social, spatial)
            if exclude is not None:
                scores[exclude] = INF  # blend output is fresh — never a cached column
            top = self.top_k_by_score(scores, range(n), k)
            out.append([(int(u), float(scores[u])) for u in top])
        return out

    def nanbbox(self, xs, ys, ids=None):
        minx = miny = INF
        maxx = maxy = -INF
        located = False
        it = range(len(xs)) if ids is None else ids
        for u in it:
            x = xs[u]
            y = ys[u]
            if x != x or y != y:
                continue
            located = True
            if x < minx:
                minx = x
            if x > maxx:
                maxx = x
            if y < miny:
                miny = y
            if y > maxy:
                maxy = y
        if not located:
            return None
        return (minx, miny, maxx, maxy)

    def summary_minmax(self, landmarks, ids):
        rows = landmarks.dist
        m_check = [INF] * len(rows)
        m_hat = [-INF] * len(rows)
        for j, row in enumerate(rows):
            lo = INF
            hi = -INF
            for u in ids:
                value = row[u]
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
            m_check[j] = lo
            m_hat[j] = hi
        return m_check, m_hat

    def dense_from_dict(self, n, mapping, default):
        column = [default] * n
        for key, value in mapping.items():
            column[key] = value
        return column

    def count_finite(self, values):
        return sum(1 for v in values if v == v and v != INF and v != -INF)
