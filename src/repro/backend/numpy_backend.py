"""Vectorized kernels over contiguous NumPy columns.

Every method matches :class:`~repro.backend.base.PythonKernels`
bit-for-bit: distances are ``sqrt(dx² + dy²)`` (the repo-wide primitive
— *not* ``np.hypot``, which differs from ``math.hypot`` by 1 ulp on
part of the input space), blending multiplies by the same pre-divided
weights, and ALT bounds exploit IEEE special-value arithmetic
(``inf − inf = NaN`` marks an uninformative landmark, one-sided ``inf``
survives ``abs`` as the exact disconnection bound).
"""

from __future__ import annotations

import math

import numpy as np

INF = math.inf


class NumpyKernels:
    """Array kernels; bit-identical to the scalar reference.

        >>> from repro.backend import NumpyKernels
        >>> kernels = NumpyKernels()
        >>> [float(v) for v in kernels.blend(0.5, 0.0, [2.0, float("inf")], [1.0, 1.0])]
        [1.0, inf]
    """

    name = "numpy"
    vectorized = True

    def euclidean_to_point(self, xs, ys, qx, qy, ids=None):
        if qx != qx or qy != qy:  # unlocated query point: all-inf, no math
            return np.full(len(xs) if ids is None else len(ids), INF)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if ids is not None:
            ids = np.asarray(ids, dtype=np.intp)
            xs = xs[ids]
            ys = ys[ids]
        dx = qx - xs
        dy = qy - ys
        d = np.sqrt(dx * dx + dy * dy)
        # NaN coordinates (unlocated user, either axis) mean "infinitely far".
        return np.where(np.isnan(d), INF, d)

    def alt_lower_bounds(self, landmarks, query_vector, ids):
        matrix = landmarks.matrix
        if matrix is None:  # pragma: no cover - numpy-less LandmarkIndex
            raise RuntimeError(
                "NumpyKernels needs a LandmarkIndex with a materialised "
                "matrix (NumPy was unavailable when it was built)"
            )
        ids = np.asarray(ids, dtype=np.intp)
        if matrix.shape[0] == 0:
            return np.zeros(ids.shape[0])
        q = np.asarray(query_vector, dtype=np.float64)
        # inf − inf = NaN: both sides disconnected from the landmark —
        # uninformative, contributes 0.  A one-sided inf survives |·| as
        # the exact "different components" bound.
        with np.errstate(invalid="ignore"):
            diff = np.abs(q[:, None] - matrix[:, ids])
        diff[np.isnan(diff)] = 0.0
        return diff.max(axis=0)

    def alt_upper_bounds(self, landmarks, query_vector, ids):
        matrix = landmarks.matrix
        if matrix is None:  # pragma: no cover - numpy-less LandmarkIndex
            raise RuntimeError(
                "NumpyKernels needs a LandmarkIndex with a materialised "
                "matrix (NumPy was unavailable when it was built)"
            )
        ids = np.asarray(ids, dtype=np.intp)
        if matrix.shape[0] == 0:
            return np.full(ids.shape[0], INF)
        q = np.asarray(query_vector, dtype=np.float64)
        # inf + anything = inf, never NaN — a landmark that misses
        # either side simply proposes an infinite (useless) bound.
        return (q[:, None] + matrix[:, ids]).min(axis=0)

    def interval_midpoints(self, lower, upper):
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        # inf − inf = NaN where both bounds are infinite; the unreachable
        # mask overwrites those lanes with the scalar contract's inf.
        with np.errstate(invalid="ignore"):
            half = (upper - lower) * 0.5
            est = lower + half
        unreachable = np.isinf(upper)
        half[unreachable] = INF
        est[unreachable] = INF
        return est, half

    def blend(self, w_social, w_spatial, social, spatial):
        # Zero-weight terms contribute exactly 0 even at inf (the
        # RankingFunction contract); gating on the scalar weight keeps
        # 0·inf = NaN out of the arithmetic entirely.
        if w_social == 0.0:
            if w_spatial == 0.0:
                return np.zeros(len(spatial))
            return w_spatial * np.asarray(spatial, dtype=np.float64)
        if w_spatial == 0.0:
            return w_social * np.asarray(social, dtype=np.float64)
        return w_social * np.asarray(social, dtype=np.float64) + w_spatial * np.asarray(
            spatial, dtype=np.float64
        )

    def top_k_by_score(self, scores, ids, k):
        if k <= 0:  # match heapq.nsmallest: nothing qualifies
            return []
        scores = np.asarray(scores, dtype=np.float64)
        ids = np.asarray(ids)
        finite = np.nonzero(scores < INF)[0]  # NaN < inf is False too
        s = scores[finite]
        if 0 < k < s.size:
            # Partition down to the k smallest scores first (O(n)), then
            # widen to every boundary tie so the exact (score, id)
            # tie-break survives, and lexsort only that sliver.
            boundary = s[np.argpartition(s, k - 1)[:k]].max()
            cand = np.nonzero(s <= boundary)[0]
            order = np.lexsort((ids[finite[cand]], s[cand]))
            return finite[cand[order[:k]]].tolist()
        order = np.lexsort((ids[finite], s))
        return finite[order[:k]].tolist()

    def blend_topk_multi(self, requests, social, spatial, exclude=None):
        n = len(social) if social is not None else len(spatial)
        ids = range(n)
        out = []
        for k, w_social, w_spatial in requests:
            scores = self.blend(w_social, w_spatial, social, spatial)
            if exclude is not None:
                scores[exclude] = INF  # blend output is fresh — never a cached column
            top = self.top_k_by_score(scores, ids, k)
            out.append([(int(u), float(scores[u])) for u in top])
        return out

    def nanbbox(self, xs, ys, ids=None):
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if ids is not None:
            ids = np.asarray(ids, dtype=np.intp)
            xs = xs[ids]
            ys = ys[ids]
        # Per-coordinate contract (like euclidean_to_point): a NaN on
        # either axis makes the whole point "unlocated".
        mask = ~(np.isnan(xs) | np.isnan(ys))
        if not mask.any():
            return None
        xs = xs[mask]
        ys = ys[mask]
        return (float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))

    def summary_minmax(self, landmarks, ids):
        matrix = landmarks.matrix
        if matrix is None:  # pragma: no cover - numpy-less LandmarkIndex
            raise RuntimeError(
                "NumpyKernels needs a LandmarkIndex with a materialised "
                "matrix (NumPy was unavailable when it was built)"
            )
        m = matrix.shape[0]
        ids = np.asarray(ids, dtype=np.intp)
        if ids.shape[0] == 0:
            return [INF] * m, [-INF] * m
        sub = matrix[:, ids]
        return sub.min(axis=1).tolist(), sub.max(axis=1).tolist()

    def dense_from_dict(self, n, mapping, default):
        column = np.full(n, default, dtype=np.float64)
        if mapping:
            column[np.fromiter(mapping.keys(), dtype=np.intp, count=len(mapping))] = (
                np.fromiter(mapping.values(), dtype=np.float64, count=len(mapping))
            )
        return column

    def count_finite(self, values):
        return int(np.count_nonzero(np.isfinite(np.asarray(values, dtype=np.float64))))
