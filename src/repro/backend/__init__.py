"""Pluggable columnar data-plane backends.

The SSRQ hot loops reduce to three scalar primitives — Euclidean
distance to the query point, ALT landmark lower bounds, and the
α-blended rank score — plus a handful of bulk reductions (bbox and
social-summary envelopes, top-k selection).  This package lifts them
behind the :class:`~repro.backend.base.Kernels` protocol with two
interchangeable implementations:

- :class:`~repro.backend.base.PythonKernels` — the original scalar
  loops, extracted verbatim (the semantics oracle);
- :class:`~repro.backend.numpy_backend.NumpyKernels` — vectorized over
  the contiguous columns the data layer stores
  (:meth:`~repro.spatial.point.LocationTable.columns`,
  :attr:`~repro.graph.landmarks.LandmarkIndex.matrix`,
  :meth:`~repro.spatial.grid.UniformGrid.ids_in`).

Both produce bit-identical scores and rankings (tie-breaks included);
see :mod:`repro.backend.base` for why that is achievable and the
backend-equivalence test suite for where it is pinned.

Backend choice is resolved **once** per engine via
:func:`resolve_backend` and propagated through rebuilds
(``with_graph``/``rebuild_engine``) and shard construction.
"""

from __future__ import annotations

import os

from repro.backend.base import Kernels, PythonKernels

try:
    from repro.backend.numpy_backend import NumpyKernels

    HAS_NUMPY = True
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    HAS_NUMPY = False

    def __getattr__(name: str):  # pragma: no cover - numpy-less only
        if name == "NumpyKernels":
            raise ImportError(
                "NumpyKernels requires numpy; install numpy or use "
                "PythonKernels / resolve_backend('python')"
            )
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: environment override consulted when a backend is requested as "auto"
BACKEND_ENV_VAR = "REPRO_BACKEND"

_BACKEND_NAMES = ("auto", "numpy", "python")


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`resolve_backend` on this interpreter."""
    return _BACKEND_NAMES if HAS_NUMPY else ("auto", "python")


def resolve_backend(backend: "str | Kernels" = "auto") -> Kernels:
    """Resolve a backend request to a :class:`Kernels` instance.

    Resolution order: an explicit name (or ready-made kernels object)
    wins; ``"auto"`` defers to the ``REPRO_BACKEND`` environment
    variable when set; otherwise NumPy is used when importable, with
    the scalar backend as the universal fallback.

        >>> from repro import resolve_backend
        >>> resolve_backend("python").name
        'python'
        >>> resolve_backend(resolve_backend("python")).name   # idempotent
        'python'
    """
    if not isinstance(backend, str):
        if isinstance(backend, Kernels):
            return backend
        raise TypeError(f"backend must be a name or Kernels instance, got {backend!r}")
    name = backend
    if name == "auto":
        name = os.environ.get(BACKEND_ENV_VAR, "auto") or "auto"
    if name not in _BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; choose from {available_backends()} "
            f"(or set ${BACKEND_ENV_VAR} accordingly)"
        )
    if name == "numpy" and not HAS_NUMPY:
        raise ValueError(
            "backend 'numpy' requested but numpy is not importable; "
            "install numpy or use backend='python'"
        )
    if name == "auto":
        name = "numpy" if HAS_NUMPY else "python"
    return NumpyKernels() if name == "numpy" else PythonKernels()


def resolve_stored_backend(name: str) -> Kernels:
    """Resolve a backend name recorded in a snapshot manifest.

    Same contract as :func:`resolve_backend` for a name that is
    resolvable here, but *lenient* when the stored choice is not: a
    snapshot written on a NumPy machine must still load on an
    interpreter without it (both backends rank bit-identically, so the
    fallback changes performance, never answers).  Unknown names are
    still an error — they signal a corrupt or future-format manifest.
    """
    if name == "numpy" and not HAS_NUMPY:
        import warnings

        warnings.warn(
            "snapshot was written with backend='numpy' but numpy is not "
            "importable here; falling back to the scalar backend "
            "(identical rankings, lower throughput)",
            RuntimeWarning,
            stacklevel=2,
        )
        return PythonKernels()
    return resolve_backend(name)


__all__ = [
    "Kernels",
    "PythonKernels",
    "resolve_backend",
    "resolve_stored_backend",
    "available_backends",
    "HAS_NUMPY",
    "BACKEND_ENV_VAR",
] + (["NumpyKernels"] if HAS_NUMPY else [])
