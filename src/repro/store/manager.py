"""Snapshot lifecycle management for a :class:`QueryService`.

:class:`SnapshotManager` keeps a history of engine snapshots under one
root directory::

    root/
      snapshot-000001/      committed snapshot (columns + manifest)
      snapshot-000002/
      snapshot-000003.tmp-<pid>-<k>/   crashed writer debris (ignored)
      CURRENT               pointer file naming the last committed one

The *last committed* pointer makes the history crash-safe end to end:
a new snapshot is written into a fresh ``snapshot-<seq>`` directory
through the temp-dir/fsync/rename protocol of :mod:`repro.store.format`
and only then does ``CURRENT`` move — itself via write-temp, fsync,
atomic rename.  A crash anywhere leaves ``CURRENT`` naming the previous
fully-durable snapshot; a crash after the snapshot rename but before
the pointer move leaves an extra committed directory that the pointer
simply does not reference yet (and :meth:`prune` can reap).

Snapshots are *incremental with respect to the update stream*: when
edge updates have been batched through
:meth:`~repro.service.QueryService.update_edge`, :meth:`snapshot` first
folds them by calling the service's existing
:meth:`~repro.service.QueryService.rebuild_engine` — the same fold the
serving path uses — so the image on disk always reflects the applied
stream.  :meth:`restore` swaps the loaded engine in through
:meth:`~repro.service.QueryService.replace_engine`, the same swap path
the stream layer already detects by engine identity.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path

from repro.store.format import (
    MANIFEST_NAME,
    StoreCorruptionError,
    StoreError,
    fault_point,
    fsync_dir,
)
from repro.store.snapshot import load_engine

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)$")
_DEBRIS_RE = re.compile(r"^snapshot-(\d+)\.tmp-")

CURRENT_NAME = "CURRENT"


class SnapshotManager:
    """Takes, lists, restores, and prunes snapshots of one service's
    engine.

        >>> import tempfile
        >>> from repro import GeoSocialEngine, gowalla_like
        >>> from repro.service import QueryService
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=120, seed=7))
        >>> with QueryService(engine) as service:
        ...     manager = service.snapshots(tempfile.mkdtemp())
        ...     path = manager.snapshot()
        ...     manager.latest() == path
        True
    """

    def __init__(self, service, root) -> None:
        self.service = service
        self.root = Path(root)

    # -- taking snapshots ----------------------------------------------

    def snapshot(self, *, fold: bool = True) -> Path:
        """Write a new snapshot and commit it as the latest.

        With ``fold=True`` (default), edge updates batched since the
        last rebuild are folded into a fresh engine first via the
        service's :meth:`~repro.service.QueryService.rebuild_engine`,
        so the snapshot captures the applied update stream.  The
        engine's own ``save`` runs under its read lock — concurrent
        queries proceed, concurrent updates wait — and the returned
        directory is fully durable before ``CURRENT`` names it.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if fold and self.service.pending_edge_updates > 0:
            self.service.rebuild_engine()
        dest = self.root / f"snapshot-{self._next_seq():06d}"
        self.service.engine.save(dest)
        self._commit_current(dest.name)
        return dest

    def _next_seq(self) -> int:
        """One past the highest sequence number any snapshot directory
        (committed or crashed-tmp debris) has claimed."""
        best = 0
        if self.root.exists():
            for entry in self.root.iterdir():
                match = _SNAPSHOT_RE.match(entry.name) or _DEBRIS_RE.match(entry.name)
                if match:
                    best = max(best, int(match.group(1)))
        return best + 1

    def _commit_current(self, name: str) -> None:
        """Move the ``CURRENT`` pointer atomically: write a temp file,
        fsync it, rename over the pointer, fsync the directory."""
        fault_point("manager:pre-commit")
        tmp = self.root / (CURRENT_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(name + "\n")
            f.flush()
            os.fsync(f.fileno())
        fault_point("manager:pointer-written")
        os.replace(tmp, self.root / CURRENT_NAME)
        fsync_dir(self.root)
        fault_point("manager:committed")

    # -- reading back ---------------------------------------------------

    def latest(self) -> "Path | None":
        """The last committed snapshot directory (``None`` before the
        first commit).  ``CURRENT`` naming a directory without a
        manifest is impossible under the commit protocol, so it raises
        :class:`StoreCorruptionError` (external interference)."""
        pointer = self.root / CURRENT_NAME
        try:
            name = pointer.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        path = self.root / name
        if not name or not (path / MANIFEST_NAME).exists():
            raise StoreCorruptionError(
                f"CURRENT names {name!r} but {path} holds no manifest — "
                "the snapshot root was tampered with outside the manager"
            )
        return path

    def snapshots(self) -> list[Path]:
        """Committed snapshot directories, oldest first (crashed tmp
        debris and foreign files are excluded)."""
        if not self.root.exists():
            return []
        found = []
        for entry in self.root.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match and (entry / MANIFEST_NAME).exists():
                found.append((int(match.group(1)), entry))
        return [path for _, path in sorted(found)]

    def load(self, *, mmap: bool = True, verify: bool = True):
        """Load the last committed snapshot into a fresh engine
        (without touching the service — see :meth:`restore`)."""
        path = self.latest()
        if path is None:
            raise StoreError(f"no committed snapshot under {self.root}")
        return load_engine(path, mmap=mmap, verify=verify)

    def restore(self, *, mmap: bool = True, verify: bool = True):
        """Load the last committed snapshot and swap it into the
        service through
        :meth:`~repro.service.QueryService.replace_engine` — the same
        rebuild-swap path the stream layer detects, so standing
        subscriptions recompute against the restored engine.  Returns
        the restored engine."""
        engine = self.load(mmap=mmap, verify=verify)
        self.service.replace_engine(engine)
        return engine

    # -- housekeeping ---------------------------------------------------

    def prune(self, keep: int = 2) -> list[Path]:
        """Remove old committed snapshots beyond the newest ``keep``
        (the ``CURRENT`` target is always kept) and any crashed-writer
        ``*.tmp-*`` debris.  Returns the removed paths."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        removed = []
        committed = self.snapshots()
        current = self.latest() if committed else None
        survivors = set(committed[-keep:])
        if current is not None:
            survivors.add(current)
        for path in committed:
            if path not in survivors:
                shutil.rmtree(path)
                removed.append(path)
        if self.root.exists():
            for entry in list(self.root.iterdir()):
                if _DEBRIS_RE.match(entry.name) and entry.is_dir():
                    shutil.rmtree(entry)
                    removed.append(entry)
        return removed

    def __repr__(self) -> str:
        return f"SnapshotManager(root={str(self.root)!r}, committed={len(self.snapshots())})"
