"""Durable columnar store: crash-consistent engine snapshots with mmap
warm-start.

The persistence layer of the PR-3 columnar data plane, in the
build-once-then-query idiom: an engine's columns — coordinate arrays,
the ``(M, n)`` landmark matrix, CSR social adjacency, grid cell
arrays — persist as checksummed ``.npy`` files next to a versioned
JSON manifest, written crash-consistently (temp dir + fsync + atomic
rename; the manifest is the commit point) and loaded back zero-copy
via copy-on-write mmap, so restart cost is O(read) instead of
O(rebuild).

Entry points:

- :meth:`GeoSocialEngine.save` / ``.load`` and
  :meth:`ShardedGeoSocialEngine.save` / ``.load`` — one engine, one
  snapshot directory;
- :class:`SnapshotManager` (via
  :meth:`QueryService.snapshots <repro.service.QueryService.snapshots>`)
  — snapshot history with a crash-safe last-committed pointer,
  update-stream folding, and restore through the service's engine-swap
  path;
- :func:`save_engine` / :func:`load_engine` — the functional core both
  ride on.

Corruption (torn manifests, checksum mismatches, mutually inconsistent
columns) raises the typed :class:`StoreCorruptionError`; the crash-test
fault hooks (:func:`fault_injection`, :class:`InjectedFault`) let tests
kill the writer at every intermediate step.
"""

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    InjectedFault,
    StoreCorruptionError,
    StoreError,
    fault_injection,
    fault_point,
    read_column,
    read_manifest,
    set_fault_hook,
    write_column,
    write_manifest,
)
from repro.store.manager import SnapshotManager
from repro.store.snapshot import load_engine, save_engine

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "InjectedFault",
    "SnapshotManager",
    "StoreCorruptionError",
    "StoreError",
    "fault_injection",
    "fault_point",
    "load_engine",
    "read_column",
    "read_manifest",
    "save_engine",
    "set_fault_hook",
    "write_column",
    "write_manifest",
]
