"""On-disk columnar format primitives: checksummed ``.npy`` columns, a
versioned JSON manifest, fsync/rename commit helpers, and the fault
hook the crash tests drive.

**Commit protocol.**  A snapshot is a directory.  The writer builds it
in a temp sibling (``<name>.tmp-<pid>-<token>``) on the same
filesystem: every column file is written and fsynced, then the manifest
— carrying the format version, the engine config, and a sha256 per
column — is written and fsynced *last*, the directory entry itself is
fsynced, and one atomic ``rename`` publishes the whole snapshot.  The
manifest is therefore the commit point: a reader that finds a parseable
manifest referencing checksum-valid columns is reading a complete
snapshot, and any interrupted writer leaves either nothing visible (the
rename never happened) or debris under a ``.tmp-*`` name no reader
opens.

**Fault points.**  Every intermediate step of the writer calls
:func:`fault_point` with a stable label.  The crash test harness
installs a hook (:func:`fault_injection`) that raises
:class:`InjectedFault` at a chosen label, simulating a crash at that
exact point; the writer deliberately performs *no cleanup* on an
injected fault, so the on-disk state the test observes is the state a
real crash would leave.

**Corruption is typed.**  Torn manifests, checksum mismatches,
dtype/shape disagreements, and dangling column references raise
:class:`StoreCorruptionError` — never garbage results.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

try:  # the columnar store needs numpy for .npy columns and mmap
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None

FORMAT_NAME = "repro-columnar-store"
FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: distinguishes parallel writers' temp dirs within one process
_token_counter = itertools.count()


class StoreError(RuntimeError):
    """Base error of the persistence layer (missing snapshot, missing
    numpy, unsupported format version, ...).

        >>> from repro.store import StoreError
        >>> try:
        ...     raise StoreError("no committed snapshot")
        ... except RuntimeError as err:
        ...     str(err)
        'no committed snapshot'
    """


class StoreCorruptionError(StoreError):
    """The on-disk snapshot is damaged: torn or non-JSON manifest,
    checksum mismatch, column shape/dtype disagreement, or columns that
    contradict each other.  Loading fails loudly instead of serving
    garbage rankings.

        >>> from repro.store import StoreCorruptionError, StoreError
        >>> issubclass(StoreCorruptionError, StoreError)
        True
        >>> from repro import load_engine
        >>> import tempfile
        >>> try:
        ...     load_engine(tempfile.mkdtemp())   # no manifest there
        ... except StoreCorruptionError:
        ...     print("refused")
        refused
    """


class InjectedFault(Exception):
    """Raised by a fault hook to simulate a crash mid-write.  The
    writer re-raises it without cleaning up its temp state — exactly
    the debris a real crash leaves."""

    def __init__(self, label: str) -> None:
        super().__init__(f"injected fault at {label!r}")
        self.label = label


# -- fault hook ---------------------------------------------------------

_fault_hook: "Callable[[str], None] | None" = None


def set_fault_hook(hook: "Callable[[str], None] | None") -> None:
    """Install (or, with ``None``, remove) the global fault hook.  The
    hook is called with each :func:`fault_point` label as the writer
    passes it and may raise :class:`InjectedFault` to crash there."""
    global _fault_hook
    _fault_hook = hook


@contextmanager
def fault_injection(hook: "Callable[[str], None]") -> Iterator[None]:
    """Scoped :func:`set_fault_hook`: installs ``hook`` for the body
    and restores the previous hook afterwards."""
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    try:
        yield
    finally:
        _fault_hook = previous


def fault_point(label: str) -> None:
    """Announce a writer step to the installed fault hook (no-op
    without one).  Labels are stable identifiers like
    ``column:xs:partial`` or ``commit:pre-rename``."""
    hook = _fault_hook
    if hook is not None:
        hook(label)


# -- low-level IO -------------------------------------------------------

def require_numpy() -> None:
    if _np is None:  # pragma: no cover - exercised only off-CI
        raise StoreError(
            "the columnar store reads and writes .npy columns and "
            "requires numpy; the engines themselves keep working "
            "without it (backend='python'), only persistence does not"
        )


def fsync_dir(path: Path) -> None:
    """fsync a directory so its entries (new files, renames) are
    durable, not just the file contents."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_column(directory: Path, name: str, array) -> dict:
    """Write one column as ``<name>.npy`` (serialised in memory first,
    so the sha256 covers exactly the bytes on disk), fsync it, and
    return its manifest entry.  Fault points: ``column:<name>:partial``
    (half the payload on disk), ``column:<name>:pre-fsync`` (written,
    not yet durable), ``column:<name>:synced``."""
    require_numpy()
    buffer = io.BytesIO()
    _np.save(buffer, _np.ascontiguousarray(array), allow_pickle=False)
    payload = buffer.getvalue()
    target = directory / f"{name}.npy"
    with open(target, "wb") as f:
        half = len(payload) // 2
        f.write(payload[:half])
        fault_point(f"column:{name}:partial")
        f.write(payload[half:])
        f.flush()
        fault_point(f"column:{name}:pre-fsync")
        os.fsync(f.fileno())
    fault_point(f"column:{name}:synced")
    return {
        "file": target.name,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "dtype": str(array.dtype),
        "shape": list(array.shape),
    }


def write_manifest(directory: Path, manifest: dict) -> None:
    """Write and fsync the manifest — the snapshot's commit point
    within its directory.  Fault points: ``manifest:pre-write``,
    ``manifest:partial``, ``manifest:pre-fsync``, ``manifest:synced``."""
    payload = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
    fault_point("manifest:pre-write")
    target = directory / MANIFEST_NAME
    with open(target, "wb") as f:
        half = len(payload) // 2
        f.write(payload[:half])
        fault_point("manifest:partial")
        f.write(payload[half:])
        f.flush()
        fault_point("manifest:pre-fsync")
        os.fsync(f.fileno())
    fault_point("manifest:synced")


def temp_sibling(path: Path) -> Path:
    """A same-filesystem temp-directory name for building ``path``:
    rename between the two is atomic, and the ``.tmp-`` infix keeps
    readers (and the snapshot lister) away from unfinished state."""
    return path.with_name(f"{path.name}.tmp-{os.getpid()}-{next(_token_counter)}")


def commit_dir(tmp: Path, final: Path) -> None:
    """Publish a fully-written snapshot directory atomically.  Fault
    points: ``commit:pre-rename`` (everything durable, nothing
    visible), ``commit:renamed``.

    When ``final`` already exists it is moved aside and removed after
    the new snapshot lands — callers needing crash-safe *history*
    (not in-place replace) should write fresh directories and commit
    through a pointer file like :class:`~repro.store.SnapshotManager`
    does."""
    fsync_dir(tmp)
    fault_point("commit:pre-rename")
    if final.exists():
        trash = final.with_name(final.name + ".trash")
        if trash.exists():
            shutil.rmtree(trash)
        os.rename(final, trash)
        try:
            os.rename(tmp, final)
        except BaseException:  # pragma: no cover - rename-back is best effort
            os.rename(trash, final)
            raise
        shutil.rmtree(trash)
    else:
        os.rename(tmp, final)
    fsync_dir(final.parent)
    fault_point("commit:renamed")


# -- reading ------------------------------------------------------------

def read_manifest(path) -> dict:
    """Read and validate a snapshot's manifest.  Missing, torn, or
    non-JSON manifests raise :class:`StoreCorruptionError`; a manifest
    from a future format version raises :class:`StoreError`."""
    target = Path(path) / MANIFEST_NAME
    try:
        payload = target.read_bytes()
    except OSError as err:
        raise StoreCorruptionError(
            f"snapshot at {path} has no readable manifest: {err}"
        ) from err
    try:
        manifest = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as err:
        raise StoreCorruptionError(
            f"manifest at {target} is truncated or not JSON: {err}"
        ) from err
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise StoreCorruptionError(f"{target} is not a {FORMAT_NAME} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"snapshot at {path} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    return manifest


def read_column(path, entry: dict, *, mmap: bool = True, verify: bool = True):
    """Load one column named by a manifest entry.

    ``verify=True`` checks the stored sha256 against the bytes on disk
    first (one sequential read).  ``mmap=True`` maps the array
    copy-on-write (``mmap_mode='c'``): loading is O(page-cache read)
    and in-process mutation never writes back to the snapshot.
    """
    require_numpy()
    target = Path(path) / entry["file"]
    try:
        if verify:
            digest = hashlib.sha256(target.read_bytes()).hexdigest()
            if digest != entry["sha256"]:
                raise StoreCorruptionError(
                    f"checksum mismatch for {target.name}: manifest has "
                    f"{entry['sha256'][:12]}..., file hashes {digest[:12]}..."
                )
        array = _np.load(target, mmap_mode="c" if mmap else None, allow_pickle=False)
    except StoreCorruptionError:
        raise
    except (OSError, ValueError, EOFError) as err:
        raise StoreCorruptionError(f"column {target.name} unreadable: {err}") from err
    if list(array.shape) != list(entry["shape"]) or str(array.dtype) != entry["dtype"]:
        raise StoreCorruptionError(
            f"column {target.name} is {array.dtype}{array.shape}, the "
            f"manifest says {entry['dtype']}{tuple(entry['shape'])}"
        )
    return array
