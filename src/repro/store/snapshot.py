"""Whole-engine snapshots over the columnar format.

:func:`save_engine` serialises a :class:`~repro.core.engine.GeoSocialEngine`
or :class:`~repro.shard.ShardedGeoSocialEngine` to one snapshot
directory; :func:`load_engine` warm-starts either kind back.  What goes
to disk is exactly the columnar data plane:

=====================  ================================================
``xs``, ``ys``         :class:`LocationTable` coordinate columns
``landmark_matrix``    the ``(M, n)`` landmark distance matrix
                       (``landmark_matrix_rev`` too when directed)
``graph_indptr`` /     CSR social adjacency
``graph_nbrs`` /
``graph_wts``
``grid_*``             grid cell arrays — one triple per engine (per
                       shard for the sharded kind), encoding cell
                       coordinates *and* in-cell insertion order
``sketch_*``           optional social-distance sketch CSR columns
                       (only when the engine has materialised one;
                       older snapshots simply lack them and the sketch
                       rebuilds lazily on first use)
=====================  ================================================

plus a manifest carrying the format version, the engine config (kind,
``s``/``shard_s``, seed, alpha-normalisation constants, backend name,
landmark ids, partitioner layout) and a sha256 per column.

What is *not* persisted — planner cost tables, contraction
hierarchies, neighbour caches, worker pools — is runtime state every
engine rebuilds lazily; the default planner candidates are all
forward-deterministic methods, so even ``method="auto"`` answers
bit-identically after a warm start.

Loading adopts columns zero-copy (``mmap_mode='c'``): the location
table and the landmark matrix map straight from disk, the CSR arrays
become the flat Python lists Dijkstra needs, grids rebuild from their
cell arrays without re-deriving geometry, and aggregate-index social
summaries are recomputed exactly from the landmark matrix (they are a
pure function of it — cheaper to recompute than to checksum).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    InjectedFault,
    StoreCorruptionError,
    commit_dir,
    read_column,
    read_manifest,
    require_numpy,
    temp_sibling,
    write_column,
    write_manifest,
)

try:
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None


# -- writing ------------------------------------------------------------

def _base_config(engine) -> dict:
    """Config fragment shared by both engine kinds."""
    norm = engine.normalization
    return {
        "n": engine.graph.n,
        "directed": engine.graph.directed,
        "num_edges": engine.graph.num_edges,
        "s": engine.s,
        "seed": engine.seed,
        "default_t": engine.default_t,
        "landmark_strategy": engine.landmark_strategy,
        "backend": engine.backend,
        "normalization": {"p_max": norm.p_max, "d_max": norm.d_max},
        "landmarks": [int(l) for l in engine.landmarks.landmarks],
    }


def _write_shared_columns(engine, tmp: Path, columns: dict) -> None:
    """The columns both kinds store once: coordinates, landmark
    matrix, CSR adjacency."""
    locations = engine.locations
    columns["xs"] = write_column(tmp, "xs", _np.asarray(locations.xs, dtype=_np.float64))
    columns["ys"] = write_column(tmp, "ys", _np.asarray(locations.ys, dtype=_np.float64))
    landmarks = engine.landmarks
    matrix = landmarks.matrix
    if matrix is None:  # pragma: no cover - numpy-less landmark tables
        matrix = _np.array([list(row) for row in landmarks.dist], dtype=_np.float64)
    columns["landmark_matrix"] = write_column(tmp, "landmark_matrix", matrix)
    if engine.graph.directed:
        matrix_rev = landmarks.matrix_rev
        if matrix_rev is None:  # pragma: no cover - numpy-less landmark tables
            matrix_rev = _np.array([list(row) for row in landmarks.dist_rev], dtype=_np.float64)
        columns["landmark_matrix_rev"] = write_column(tmp, "landmark_matrix_rev", matrix_rev)
    graph = engine.graph
    columns["graph_indptr"] = write_column(
        tmp, "graph_indptr", _np.asarray(graph.indptr, dtype=_np.int64)
    )
    columns["graph_nbrs"] = write_column(
        tmp, "graph_nbrs", _np.asarray(graph.nbrs, dtype=_np.int64)
    )
    columns["graph_wts"] = write_column(
        tmp, "graph_wts", _np.asarray(graph.wts, dtype=_np.float64)
    )


def _write_grid_columns(grid, tmp: Path, columns: dict, prefix: str) -> list:
    """Persist one grid's cell arrays under ``<prefix>_users/ixs/iys``;
    returns the bbox as a JSON-ready 4-list."""
    users, ixs, iys = grid.to_arrays()
    columns[f"{prefix}_users"] = write_column(
        tmp, f"{prefix}_users", _np.asarray(users, dtype=_np.int64)
    )
    columns[f"{prefix}_ixs"] = write_column(
        tmp, f"{prefix}_ixs", _np.asarray(ixs, dtype=_np.int64)
    )
    columns[f"{prefix}_iys"] = write_column(
        tmp, f"{prefix}_iys", _np.asarray(iys, dtype=_np.int64)
    )
    bbox = grid.bbox
    return [bbox.minx, bbox.miny, bbox.maxx, bbox.maxy]


def _write_single(engine, tmp: Path) -> dict:
    columns: dict = {}
    _write_shared_columns(engine, tmp, columns)
    config = _base_config(engine)
    config["grid_bbox"] = _write_grid_columns(engine.grid, tmp, columns, "grid")
    config["index_users"] = (
        None if engine.index_users is None else sorted(int(u) for u in engine.index_users)
    )
    # The social-distance sketch is persisted only once the engine has
    # actually materialised one (it is expensive to build and optional
    # to have): the section is additive, so snapshots without it load
    # unchanged on every format-1 reader.
    sketch = engine._sketch
    if sketch is not None:
        columns["sketch_indptr"] = write_column(
            tmp, "sketch_indptr", _np.asarray(sketch.indptr, dtype=_np.int64)
        )
        columns["sketch_nbrs"] = write_column(
            tmp, "sketch_nbrs", _np.asarray(sketch.nbrs, dtype=_np.int64)
        )
        columns["sketch_dists"] = write_column(
            tmp, "sketch_dists", _np.asarray(sketch.dists, dtype=_np.float64)
        )
        config["sketch"] = {
            "version": 1,
            "max_entries": int(sketch.max_entries),
            "empirical_half": float(sketch.empirical_half),
        }
    return {"kind": "engine", "config": config, "columns": columns}


def _write_sharded(engine, tmp: Path) -> dict:
    columns: dict = {}
    _write_shared_columns(engine, tmp, columns)
    config = _base_config(engine)
    config["shard_s"] = engine.shard_s
    config["max_workers"] = engine.max_workers
    config["partitioner_kind"] = engine.partitioner_kind
    config["partitioner"] = engine.partitioner.to_config()
    shards = []
    for sid in sorted(engine._engines):
        shard = engine._engines[sid]
        if len(shard.grid) == 0:
            continue  # drained by forget_location: rebuilt lazily on demand
        bbox = _write_grid_columns(shard.grid, tmp, columns, f"shard{sid}_grid")
        shards.append(
            {"sid": sid, "grid_bbox": bbox, "members": len(shard.grid)}
        )
    config["shards"] = shards
    return {"kind": "sharded", "config": config, "columns": columns}


def save_engine(engine, path) -> Path:
    """Write a crash-consistent snapshot of ``engine`` to directory
    ``path``.

        >>> import tempfile
        >>> from repro import GeoSocialEngine, gowalla_like, save_engine, load_engine
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=60, seed=1))
        >>> path = save_engine(engine, tempfile.mkdtemp() + "/snap")
        >>> load_engine(path).graph.n
        60

    The caller is responsible for quiescing or read-locking the engine
    (:meth:`GeoSocialEngine.save` / :meth:`ShardedGeoSocialEngine.save`
    do); this function owns the durability protocol: temp sibling →
    columns fsynced → manifest fsynced (the commit point) → directory
    fsync → atomic rename.  On an :class:`InjectedFault` the temp state
    is deliberately left behind (a simulated crash); on any real error
    it is cleaned up.
    """
    require_numpy()
    from repro import __version__
    from repro.shard.engine import ShardedGeoSocialEngine

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = temp_sibling(path)
    tmp.mkdir(parents=True)
    try:
        if isinstance(engine, ShardedGeoSocialEngine):
            manifest = _write_sharded(engine, tmp)
        else:
            manifest = _write_single(engine, tmp)
        manifest["format"] = FORMAT_NAME
        manifest["format_version"] = FORMAT_VERSION
        manifest["library_version"] = __version__
        write_manifest(tmp, manifest)
        commit_dir(tmp, path)
    except InjectedFault:
        raise  # simulated crash: leave the partial temp state on disk
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


# -- loading ------------------------------------------------------------

def _column(path, manifest: dict, name: str, *, mmap: bool, verify: bool):
    entry = manifest["columns"].get(name)
    if entry is None:
        raise StoreCorruptionError(
            f"snapshot at {path} lists no column {name!r} in its manifest"
        )
    return read_column(path, entry, mmap=mmap, verify=verify)


def _load_shared(path, manifest: dict, *, mmap: bool, verify: bool):
    """(graph, locations, landmark_index, normalization) from the
    shared columns — the warm-start core both kinds build on."""
    from repro.core.ranking import Normalization
    from repro.graph.landmarks import LandmarkIndex
    from repro.graph.socialgraph import SocialGraph
    from repro.spatial.point import LocationTable

    config = manifest["config"]
    n = int(config["n"])
    xs = _column(path, manifest, "xs", mmap=mmap, verify=verify)
    ys = _column(path, manifest, "ys", mmap=mmap, verify=verify)
    if len(xs) != n or len(ys) != n:
        raise StoreCorruptionError(
            f"coordinate columns cover {len(xs)}/{len(ys)} users, "
            f"the manifest says n={n}"
        )
    locations = LocationTable.adopt_columns(xs, ys)

    # CSR arrays become the flat Python lists the Dijkstra hot loops
    # index — mmap buys nothing for data that is .tolist()'ed anyway.
    indptr = _column(path, manifest, "graph_indptr", mmap=False, verify=verify)
    nbrs = _column(path, manifest, "graph_nbrs", mmap=False, verify=verify)
    wts = _column(path, manifest, "graph_wts", mmap=False, verify=verify)
    try:
        graph = SocialGraph.from_csr(
            n,
            indptr.tolist(),
            nbrs.tolist(),
            wts.tolist(),
            directed=bool(config["directed"]),
            num_edges=int(config["num_edges"]),
        )
    except ValueError as err:
        raise StoreCorruptionError(f"CSR columns are inconsistent: {err}") from err

    matrix = _column(path, manifest, "landmark_matrix", mmap=mmap, verify=verify)
    matrix_rev = (
        _column(path, manifest, "landmark_matrix_rev", mmap=mmap, verify=verify)
        if graph.directed
        else None
    )
    try:
        landmarks = LandmarkIndex.from_tables(
            graph, [int(l) for l in config["landmarks"]], matrix, matrix_rev
        )
    except ValueError as err:
        raise StoreCorruptionError(f"landmark tables are inconsistent: {err}") from err

    norm_cfg = config["normalization"]
    normalization = Normalization(
        p_max=float(norm_cfg["p_max"]), d_max=float(norm_cfg["d_max"])
    )
    return graph, locations, landmarks, normalization


def _restore_indexes(path, manifest, prefix, bbox4, fanout, landmarks, locations, *, verify):
    """(UniformGrid, AggregateIndex) from one persisted cell-array
    triple.  The SPA grid and the aggregate's leaf grid are maintained
    in lockstep by every engine mutation, so one stored image restores
    both (as two independent instances); summaries recompute exactly."""
    from repro.index.aggregate import AggregateIndex
    from repro.spatial.grid import UniformGrid
    from repro.spatial.multigrid import MultiLevelGrid
    from repro.spatial.point import BBox

    users = _column(path, manifest, f"{prefix}_users", mmap=False, verify=verify)
    ixs = _column(path, manifest, f"{prefix}_ixs", mmap=False, verify=verify)
    iys = _column(path, manifest, f"{prefix}_iys", mmap=False, verify=verify)
    n = int(manifest["config"]["n"])
    if users.size and (users.min() < 0 or users.max() >= n):
        raise StoreCorruptionError(
            f"grid column {prefix}_users references user ids outside [0, {n})"
        )
    if not (users.shape == ixs.shape == iys.shape):
        raise StoreCorruptionError(
            f"grid columns {prefix}_* have mismatched lengths "
            f"{users.shape}/{ixs.shape}/{iys.shape}"
        )
    try:
        bbox = BBox(*(float(v) for v in bbox4))
        resolution = fanout * fanout
        grid = UniformGrid.from_arrays(bbox, resolution, users, ixs, iys)
        leaf = UniformGrid.from_arrays(bbox, resolution, users, ixs, iys)
        aggregate = AggregateIndex(
            MultiLevelGrid.from_grid(leaf, fanout), landmarks, locations
        )
    except (TypeError, ValueError) as err:
        raise StoreCorruptionError(f"grid columns {prefix}_* are invalid: {err}") from err
    return grid, aggregate


def _load_sketch(path, manifest: dict, graph, landmarks, *, mmap: bool, verify: bool):
    """The persisted sketch, or ``None`` when the snapshot predates the
    sketch section.  Absence is *not* corruption — the engine rebuilds
    its sketch lazily on first approx/budgeted use — but a half-present
    section (columns without metadata, or inconsistent CSR shapes) is.
    """
    from repro.sketch.index import SketchIndex

    if manifest["columns"].get("sketch_indptr") is None:
        return None
    meta = manifest["config"].get("sketch")
    if not isinstance(meta, dict):
        raise StoreCorruptionError(
            f"snapshot at {path} stores sketch columns but no sketch "
            "metadata section — the manifest is mutually inconsistent"
        )
    indptr = _column(path, manifest, "sketch_indptr", mmap=mmap, verify=verify)
    nbrs = _column(path, manifest, "sketch_nbrs", mmap=mmap, verify=verify)
    dists = _column(path, manifest, "sketch_dists", mmap=mmap, verify=verify)
    try:
        return SketchIndex.from_tables(
            graph,
            landmarks,
            indptr,
            nbrs,
            dists,
            max_entries=int(meta["max_entries"]),
            empirical_half=float(meta["empirical_half"]),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise StoreCorruptionError(f"sketch columns are inconsistent: {err}") from err


def _load_single(path, manifest: dict, *, mmap: bool, verify: bool):
    from repro.backend import resolve_stored_backend
    from repro.core.engine import GeoSocialEngine

    config = manifest["config"]
    graph, locations, landmarks, normalization = _load_shared(
        path, manifest, mmap=mmap, verify=verify
    )
    fanout = int(config["s"])
    grid, aggregate = _restore_indexes(
        path, manifest, "grid", config["grid_bbox"], fanout, landmarks, locations,
        verify=verify,
    )
    index_users = config.get("index_users")
    sketch = _load_sketch(path, manifest, graph, landmarks, mmap=mmap, verify=verify)
    return GeoSocialEngine(
        graph,
        locations,
        s=fanout,
        seed=int(config["seed"]),
        normalization=normalization,
        default_t=int(config["default_t"]),
        landmark_strategy=config["landmark_strategy"],
        landmarks=landmarks,
        index_users=None if index_users is None else [int(u) for u in index_users],
        backend=resolve_stored_backend(config["backend"]),
        grid=grid,
        aggregate=aggregate,
        sketch=sketch,
    )


def _load_sharded(path, manifest: dict, *, mmap: bool, verify: bool):
    from repro.backend import resolve_stored_backend
    from repro.shard.engine import ShardedGeoSocialEngine
    from repro.shard.partitioner import Partitioner

    config = manifest["config"]
    graph, locations, landmarks, normalization = _load_shared(
        path, manifest, mmap=mmap, verify=verify
    )
    try:
        partitioner = Partitioner.from_config(config["partitioner"])
    except (KeyError, TypeError, ValueError) as err:
        raise StoreCorruptionError(f"partitioner config is invalid: {err}") from err

    # Ownership is derivable — owner == partitioner.shard_of(current
    # location) is the sharded engine's standing invariant — so the
    # stored per-shard membership must agree with the recomputation;
    # disagreement means the snapshot's columns contradict each other.
    expected: dict[int, set[int]] = {}
    xs, ys = locations.xs, locations.ys
    for user in locations.located_users():
        sid = partitioner.shard_of(xs[user], ys[user])
        expected.setdefault(sid, set()).add(user)

    shard_s = int(config["shard_s"])
    shard_indexes: dict = {}
    for entry in config["shards"]:
        sid = int(entry["sid"])
        grid, aggregate = _restore_indexes(
            path, manifest, f"shard{sid}_grid", entry["grid_bbox"], shard_s,
            landmarks, locations, verify=verify,
        )
        stored_members = set(grid._cell_of_user)
        if stored_members != expected.get(sid, set()):
            raise StoreCorruptionError(
                f"shard {sid} stores {len(stored_members)} members but the "
                f"partitioner assigns {len(expected.get(sid, set()))} — "
                "snapshot columns are mutually inconsistent"
            )
        if stored_members:
            shard_indexes[sid] = (grid, aggregate)
    missing = set(expected) - set(shard_indexes)
    if missing:
        raise StoreCorruptionError(
            f"snapshot stores no grid columns for populated shards {sorted(missing)}"
        )

    return ShardedGeoSocialEngine(
        graph,
        locations,
        partitioner=partitioner,
        partitioner_kind=config["partitioner_kind"],
        max_workers=int(config["max_workers"]),
        landmark_strategy=config["landmark_strategy"],
        s=int(config["s"]),
        shard_s=shard_s,
        seed=int(config["seed"]),
        normalization=normalization,
        default_t=int(config["default_t"]),
        landmarks=landmarks,
        backend=resolve_stored_backend(config["backend"]),
        _shard_indexes=shard_indexes,
    )


def load_engine(path, *, mmap: bool = True, verify: bool = True):
    """Warm-start the engine stored at ``path`` (either kind — the
    manifest's ``kind`` field dispatches).  ``verify=True`` checks
    every column's sha256; ``mmap=True`` maps the coordinate and
    landmark columns copy-on-write.

        >>> import tempfile
        >>> from repro import GeoSocialEngine, gowalla_like, load_engine
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=60, seed=1))
        >>> path = engine.save(tempfile.mkdtemp() + "/snap")
        >>> warm = load_engine(path)
        >>> [nb.user for nb in warm.query(user=0, k=3, alpha=0.3)] == \\
        ...     [nb.user for nb in engine.query(user=0, k=3, alpha=0.3)]
        True
    """
    require_numpy()
    path = Path(path)
    manifest = read_manifest(path)
    kind = manifest.get("kind")
    if kind == "engine":
        return _load_single(path, manifest, mmap=mmap, verify=verify)
    if kind == "sharded":
        return _load_sharded(path, manifest, mmap=mmap, verify=verify)
    raise StoreCorruptionError(f"manifest at {path} names unknown engine kind {kind!r}")
