"""Multi-level regular grid: the spatial skeleton of the AIS index.

The paper's aggregate index (Section 5.1) is a multi-level regular grid
in which every internal node is parent to ``s x s`` nodes of the level
below, and only the lowest two levels of the hierarchy are materialised
(footnote 1).  Concretely:

- the *top* level partitions the data bounding box into ``s x s`` nodes;
- each top node splits into ``s x s`` *leaf* cells, for a leaf
  resolution of ``s^2 x s^2``.

Cells are stored sparsely; empty cells occupy no memory and are never
visited by a search.  The structure supports the location-update
workflow of the paper: deletion from the old leaf, insertion into the
new one, with the caller (the aggregate index) maintaining per-cell
social summaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.spatial.grid import UniformGrid
from repro.spatial.point import BBox, LocationTable


class MultiLevelGrid:
    """Two materialised levels of a regular grid hierarchy.

    Leaf cells are addressed by ``(ix, iy)`` at resolution ``s*s`` per
    axis; top nodes by ``(tx, ty)`` at resolution ``s`` per axis, with
    ``(tx, ty) = (ix // s, iy // s)``.
    """

    __slots__ = ("s", "leaf_grid")

    def __init__(self, bbox: BBox, s: int) -> None:
        if s < 1:
            raise ValueError(f"fanout s must be >= 1, got {s}")
        self.s = s
        self.leaf_grid = UniformGrid(bbox, s * s)

    @classmethod
    def build(
        cls,
        locations: LocationTable,
        s: int,
        users: Iterable[int] | None = None,
    ) -> "MultiLevelGrid":
        """Index every located user (or, with ``users``, only the
        located members of that subset over the subset's extent)."""
        if users is None:
            members = list(locations.located_users())
        else:
            members = [u for u in users if locations.has_location(u)]
        grid = cls(locations.bbox(members), s)
        xs, ys = locations.xs, locations.ys
        for user in members:
            grid.leaf_grid.insert(user, xs[user], ys[user])
        return grid

    @classmethod
    def from_grid(cls, leaf_grid: UniformGrid, s: int) -> "MultiLevelGrid":
        """Adopt an already-populated leaf grid (the restore path of
        :mod:`repro.store`).  The leaf resolution must be ``s * s``."""
        if leaf_grid.nx != s * s or leaf_grid.ny != s * s:
            raise ValueError(
                f"leaf grid resolution {leaf_grid.nx}x{leaf_grid.ny} != {s * s}x{s * s}"
            )
        grid = object.__new__(cls)
        grid.s = s
        grid.leaf_grid = leaf_grid
        return grid

    # -- addressing -----------------------------------------------------

    @property
    def bbox(self) -> BBox:
        return self.leaf_grid.bbox

    def leaf_of(self, x: float, y: float) -> tuple[int, int]:
        return self.leaf_grid.cell_of(x, y)

    def parent_of(self, leaf: tuple[int, int]) -> tuple[int, int]:
        return (leaf[0] // self.s, leaf[1] // self.s)

    def children_of(self, top: tuple[int, int]) -> Iterator[tuple[int, int]]:
        """Nonempty leaf children of top node ``top``."""
        bx, by = top[0] * self.s, top[1] * self.s
        cells = self.leaf_grid.cells
        for dx in range(self.s):
            for dy in range(self.s):
                coords = (bx + dx, by + dy)
                if coords in cells:
                    yield coords

    def top_bbox(self, top: tuple[int, int]) -> BBox:
        g = self.leaf_grid
        w = g.cell_w * self.s
        h = g.cell_h * self.s
        minx = g.bbox.minx + top[0] * w
        miny = g.bbox.miny + top[1] * h
        return BBox(minx, miny, minx + w, miny + h)

    def leaf_bbox(self, leaf: tuple[int, int]) -> BBox:
        return self.leaf_grid.cell_bbox(leaf[0], leaf[1])

    def nonempty_tops(self) -> list[tuple[int, int]]:
        """Top nodes that contain at least one user (sorted, for
        deterministic traversal seeding)."""
        tops = {self.parent_of(leaf) for leaf in self.leaf_grid.cells}
        return sorted(tops)

    # -- contents ---------------------------------------------------------

    def users_in_leaf(self, leaf: tuple[int, int]) -> list[int]:
        return self.leaf_grid.users_in(leaf[0], leaf[1])

    def ids_in_leaf(self, leaf: tuple[int, int]):
        """Leaf membership as a cached contiguous id-array (see
        :meth:`UniformGrid.ids_in`)."""
        return self.leaf_grid.ids_in(leaf[0], leaf[1])

    def leaf_of_user(self, user: int) -> tuple[int, int] | None:
        return self.leaf_grid.cell_of_user(user)

    def insert(self, user: int, x: float, y: float) -> tuple[int, int]:
        return self.leaf_grid.insert(user, x, y)

    def remove(self, user: int) -> tuple[int, int]:
        return self.leaf_grid.remove(user)

    def __len__(self) -> int:
        return len(self.leaf_grid)

    def __contains__(self, user: int) -> bool:
        return user in self.leaf_grid
