"""Single-level uniform grid over user locations.

A regular grid with ``resolution x resolution`` cells over the bounding
box of the data.  This is the index used by the Spatial First Approach
(paper Section 4.1): it supports O(1) location updates and, together
with :mod:`repro.spatial.nn`, incremental branch-and-bound nearest
neighbour retrieval.

Points that fall outside the construction bounding box (possible after
location updates) are clamped to the border cells, which keeps lookups
correct: a cell's spatial extent is only used to compute *lower* bounds
of distances, and border cells are conceptually unbounded outward.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.spatial.point import BBox, LocationTable

try:  # soft dependency: the scalar fallback keeps working without it
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None


_EMPTY_IDS = _np.empty(0, dtype=_np.intp) if _np is not None else None


class UniformGrid:
    """Uniform grid mapping cell coordinates to lists of user ids.

    Cell membership is kept in Python lists (O(1) append on insert);
    :meth:`ids_in` serves the same membership as a cached contiguous
    id-array — the columnar form the vectorized kernels of
    :mod:`repro.backend` consume — invalidated per cell on mutation.
    """

    __slots__ = ("bbox", "nx", "ny", "cell_w", "cell_h", "cells", "_cell_of_user", "_ids_cache")

    def __init__(self, bbox: BBox, resolution: int) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.bbox = bbox
        self.nx = resolution
        self.ny = resolution
        # Guard against degenerate (zero-extent) boxes.
        self.cell_w = (bbox.width / self.nx) or 1.0
        self.cell_h = (bbox.height / self.ny) or 1.0
        #: sparse storage: (ix, iy) -> list of user ids
        self.cells: dict[tuple[int, int], list[int]] = {}
        self._cell_of_user: dict[int, tuple[int, int]] = {}
        #: per-cell id-array cache (see ids_in)
        self._ids_cache: dict[tuple[int, int], object] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        locations: LocationTable,
        resolution: int,
        users: Iterable[int] | None = None,
    ) -> "UniformGrid":
        """Build a grid over every located user in ``locations``.

        With ``users``, only that subset is indexed (unlocated members
        are skipped) and the grid extent is the subset's bounding box —
        the member-filtered form a spatial shard uses.
        """
        if users is None:
            members = list(locations.located_users())
        else:
            members = [u for u in users if locations.has_location(u)]
        grid = cls(locations.bbox(members), resolution)
        xs, ys = locations.xs, locations.ys
        for user in members:
            grid.insert(user, xs[user], ys[user])
        return grid

    # -- persistence ------------------------------------------------------

    def to_arrays(self) -> tuple[list[int], list[int], list[int]]:
        """Flatten the grid contents to three parallel columns
        ``(users, ixs, iys)`` — the columnar image :mod:`repro.store`
        persists.  Cells are emitted in sorted coordinate order and
        members in their in-cell insertion order, so
        ``from_arrays(grid.to_arrays())`` reproduces every member list
        exactly (cell iteration order aside, which no search depends
        on beyond the sorted traversal seeding of the AIS index).
        """
        users: list[int] = []
        ixs: list[int] = []
        iys: list[int] = []
        for (ix, iy) in sorted(self.cells):
            for user in self.cells[(ix, iy)]:
                users.append(user)
                ixs.append(ix)
                iys.append(iy)
        return users, ixs, iys

    @classmethod
    def from_arrays(
        cls,
        bbox: BBox,
        resolution: int,
        users: Iterable[int],
        ixs: Iterable[int],
        iys: Iterable[int],
    ) -> "UniformGrid":
        """Rebuild a grid from :meth:`to_arrays` columns without
        re-deriving cell coordinates from locations.  Preserves the
        per-cell member order the arrays encode."""
        grid = cls(bbox, resolution)
        cells = grid.cells
        cell_of_user = grid._cell_of_user
        for user, ix, iy in zip(users, ixs, iys):
            user = int(user)
            coords = (int(ix), int(iy))
            if not (0 <= coords[0] < grid.nx and 0 <= coords[1] < grid.ny):
                raise ValueError(f"cell {coords} out of range {grid.nx}x{grid.ny}")
            if user in cell_of_user:
                raise ValueError(f"user {user} appears twice in grid arrays")
            cells.setdefault(coords, []).append(user)
            cell_of_user[user] = coords
        return grid

    # -- geometry ---------------------------------------------------------

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Cell coordinates containing point ``(x, y)``, clamped to the
        grid extent."""
        ix = int((x - self.bbox.minx) / self.cell_w)
        iy = int((y - self.bbox.miny) / self.cell_h)
        if ix < 0:
            ix = 0
        elif ix >= self.nx:
            ix = self.nx - 1
        if iy < 0:
            iy = 0
        elif iy >= self.ny:
            iy = self.ny - 1
        return ix, iy

    def cell_bbox(self, ix: int, iy: int) -> BBox:
        """Spatial extent of cell ``(ix, iy)``."""
        minx = self.bbox.minx + ix * self.cell_w
        miny = self.bbox.miny + iy * self.cell_h
        return BBox(minx, miny, minx + self.cell_w, miny + self.cell_h)

    def cell_mindist(self, ix: int, iy: int, x: float, y: float) -> float:
        """Lower bound on the distance from ``(x, y)`` to any point in
        cell ``(ix, iy)``.  Border cells are treated as unbounded outward
        so that clamped out-of-box points never violate the bound."""
        if (ix == 0 or ix == self.nx - 1) and not self.bbox.contains(x, y):
            # Conservative: out-of-box geometry only arises via clamped
            # insertions; bound from the inner edges only.
            return 0.0
        if (iy == 0 or iy == self.ny - 1) and not self.bbox.contains(x, y):
            return 0.0
        return self.cell_bbox(ix, iy).mindist(x, y)

    # -- contents ---------------------------------------------------------

    def insert(self, user: int, x: float, y: float) -> tuple[int, int]:
        """Add ``user`` at ``(x, y)``; returns the cell it landed in."""
        if user in self._cell_of_user:
            raise ValueError(f"user {user} already present; use move()")
        coords = self.cell_of(x, y)
        self.cells.setdefault(coords, []).append(user)
        self._cell_of_user[user] = coords
        self._ids_cache.pop(coords, None)
        return coords

    def remove(self, user: int) -> tuple[int, int]:
        """Remove ``user``; returns the cell it was removed from."""
        coords = self._cell_of_user.pop(user)
        members = self.cells[coords]
        members.remove(user)
        if not members:
            del self.cells[coords]
        self._ids_cache.pop(coords, None)
        return coords

    def move(self, user: int, x: float, y: float) -> tuple[tuple[int, int], tuple[int, int]]:
        """Relocate ``user``; returns ``(old_cell, new_cell)``.

        A move within the same cell only requires updating the caller's
        coordinate table, mirroring the paper's footnote 2.
        """
        old = self._cell_of_user[user]
        new = self.cell_of(x, y)
        if new != old:
            self.remove(user)
            self.cells.setdefault(new, []).append(user)
            self._cell_of_user[user] = new
            self._ids_cache.pop(new, None)
        return old, new

    def cell_of_user(self, user: int) -> tuple[int, int] | None:
        return self._cell_of_user.get(user)

    def users_in(self, ix: int, iy: int) -> list[int]:
        return self.cells.get((ix, iy), [])

    def ids_in(self, ix: int, iy: int):
        """Cell membership as a contiguous ``intp`` id-array (cached;
        rebuilt lazily after a mutation touches the cell).  Falls back
        to the plain member list when NumPy is unavailable — both forms
        are valid kernel input."""
        coords = (ix, iy)
        members = self.cells.get(coords)
        if members is None:
            return _EMPTY_IDS if _np is not None else []
        if _np is None:
            return members
        ids = self._ids_cache.get(coords)
        if ids is None:
            ids = _np.array(members, dtype=_np.intp)
            self._ids_cache[coords] = ids
        return ids

    def nonempty_cells(self) -> Iterator[tuple[int, int]]:
        return iter(self.cells)

    def __len__(self) -> int:
        """Number of indexed users."""
        return len(self._cell_of_user)

    def __contains__(self, user: int) -> bool:
        return user in self._cell_of_user

    # -- ring iteration (used by incremental NN) --------------------------

    def ring_cells(self, center: tuple[int, int], radius: int) -> Iterator[tuple[int, int]]:
        """Nonempty cells at exactly Chebyshev distance ``radius`` from
        ``center``, clipped to the grid."""
        cx, cy = center
        if radius == 0:
            if (cx, cy) in self.cells:
                yield (cx, cy)
            return
        x_lo, x_hi = cx - radius, cx + radius
        y_lo, y_hi = cy - radius, cy + radius
        for ix in range(max(x_lo, 0), min(x_hi, self.nx - 1) + 1):
            for iy in (y_lo, y_hi):
                if 0 <= iy < self.ny and (ix, iy) in self.cells:
                    yield (ix, iy)
        for iy in range(max(y_lo + 1, 0), min(y_hi - 1, self.ny - 1) + 1):
            for ix in (x_lo, x_hi):
                if 0 <= ix < self.nx and (ix, iy) in self.cells:
                    yield (ix, iy)

    def max_ring_radius(self, center: tuple[int, int]) -> int:
        """Largest ring radius that still intersects the grid."""
        cx, cy = center
        return max(cx, self.nx - 1 - cx, cy, self.ny - 1 - cy)

    def ring_lower_bound(self, radius: int) -> float:
        """Lower bound on the distance from a point in the center cell to
        any cell at Chebyshev ring ``radius``: at least ``radius - 1``
        full cells separate them."""
        if radius <= 1:
            return 0.0
        return (radius - 1) * min(self.cell_w, self.cell_h)
