"""Incremental nearest-neighbour search over a uniform grid.

Implements the branch-and-bound, distance-ordered retrieval used by the
Spatial First Approach and by TSA's spatial stream (paper Section 4):
users are produced strictly in non-decreasing Euclidean distance from
the query point, one at a time, and the search state persists between
calls ("sorted access" in the TA terminology of Section 2.4).

The frontier is a min-heap mixing *cells* (keyed by a lower bound on
the distance to any user inside) and *users* (keyed by exact distance).
Cells are fed into the heap ring by ring around the query cell, so work
is proportional to the neighbourhood actually explored rather than the
whole grid.
"""

from __future__ import annotations

from typing import Iterator

from repro.spatial.grid import UniformGrid
from repro.spatial.point import LocationTable
from repro.utils.heaps import MinHeap

_CELL = 0
_USER = 1


class IncrementalNearestNeighbors:
    """Distance-ordered user stream around a fixed query point.

    Parameters
    ----------
    grid:
        The spatial index to search.
    locations:
        Coordinate table used for exact user distances.
    x, y:
        Query point.
    exclude:
        Optional user id never to report (typically the query user).
    heap:
        Optional externally-owned heap, letting callers aggregate pop
        statistics across search structures.
    kernels:
        Optional :class:`~repro.backend.base.Kernels` evaluating a
        popped cell's user distances in one batched call (scalar
        fallback when omitted); both backends produce bit-identical
        distances.
    """

    __slots__ = ("grid", "locations", "x", "y", "exclude", "heap", "_ring", "_max_ring", "_exhausted", "count", "cells_opened", "_kernels", "_xs", "_ys")

    def __init__(
        self,
        grid: UniformGrid,
        locations: LocationTable,
        x: float,
        y: float,
        exclude: int | None = None,
        heap: MinHeap | None = None,
        kernels=None,
    ) -> None:
        if kernels is None:
            from repro.backend import resolve_backend

            kernels = resolve_backend("python")
        self.grid = grid
        self.locations = locations
        self.x = x
        self.y = y
        self.exclude = exclude
        self.heap = heap if heap is not None else MinHeap()
        self._kernels = kernels
        self._xs, self._ys = locations.columns()
        self._ring = 0
        center = grid.cell_of(x, y)
        self._max_ring = grid.max_ring_radius(center)
        self._exhausted = False
        #: number of users reported so far
        self.count = 0
        #: number of grid cells popped and expanded so far
        self.cells_opened = 0
        self._push_ring(center, 0)

    def _push_ring(self, center: tuple[int, int], radius: int) -> None:
        for coords in self.grid.ring_cells(center, radius):
            key = self.grid.cell_mindist(coords[0], coords[1], self.x, self.y)
            # Tie-break by coordinates for determinism.
            self.heap.push((key, _CELL, coords))

    def _refill(self) -> None:
        """Feed rings until the heap front is guaranteed correct."""
        center = self.grid.cell_of(self.x, self.y)
        while self._ring < self._max_ring:
            next_lb = self.grid.ring_lower_bound(self._ring + 1)
            if self.heap and self.heap.peek_key() <= next_lb:
                return
            self._ring += 1
            self._push_ring(center, self._ring)
        self._exhausted = True

    def next(self) -> tuple[int, float] | None:
        """Return the next ``(user, distance)`` pair, or ``None`` when
        every indexed user has been reported."""
        while True:
            if not self._exhausted:
                self._refill()
            if not self.heap:
                return None
            key, kind, payload = self.heap.pop()
            if kind == _CELL:
                self.cells_opened += 1
                ix, iy = payload
                ids = self.grid.ids_in(ix, iy)
                distances = self._kernels.euclidean_to_point(
                    self._xs, self._ys, self.x, self.y, ids
                )
                push = self.heap.push
                exclude = self.exclude
                for pos in range(len(ids)):
                    user = int(ids[pos])
                    if user == exclude:
                        continue
                    push((float(distances[pos]), _USER, user))
            else:
                self.count += 1
                return payload, key

    def __iter__(self) -> Iterator[tuple[int, float]]:
        while True:
            item = self.next()
            if item is None:
                return
            yield item
