"""Euclidean geometry primitives and the columnar user location table.

Locations live in a flat 2-D Euclidean space.  Following the paper
(Section 6, footnote 3), some users have *no known location* and are
treated as infinitely far away from everybody; :class:`LocationTable`
encodes a missing location as ``NaN`` coordinates and reports ``inf``
distances for it.

Coordinates are stored *columnar*: two contiguous ``float64`` arrays
indexed by user id (plain Python lists when NumPy is unavailable), so
the vectorized kernels of :mod:`repro.backend` can evaluate whole
candidate arrays in one call.

**One distance primitive.**  Every Euclidean distance in this codebase
is ``sqrt(dx² + dy²)`` — deliberately *not* ``math.hypot``.  The two
can differ by 1 ulp, and ``numpy.hypot`` differs from ``math.hypot`` on
some platforms; ``sqrt``, ``*`` and ``+`` are IEEE-exact operations, so
the scalar and the vectorized backend produce bit-identical distances
(and therefore bit-identical rankings and tie-breaks).  All operands
here are unit-square scale, far from the overflow range ``hypot``
exists to protect.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

try:  # soft dependency: the scalar fallback keeps working without it
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None

INF = math.inf
_sqrt = math.sqrt


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between points ``(ax, ay)`` and ``(bx, by)``
    (``sqrt(dx² + dy²)``; see the module docstring for why not
    ``hypot``)."""
    dx = ax - bx
    dy = ay - by
    return _sqrt(dx * dx + dy * dy)


@dataclass(frozen=True)
class BBox:
    """Axis-aligned bounding rectangle ``[minx, maxx] x [miny, maxy]``.

        >>> from repro import BBox
        >>> box = BBox(0.0, 0.0, 2.0, 1.0)
        >>> box.contains(1.0, 0.5), box.mindist(3.0, 0.5)
        (True, 1.0)
        >>> round(box.diagonal, 4)
        2.2361
    """

    minx: float
    miny: float
    maxx: float
    maxy: float

    def __post_init__(self) -> None:
        if self.maxx < self.minx or self.maxy < self.miny:
            raise ValueError(f"degenerate bbox {self!r}")

    @property
    def width(self) -> float:
        return self.maxx - self.minx

    @property
    def height(self) -> float:
        return self.maxy - self.miny

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal — the maximum pairwise distance of
        any two points inside the box (used as the spatial normaliser
        ``D_max``)."""
        w = self.width
        h = self.height
        return _sqrt(w * w + h * h)

    def contains(self, x: float, y: float) -> bool:
        return self.minx <= x <= self.maxx and self.miny <= y <= self.maxy

    def mindist(self, x: float, y: float) -> float:
        """Minimum Euclidean distance from ``(x, y)`` to any point of the
        box (0 when the point lies inside) — the bound ``ď(u_q, C)`` of
        the paper's Section 5.1."""
        dx = max(self.minx - x, 0.0, x - self.maxx)
        dy = max(self.miny - y, 0.0, y - self.maxy)
        if dx == 0.0 and dy == 0.0:
            return 0.0
        return _sqrt(dx * dx + dy * dy)

    def maxdist(self, x: float, y: float) -> float:
        """Maximum Euclidean distance from ``(x, y)`` to any point of the
        box (distance to the farthest corner)."""
        dx = max(x - self.minx, self.maxx - x)
        dy = max(y - self.miny, self.maxy - y)
        return _sqrt(dx * dx + dy * dy)

    @staticmethod
    def of_points(points: Iterable[tuple[float, float]]) -> "BBox":
        """Tight bounding box of a non-empty point collection."""
        it = iter(points)
        try:
            x0, y0 = next(it)
        except StopIteration:
            raise ValueError("cannot compute bbox of an empty collection") from None
        minx = maxx = x0
        miny = maxy = y0
        for x, y in it:
            if x < minx:
                minx = x
            elif x > maxx:
                maxx = x
            if y < miny:
                miny = y
            elif y > maxy:
                maxy = y
        return BBox(minx, miny, maxx, maxy)


class LocationTable:
    """Current (last reported) locations for ``n`` users, stored as two
    columnar coordinate arrays.

    Coordinates live in two flat ``float64`` columns indexed by user id
    (:attr:`xs`, :attr:`ys`); a missing location is a ``NaN`` pair.  The
    table is mutable — :meth:`set` supports the dynamic-location setting
    of the paper — and cheap to snapshot.  Construct it from coordinate
    columns (lists, tuples, or NumPy arrays, uniformly) with
    :meth:`from_columns`; the legacy positional constructor still works
    but emits a :class:`DeprecationWarning`.

        >>> from repro import LocationTable
        >>> table = LocationTable.empty(3)
        >>> table.set(0, 0.1, 0.2); table.set(1, 0.4, 0.6)
        >>> table.n_located, round(table.distance(0, 1), 3)
        (2, 0.5)
        >>> table.distance(0, 2)   # user 2 has no location
        inf
    """

    __slots__ = ("xs", "ys", "_n_located")

    def __init__(self, xs, ys, *, _trusted: bool = False) -> None:
        if not _trusted:
            warnings.warn(
                "constructing LocationTable(xs, ys) directly is deprecated; "
                "use LocationTable.from_columns(xs, ys), which accepts "
                "lists, tuples, and numpy arrays uniformly",
                DeprecationWarning,
                stacklevel=2,
            )
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if _np is not None:
            #: columnar storage: contiguous float64, NaN = missing
            self.xs = _np.array(xs, dtype=_np.float64)
            self.ys = _np.array(ys, dtype=_np.float64)
            self._n_located = int(_np.count_nonzero(~_np.isnan(self.xs)))
        else:
            self.xs = list(xs)
            self.ys = list(ys)
            self._n_located = sum(1 for x in self.xs if x == x)  # NaN != NaN

    # -- construction -------------------------------------------------

    @classmethod
    def from_columns(cls, xs: Sequence[float], ys: Sequence[float]) -> "LocationTable":
        """Build a table from two coordinate columns (any sequence or
        array type; the data is copied into contiguous storage).

            >>> from repro import LocationTable
            >>> table = LocationTable.from_columns([0.0, 0.5], [0.0, 0.5])
            >>> table.n_located
            2
        """
        return cls(xs, ys, _trusted=True)

    @classmethod
    def adopt_columns(cls, xs, ys) -> "LocationTable":
        """Adopt two pre-built ``float64`` coordinate columns *without
        copying* — the warm-start path of :mod:`repro.store`, where the
        columns are memory-mapped (copy-on-write) ``.npy`` files and a
        copy would defeat the point of mmap.

        The caller guarantees dtype/contiguity (``np.load`` does);
        only the shape agreement is checked here.  Falls back to
        :meth:`from_columns` when NumPy is unavailable.
        """
        if _np is None:  # pragma: no cover - exercised only off-CI
            return cls.from_columns(xs, ys)
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        table = object.__new__(cls)
        table.xs = xs
        table.ys = ys
        table._n_located = int(_np.count_nonzero(~_np.isnan(xs)))
        return table

    @classmethod
    def empty(cls, n: int) -> "LocationTable":
        nan = math.nan
        return cls([nan] * n, [nan] * n, _trusted=True)

    @classmethod
    def from_dict(cls, n: int, locations: dict[int, tuple[float, float]]) -> "LocationTable":
        table = cls.empty(n)
        for user, (x, y) in locations.items():
            table.set(user, x, y)
        return table

    # -- basic accessors ----------------------------------------------

    def __len__(self) -> int:
        return len(self.xs)

    @property
    def n_located(self) -> int:
        """Number of users with a known location."""
        return self._n_located

    @property
    def coverage(self) -> float:
        """Fraction of users with a known location."""
        n = len(self.xs)
        return self._n_located / n if n else 0.0

    def has_location(self, user: int) -> bool:
        x = self.xs[user]
        return x == x

    def get(self, user: int) -> tuple[float, float] | None:
        x = self.xs[user]
        if x != x:
            return None
        return (float(x), float(self.ys[user]))

    def located_users(self) -> Iterator[int]:
        """Ids of users with a known location, in id order."""
        if _np is not None:
            return iter(_np.nonzero(~_np.isnan(self.xs))[0].tolist())
        return iter([user for user, x in enumerate(self.xs) if x == x])

    def columns(self) -> tuple[Sequence[float], Sequence[float]]:
        """The raw coordinate columns ``(xs, ys)`` — contiguous
        ``float64`` arrays under NumPy, plain lists otherwise.  This is
        the zero-copy feed for :mod:`repro.backend` kernels; treat it as
        read-only and mutate through :meth:`set`/:meth:`clear`."""
        return self.xs, self.ys

    # -- geometry ------------------------------------------------------

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between users ``u`` and ``v``; ``inf`` if
        either location is unknown."""
        ux = self.xs[u]
        vx = self.xs[v]
        if ux != ux or vx != vx:
            return INF
        dx = ux - vx
        dy = self.ys[u] - self.ys[v]
        return _sqrt(dx * dx + dy * dy)

    def distance_to(self, u: int, x: float, y: float) -> float:
        """Distance from user ``u`` to an explicit point."""
        ux = self.xs[u]
        if ux != ux:
            return INF
        dx = ux - x
        dy = self.ys[u] - y
        return _sqrt(dx * dx + dy * dy)

    def bbox(self, users: Iterable[int] | None = None) -> BBox:
        """Bounding box of all known locations (or, with ``users``, of
        the located users in that subset — the extent a spatially
        partitioned index covers).

        One vectorized ``nanmin``/``nanmax`` pass over the coordinate
        columns — no per-user scan.
        """
        if _np is not None:
            if users is None:
                xs, ys = self.xs, self.ys
            else:
                ids = _np.fromiter(users, dtype=_np.intp)
                xs = self.xs[ids]
                ys = self.ys[ids]
            if xs.size == 0 or _np.isnan(xs).all():
                raise ValueError("cannot compute bbox of an empty collection")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                return BBox(
                    float(_np.nanmin(xs)),
                    float(_np.nanmin(ys)),
                    float(_np.nanmax(xs)),
                    float(_np.nanmax(ys)),
                )
        candidates = self.located_users() if users is None else (
            u for u in users if self.has_location(u)
        )
        pts = ((self.xs[u], self.ys[u]) for u in candidates)
        return BBox.of_points(pts)

    # -- mutation ------------------------------------------------------

    def set(self, user: int, x: float, y: float) -> None:
        """Set/overwrite the location of ``user``."""
        if x != x or y != y:
            raise ValueError("use clear() to remove a location, not NaN")
        if not self.has_location(user):
            self._n_located += 1
        self.xs[user] = x
        self.ys[user] = y

    def clear(self, user: int) -> None:
        """Forget the location of ``user``."""
        if self.has_location(user):
            self._n_located -= 1
        self.xs[user] = math.nan
        self.ys[user] = math.nan

    def copy(self) -> "LocationTable":
        return LocationTable.from_columns(self.xs, self.ys)
