"""Spatial substrate: points, bounding boxes, grid indexes, NN search.

The paper keeps user locations in a main-memory regular grid and
retrieves nearest neighbours with a branch-and-bound incremental search
(the combination recommended for dynamic in-memory spatial data, its
reference [35]).  This package provides:

- :mod:`repro.spatial.point` — Euclidean geometry, bounding boxes, and
  the :class:`~repro.spatial.point.LocationTable` storing (possibly
  missing) user locations;
- :mod:`repro.spatial.grid` — a single-level uniform grid with O(1)
  location updates;
- :mod:`repro.spatial.nn` — incremental (distance-ordered) nearest
  neighbour search over the grid;
- :mod:`repro.spatial.multigrid` — the multi-level grid underlying the
  paper's aggregate index (Section 5.1).
"""

from repro.spatial.grid import UniformGrid
from repro.spatial.multigrid import MultiLevelGrid
from repro.spatial.nn import IncrementalNearestNeighbors
from repro.spatial.point import BBox, LocationTable, euclidean

__all__ = [
    "BBox",
    "LocationTable",
    "euclidean",
    "UniformGrid",
    "MultiLevelGrid",
    "IncrementalNearestNeighbors",
]
