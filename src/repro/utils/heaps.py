"""Binary min-heap wrapper with pop accounting.

Every search structure in the paper (Dijkstra heaps, incremental-NN
heaps, the AIS branch-and-bound heap, reverse A* heaps) is a binary
min-heap, and the paper's *pop ratio* metric counts vertices popped from
all of them.  :class:`MinHeap` wraps :mod:`heapq` and counts pops so the
metric falls out of the data structure instead of being sprinkled over
the algorithms.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator


class MinHeap:
    """A small, fast min-heap of ``(key, payload...)`` tuples.

    Entries are compared by the full tuple, so callers that need
    deterministic tie-breaking include a tie-break component (user id,
    sequence number) after the key.
    """

    __slots__ = ("_items", "pops")

    def __init__(self, items: Iterable[tuple] | None = None) -> None:
        self._items: list[tuple] = list(items) if items is not None else []
        if self._items:
            heapq.heapify(self._items)
        #: number of entries popped over the heap's lifetime
        self.pops: int = 0

    def push(self, item: tuple) -> None:
        heapq.heappush(self._items, item)

    def pop(self) -> tuple:
        self.pops += 1
        return heapq.heappop(self._items)

    def peek(self) -> tuple:
        return self._items[0]

    def peek_key(self) -> Any:
        """Key (first tuple component) of the minimum entry."""
        return self._items[0][0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[tuple]:
        """Iterate entries in arbitrary (heap) order."""
        return iter(self._items)

    def clear(self) -> None:
        self._items.clear()
