"""Concurrency primitives shared by the engine, service, and shard
layers: a readers-writer lock and a lazily-created worker pool.

SSRQ serving is read-mostly: queries only read the graph, the location
table, and the indexes, so any number may run concurrently — but a
location or edge update mutates the grid and the aggregate index in
place and must run exclusively.  The stdlib has no RW lock, so this
module carries a small writer-preferring implementation: once a writer
is waiting, new readers queue behind it, bounding update latency under
sustained query traffic.

Each :class:`~repro.core.engine.GeoSocialEngine` owns one instance
(``engine.rw_lock``) guarding *its* indexes; every
:class:`~repro.service.QueryService` over the same engine shares that
one lock, so updates through any path exclude queries through all
paths.  :class:`TaskPool` is the thread-pool utility behind the
scatter-gather fan-out of
:class:`~repro.shard.ShardedGeoSocialEngine`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


class ReadWriteLock:
    """Writer-preferring readers-writer lock.

        >>> from repro.utils.concurrency import ReadWriteLock
        >>> lock = ReadWriteLock()
        >>> with lock.read_locked():          # many readers may hold this
        ...     pass
        >>> with lock.write_locked():         # exclusive
        ...     pass

    Neither side is re-entrant: a thread already holding the read side
    must not re-acquire it (writer preference would deadlock it behind
    a waiting writer), and a writer must not nest writes.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager holding the shared (reader) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager holding the exclusive (writer) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class TaskPool:
    """Lazily-created worker pool with an order-preserving :meth:`map`.

    A thin wrapper over :class:`~concurrent.futures.ThreadPoolExecutor`
    that (a) defers pool creation until the first parallel call, so
    single-shard or ``max_workers == 1`` configurations never spawn
    threads, and (b) executes inline whenever parallelism cannot help
    (one task, or a single worker).

        >>> from repro.utils.concurrency import TaskPool
        >>> pool = TaskPool(max_workers=2)
        >>> pool.map(lambda v: v * v, [1, 2, 3])
        [1, 4, 9]
        >>> pool.close()
    """

    def __init__(self, max_workers: int, thread_name_prefix: str = "taskpool") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._thread_name_prefix = thread_name_prefix
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (callers may fall back
        to inline execution)."""
        return self._closed

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Apply ``fn`` to every item, returning results in item order.

        Runs inline (no threads) when the pool width or the task count
        makes concurrency pointless — or when the pool has been closed,
        so a caller racing :meth:`close` degrades to sequential
        execution instead of failing (no check-then-act window)."""
        if self.max_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with self._lock:
            if self._closed:
                executor = None
            else:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix=self._thread_name_prefix,
                    )
                executor = self._pool
        if executor is None:
            return [fn(item) for item in items]
        try:
            return list(executor.map(fn, items))
        except RuntimeError as exc:
            # Only the close()-raced-the-submit shutdown error falls
            # back inline; a RuntimeError raised by fn itself (or by a
            # live pool) must propagate, not trigger a silent re-run.
            if self._closed and "shutdown" in str(exc):
                return [fn(item) for item in items]
            raise

    def close(self) -> None:
        """Shut the pool down (idempotent); further :meth:`map` calls
        raise ``RuntimeError``."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
