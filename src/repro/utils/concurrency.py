"""Readers-writer lock serialising index mutation against queries.

SSRQ serving is read-mostly: queries only read the graph, the location
table, and the indexes, so any number may run concurrently — but a
location or edge update mutates the grid and the aggregate index in
place and must run exclusively.  The stdlib has no RW lock, so this
module carries a small writer-preferring implementation: once a writer
is waiting, new readers queue behind it, bounding update latency under
sustained query traffic.

Each :class:`~repro.core.engine.GeoSocialEngine` owns one instance
(``engine.rw_lock``) guarding *its* indexes; every
:class:`~repro.service.QueryService` over the same engine shares that
one lock, so updates through any path exclude queries through all
paths.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Writer-preferring readers-writer lock.

        >>> from repro.utils.concurrency import ReadWriteLock
        >>> lock = ReadWriteLock()
        >>> with lock.read_locked():          # many readers may hold this
        ...     pass
        >>> with lock.write_locked():         # exclusive
        ...     pass

    Neither side is re-entrant: a thread already holding the read side
    must not re-acquire it (writer preference would deadlock it behind
    a waiting writer), and a writer must not nest writes.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager holding the shared (reader) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager holding the exclusive (writer) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
