"""Argument validation helpers shared across the public API."""

from __future__ import annotations

import numbers as _numbers


def check_alpha(alpha: float) -> float:
    """Validate the social/spatial preference parameter ``alpha``.

    Non-numbers get their own wording (the wire model raises the same
    one), and NaN fails the chained range comparison.
    """
    if isinstance(alpha, bool) or not isinstance(alpha, _numbers.Real):
        raise ValueError(f"alpha must be a number, got {alpha!r}")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
    return float(alpha)


def check_k(k: int) -> int:
    """Validate a result-set size ``k`` (the wording every layer pins:
    the same messages ``TopKBuffer`` and the wire model raise).

    NumPy integer scalars are accepted (ids often arrive off columnar
    arrays); bools and non-integral values are not.
    """
    if isinstance(k, bool) or not isinstance(k, _numbers.Integral):
        raise ValueError(f"k must be an integer, got {k!r}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return int(k)


def check_budget(budget: float | None) -> float | None:
    """Validate a per-query accuracy budget (``None`` means exact)."""
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, (int, float)):
        raise ValueError(f"budget must be a number, got {budget!r}")
    value = float(budget)
    if not 0.0 <= value <= 1.0:  # NaN fails the chained comparison too
        raise ValueError(f"budget must be in [0, 1], got {budget!r}")
    return value


def check_positive(name: str, value: float) -> float:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_user(user: int, n: int) -> int:
    """Validate a user/vertex identifier against population size ``n``."""
    if not 0 <= user < n:
        raise ValueError(f"user id {user} out of range [0, {n})")
    return user
