"""Argument validation helpers shared across the public API."""

from __future__ import annotations


def check_alpha(alpha: float) -> float:
    """Validate the social/spatial preference parameter ``alpha``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
    return float(alpha)


def check_positive(name: str, value: float) -> float:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_user(user: int, n: int) -> int:
    """Validate a user/vertex identifier against population size ``n``."""
    if not 0 <= user < n:
        raise ValueError(f"user id {user} out of range [0, {n})")
    return user
