"""Shared low-level utilities: heaps, RNG helpers, validation."""

from repro.utils.heaps import MinHeap
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_alpha,
    check_positive,
    check_probability,
    check_user,
)

__all__ = [
    "MinHeap",
    "make_rng",
    "check_alpha",
    "check_positive",
    "check_probability",
    "check_user",
]
