"""Deterministic random-number helpers.

Every stochastic component (generators, workloads, sampling) accepts an
integer seed and derives an isolated :class:`random.Random` through
:func:`make_rng`, so experiments are reproducible and independent of
call order.
"""

from __future__ import annotations

import random


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for nondeterministic seeding (discouraged outside
    exploratory use).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
