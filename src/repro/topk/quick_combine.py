"""Quick Combine probe scheduling (Güntzer et al.; paper Section 4.2).

Instead of round-robin, Quick Combine probes next the repository whose
threshold contribution is growing fastest: it estimates, per stream,
the recent rate of increase of the last-pulled value and weighs it by
the stream's preference coefficient.  TSA-QC plugs this policy into the
twofold search's first phase (social weight ``α``, spatial ``1 − α``).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence


class QuickCombinePolicy:
    """Chooses which of ``m`` sorted streams to probe next.

    Parameters
    ----------
    weights:
        Preference coefficient of each stream (e.g. ``(α, 1 − α)``).
    window:
        Number of recent observations per stream over which the rate of
        increase is estimated.
    """

    __slots__ = ("weights", "window", "_history", "_probes", "_next_rr")

    def __init__(self, weights: Sequence[float], window: int = 4) -> None:
        if not weights:
            raise ValueError("need at least one stream")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.weights = list(weights)
        self.window = window
        self._history: list[deque[float]] = [deque(maxlen=window) for _ in weights]
        self._probes = [0] * len(weights)
        self._next_rr = 0

    def observe(self, stream: int, value: float) -> None:
        """Record the value just pulled from ``stream``."""
        self._history[stream].append(value)
        self._probes[stream] += 1

    def rate(self, stream: int) -> float:
        """Estimated weighted growth rate of ``stream``'s threshold
        contribution; ``inf`` until the stream has been observed twice
        (unexplored streams get priority)."""
        history = self._history[stream]
        if len(history) < 2:
            return float("inf")
        span = len(history) - 1
        return self.weights[stream] * (history[-1] - history[0]) / span

    def choose(self, active: Sequence[bool]) -> int:
        """Index of the next stream to probe among those still active.

        Falls back to round-robin among equal rates so no active stream
        starves.
        """
        candidates = [j for j, a in enumerate(active) if a]
        if not candidates:
            raise ValueError("no active stream to probe")
        best = max(candidates, key=lambda j: (self.rate(j), -((j - self._next_rr) % len(active))))
        self._next_rr = (best + 1) % len(active)
        return best


class RoundRobinPolicy:
    """The paper's default probing: strict alternation among active
    streams (social first)."""

    __slots__ = ("_next",)

    def __init__(self, m: int = 2) -> None:
        self._next = 0

    def observe(self, stream: int, value: float) -> None:  # noqa: ARG002 - interface parity
        return None

    def choose(self, active: Sequence[bool]) -> int:
        m = len(active)
        for offset in range(m):
            j = (self._next + offset) % m
            if active[j]:
                self._next = (j + 1) % m
                return j
        raise ValueError("no active stream to probe")
