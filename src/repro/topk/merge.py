"""Scatter-gather combination of ranked candidate streams.

The sharded engine answers one SSRQ by running per-shard top-k searches
and combining their candidate streams.  Because every shard reports
*exact* scores (shards share the graph, the location table, and the
normalization), the combine step is the degenerate — and cheapest —
member of the threshold-algorithm family this package implements: pure
random-access aggregation into the paper's interim result ``R``
(:class:`~repro.core.result.TopKBuffer`), whose ``(score, user)``
tie-break makes the merged ranking bit-identical to a single engine's.

Duplicates across streams (e.g. a socially-settled user reported by two
shards) collapse automatically: a user's score is a deterministic
function of the query, and the buffer ignores re-offers.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.result import Neighbor, TopKBuffer


class StreamingCombine:
    """Incremental NRA-style fold of per-shard candidate streams.

    Where :func:`merge_topk` barriers on every stream being complete,
    this combine folds streams **as they arrive** and exposes the two
    primitives an overlapped scatter-merge loop needs:

    - :meth:`fold` — absorb one completed shard stream into the interim
      result ``R`` (the paper's threshold-algorithm state, here a
      :class:`~repro.core.result.TopKBuffer`);
    - :meth:`admits` — the NRA termination test specialised to exact
      scores: a pending source (shard) whose score lower bound
      *strictly* exceeds the current threshold ``f_k`` can never place
      a member in the final top-k, not even on a tie-break, so it can
      be pruned before (or while) it runs.  Because shard scores are
      exact, each source's lower bound equals its upper bound and the
      NRA bookkeeping collapses to this single comparison — which is
      precisely the sharded engine's strict-``>`` exactness argument,
      so folding streams in *completion* order (not bound order) still
      reproduces the single-engine ranking bit-for-bit: the buffer's
      final content is order-independent and pruning only ever discards
      provably non-contributing sources.

        >>> from repro.core.result import Neighbor
        >>> from repro.topk.merge import StreamingCombine
        >>> combine = StreamingCombine(k=2)
        >>> combine.admits(0.0)            # nothing merged yet: f_k = inf
        True
        >>> combine.fold([Neighbor(1, 0.2, 0.1, 0.3), Neighbor(5, 0.6, 0.5, 0.7)])
        >>> combine.admits(0.6), combine.admits(0.7)
        (True, False)
        >>> combine.fold([Neighbor(2, 0.4, 0.3, 0.5)])
        >>> [nb.user for nb in combine.result().neighbors()]
        [1, 2]
    """

    def __init__(self, k: int, initial: "TopKBuffer | None" = None) -> None:
        self._buffer = initial if initial is not None else TopKBuffer(k)
        #: streams folded so far
        self.folded = 0

    @property
    def fk(self) -> float:
        """Current k-th best score (``inf`` until the buffer fills)."""
        return self._buffer.fk

    def admits(self, bound: float) -> bool:
        """``True`` when a source with this score lower bound could
        still contribute to the final top-k (strict-``>`` test)."""
        return not bound > self._buffer.fk

    def fold(self, stream: Iterable[Neighbor]) -> None:
        """Absorb one completed candidate stream."""
        for nb in stream:
            self._buffer.offer(nb.user, nb.score, nb.social, nb.spatial)
        self.folded += 1

    def warm(self) -> "list[tuple[int, float, float, float]]":
        """The interim result as plain tuples — the warm-start payload
        shipped to later shard searches for threshold propagation."""
        return [
            (nb.user, nb.score, nb.social, nb.spatial)
            for nb in self._buffer.neighbors()
        ]

    def result(self) -> TopKBuffer:
        """The interim (or, once all streams folded, final) buffer."""
        return self._buffer


def merge_topk(k: int, streams: Iterable[Iterable[Neighbor]]) -> TopKBuffer:
    """Merge ranked candidate streams into one top-``k`` buffer.

    Every stream yields :class:`~repro.core.result.Neighbor` entries
    with exact scores; the result is the global top-``k`` over the
    union of all streams, ties broken toward smaller user ids exactly
    as every single-engine algorithm breaks them.

        >>> from repro.core.result import Neighbor
        >>> from repro.topk.merge import merge_topk
        >>> a = [Neighbor(1, 0.2, 0.1, 0.3), Neighbor(5, 0.6, 0.5, 0.7)]
        >>> b = [Neighbor(2, 0.4, 0.3, 0.5), Neighbor(1, 0.2, 0.1, 0.3)]
        >>> [nb.user for nb in merge_topk(2, [a, b]).neighbors()]
        [1, 2]
    """
    buffer = TopKBuffer(k)
    for stream in streams:
        for nb in stream:
            buffer.offer(nb.user, nb.score, nb.social, nb.spatial)
    return buffer
