"""Scatter-gather combination of ranked candidate streams.

The sharded engine answers one SSRQ by running per-shard top-k searches
and combining their candidate streams.  Because every shard reports
*exact* scores (shards share the graph, the location table, and the
normalization), the combine step is the degenerate — and cheapest —
member of the threshold-algorithm family this package implements: pure
random-access aggregation into the paper's interim result ``R``
(:class:`~repro.core.result.TopKBuffer`), whose ``(score, user)``
tie-break makes the merged ranking bit-identical to a single engine's.

Duplicates across streams (e.g. a socially-settled user reported by two
shards) collapse automatically: a user's score is a deterministic
function of the query, and the buffer ignores re-offers.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.result import Neighbor, TopKBuffer


def merge_topk(k: int, streams: Iterable[Iterable[Neighbor]]) -> TopKBuffer:
    """Merge ranked candidate streams into one top-``k`` buffer.

    Every stream yields :class:`~repro.core.result.Neighbor` entries
    with exact scores; the result is the global top-``k`` over the
    union of all streams, ties broken toward smaller user ids exactly
    as every single-engine algorithm breaks them.

        >>> from repro.core.result import Neighbor
        >>> from repro.topk.merge import merge_topk
        >>> a = [Neighbor(1, 0.2, 0.1, 0.3), Neighbor(5, 0.6, 0.5, 0.7)]
        >>> b = [Neighbor(2, 0.4, 0.3, 0.5), Neighbor(1, 0.2, 0.1, 0.3)]
        >>> [nb.user for nb in merge_topk(2, [a, b]).neighbors()]
        [1, 2]
    """
    buffer = TopKBuffer(k)
    for stream in streams:
        for nb in stream:
            buffer.offer(nb.user, nb.score, nb.social, nb.spatial)
    return buffer
