"""Threshold-algorithm family (paper Section 2.4).

Generic rank-aggregation over ``m`` sorted repositories, in the
*minimisation* convention used by SSRQ (smaller attribute values and
smaller aggregate scores are better):

- :func:`~repro.topk.ta.threshold_algorithm` — Fagin's TA (sorted +
  random access);
- :func:`~repro.topk.nra.no_random_access` — NRA (sorted access only,
  lower/upper score bounds);
- :func:`~repro.topk.ca.combined_algorithm` — CA (one random access per
  ``κ`` sorted accesses);
- :class:`~repro.topk.quick_combine.QuickCombinePolicy` — the
  probe-scheduling heuristic that TSA-QC plugs into the twofold search;
- :func:`~repro.topk.merge.merge_topk` — exact-score stream
  combination (the scatter-gather combiner of the sharded engine);
- :class:`~repro.topk.merge.StreamingCombine` — its incremental form
  (fold streams as they complete, NRA-style strict-``>`` admission),
  driving the overlapped scatter-merge of the process pool.

TSA (Section 4.2) is a TA/NRA hybrid: sorted+random access in the
spatial domain, sorted-only in the social domain.  These standalone
implementations pin down the semantics TSA relies on and are tested
against brute force.
"""

from repro.topk.ca import combined_algorithm
from repro.topk.merge import StreamingCombine, merge_topk
from repro.topk.nra import no_random_access
from repro.topk.quick_combine import QuickCombinePolicy
from repro.topk.sources import SortedSource
from repro.topk.ta import threshold_algorithm

__all__ = [
    "SortedSource",
    "threshold_algorithm",
    "no_random_access",
    "combined_algorithm",
    "QuickCombinePolicy",
    "StreamingCombine",
    "merge_topk",
]
