"""No-Random-Access algorithm (NRA), minimisation variant.

Only sorted access is available.  For every encountered tuple the
algorithm maintains a score interval:

- **lower bound** — unseen attributes replaced by the last value pulled
  from the corresponding repository (attributes are non-decreasing down
  the lists);
- **upper bound** — unseen attributes replaced by the repository's
  maximum possible value.

It terminates when the k-th smallest upper bound among seen tuples is
no greater than (a) the lower bound of every other seen tuple and (b)
the threshold ``τ`` bounding all unseen tuples.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.topk.sources import SortedSource


def no_random_access(
    sources: Sequence[SortedSource],
    combine: Callable[[Sequence[float]], float],
    k: int,
    check_every: int = 1,
) -> list[tuple[float, int]]:
    """Top-``k`` ``(score, id)`` pairs, best first, using sorted access
    only.  Reported scores are exact (a tuple can only win once fully
    seen or its interval collapses)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = len(sources)
    if m == 0:
        return []
    partial: dict[int, list[float | None]] = {}
    last = [0.0] * m
    maxes = [s.max_value for s in sources]
    accesses = 0

    def bounds(values: list[float | None]) -> tuple[float, float]:
        lower = combine([last[j] if v is None else v for j, v in enumerate(values)])
        upper = combine([maxes[j] if v is None else v for j, v in enumerate(values)])
        return lower, upper

    def try_finish() -> list[tuple[float, int]] | None:
        if len(partial) < k:
            return None
        scored = []
        for i, values in partial.items():
            lower, upper = bounds(values)
            scored.append((upper, lower, i))
        by_upper = sorted(scored, key=lambda t: (t[0], t[2]))
        kth_upper = by_upper[k - 1][0]
        # (a) every non-selected candidate's lower bound must rule it out
        for upper, lower, i in by_upper[k:]:
            if lower < kth_upper:
                return None
        # (b) unseen tuples are bounded by tau
        tau = combine(last)
        if tau < kth_upper:
            return None
        # (c) winners must be fully seen, so reported scores are exact
        # (classic NRA may report worst-case grades; we keep probing the
        # lists — still sorted access only — until the top-k resolve).
        for _, _, i in by_upper[:k]:
            if None in partial[i]:
                return None
        return [(upper, i) for upper, _, i in by_upper[:k]]

    active = True
    while active:
        active = False
        for j, source in enumerate(sources):
            item = source.next()
            if item is None:
                continue
            active = True
            i, value = item
            last[j] = value
            row = partial.get(i)
            if row is None:
                row = [None] * m
                partial[i] = row
            row[j] = value
            accesses += 1
            if accesses % check_every == 0:
                done = try_finish()
                if done is not None:
                    return done
    done = try_finish()
    if done is not None:
        return done
    # Sources exhausted: every tuple is fully known (complete columns);
    # report the best k of what was seen.
    scored = sorted(
        (bounds(values)[1], i) for i, values in partial.items()
    )
    return scored[:k]
