"""Access-path abstractions for the threshold-algorithm family.

A *repository* (paper Section 2.4) supports:

- **sorted access** — iterate ``(id, value)`` pairs in ascending value
  order ("get-next");
- **random access** — fetch the value of an arbitrary id directly.

:class:`SortedSource` provides both over an in-memory column and tracks
access counts, so the TA/NRA/CA cost model (sorted vs random accesses)
is observable in tests and benchmarks.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


class SortedSource:
    """One attribute column with sorted and random access."""

    __slots__ = ("_order", "_values", "_cursor", "sorted_accesses", "random_accesses")

    def __init__(self, values: Mapping[int, float]) -> None:
        self._values = dict(values)
        self._order = sorted(self._values, key=lambda i: (self._values[i], i))
        self._cursor = 0
        self.sorted_accesses = 0
        self.random_accesses = 0

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "SortedSource":
        return cls(dict(pairs))

    def __len__(self) -> int:
        return len(self._order)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._order)

    @property
    def last_value(self) -> float:
        """Value most recently produced by sorted access (0 before the
        first access — the smallest conceivable attribute value)."""
        if self._cursor == 0:
            return 0.0
        return self._values[self._order[self._cursor - 1]]

    @property
    def max_value(self) -> float:
        """Largest value in the column (used for NRA upper bounds)."""
        if not self._order:
            return 0.0
        return self._values[self._order[-1]]

    def next(self) -> tuple[int, float] | None:
        """Sorted access: the next ``(id, value)``, or ``None``."""
        if self._cursor >= len(self._order):
            return None
        self.sorted_accesses += 1
        i = self._order[self._cursor]
        self._cursor += 1
        return i, self._values[i]

    def get(self, i: int) -> float:
        """Random access: value of id ``i`` (``inf`` if absent)."""
        self.random_accesses += 1
        return self._values.get(i, math.inf)
