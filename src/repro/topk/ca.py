"""Combined Algorithm (CA), minimisation variant.

CA acknowledges that random access costs ``κ`` times a sorted access:
it proceeds like NRA but, after every ``κ`` sorted accesses, spends one
random access resolving the most promising incomplete tuple (the one
with the smallest lower bound), shrinking its interval to a point.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.topk.sources import SortedSource


def combined_algorithm(
    sources: Sequence[SortedSource],
    combine: Callable[[Sequence[float]], float],
    k: int,
    kappa: int = 5,
) -> list[tuple[float, int]]:
    """Top-``k`` ``(score, id)`` pairs, best first."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if kappa < 1:
        raise ValueError(f"kappa must be >= 1, got {kappa}")
    m = len(sources)
    if m == 0:
        return []
    partial: dict[int, list[float | None]] = {}
    last = [0.0] * m
    maxes = [s.max_value for s in sources]
    sorted_accesses = 0

    def bounds(values: list[float | None]) -> tuple[float, float]:
        lower = combine([last[j] if v is None else v for j, v in enumerate(values)])
        upper = combine([maxes[j] if v is None else v for j, v in enumerate(values)])
        return lower, upper

    def resolve_best_candidate() -> None:
        target = None
        target_lower = None
        for i, values in partial.items():
            if None not in values:
                continue
            lower, _ = bounds(values)
            if target_lower is None or (lower, i) < (target_lower, target):
                target, target_lower = i, lower
        if target is None:
            return
        values = partial[target]
        j = values.index(None)
        values[j] = sources[j].get(target)

    def try_finish() -> list[tuple[float, int]] | None:
        if len(partial) < k:
            return None
        scored = sorted(
            ((bounds(v)[1], bounds(v)[0], i) for i, v in partial.items()),
            key=lambda t: (t[0], t[2]),
        )
        kth_upper = scored[k - 1][0]
        for upper, lower, i in scored[k:]:
            if lower < kth_upper:
                return None
        if combine(last) < kth_upper:
            return None
        # Resolve any still-incomplete winner with random accesses so the
        # reported scores are exact (cheap: at most k·m lookups).
        for _, _, i in scored[:k]:
            values = partial[i]
            while None in values:
                j = values.index(None)
                values[j] = sources[j].get(i)
        resolved = sorted(
            ((bounds(partial[i])[1], i) for _, _, i in scored[:k]),
        )
        return resolved

    active = True
    while active:
        active = False
        for j, source in enumerate(sources):
            item = source.next()
            if item is None:
                continue
            active = True
            i, value = item
            last[j] = value
            row = partial.setdefault(i, [None] * m)
            row[j] = value
            sorted_accesses += 1
            if sorted_accesses % kappa == 0:
                resolve_best_candidate()
            done = try_finish()
            if done is not None:
                return done
    done = try_finish()
    if done is not None:
        return done
    scored = sorted((bounds(v)[1], i) for i, v in partial.items())
    return scored[:k]
