"""Fagin's Threshold Algorithm (TA), minimisation variant.

Round-robin sorted access over ``m`` repositories; every newly seen
tuple is completed via random accesses to the other repositories and
scored exactly.  The threshold ``τ`` — the combine function applied to
the last value pulled from each list — lower-bounds the score of every
unseen tuple; the algorithm stops as soon as ``τ`` is no smaller than
the current k-th best score.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

from repro.topk.sources import SortedSource


def threshold_algorithm(
    sources: Sequence[SortedSource],
    combine: Callable[[Sequence[float]], float],
    k: int,
) -> list[tuple[float, int]]:
    """Top-``k`` ``(score, id)`` pairs, best (smallest) first.

    ``combine`` must be monotone increasing in every attribute.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = len(sources)
    if m == 0:
        return []
    seen: set[int] = set()
    # max-heap of the k best scores seen so far (negated keys)
    best: list[tuple[float, int]] = []
    last = [0.0] * m

    active = True
    while active:
        active = False
        for j, source in enumerate(sources):
            item = source.next()
            if item is None:
                continue
            active = True
            i, value = item
            last[j] = value
            if i not in seen:
                seen.add(i)
                values = [
                    value if jj == j else sources[jj].get(i) for jj in range(m)
                ]
                score = combine(values)
                entry = (-score, -i)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
            # Termination check after every sorted access.
            if len(best) == k:
                tau = combine(last)
                if tau >= -best[0][0]:
                    return sorted((-s, -i) for s, i in best)
    return sorted((-s, -i) for s, i in best)
