"""Output formatting for the operator CLI.

Every read command renders through one function so the three formats
stay in lock-step: ``table`` (aligned plain text, no third-party
table dependency), ``csv`` (machine-ingestable, header row included)
and ``json`` (the wire payload, pretty-printed).  The same rows feed
all three — a column added to a command shows up everywhere at once.

    >>> from repro.cli.format import format_output
    >>> rows = [{"user": 9, "score": 0.25}, {"user": 11, "score": 0.5}]
    >>> print(format_output(rows, ["user", "score"], "table"))
    user  score
    ----  -----
    9     0.25
    11    0.5
    >>> print(format_output(rows, ["user", "score"], "csv"))
    user,score
    9,0.25
    11,0.5
"""

from __future__ import annotations

import csv
import io
import json

__all__ = ["FORMATS", "format_output", "flatten_stats"]

FORMATS = ("table", "csv", "json")


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _format_table(rows: "list[dict]", columns: "list[str]") -> str:
    headers = [str(col) for col in columns]
    body = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(columns))).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(columns))).rstrip(),
    ]
    for line in body:
        lines.append(
            "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))).rstrip()
        )
    return "\n".join(lines)


def _format_csv(rows: "list[dict]", columns: "list[str]") -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_cell(row.get(col)) for col in columns])
    return buffer.getvalue().rstrip("\n")


def format_output(rows: "list[dict]", columns: "list[str]", fmt: str) -> str:
    """Render ``rows`` (plain dicts) in one of :data:`FORMATS`."""
    if fmt == "table":
        return _format_table(rows, columns)
    if fmt == "csv":
        return _format_csv(rows, columns)
    if fmt == "json":
        return json.dumps(
            [{col: row.get(col) for col in columns} for row in rows], indent=2
        )
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def flatten_stats(payload: dict) -> "list[dict]":
    """``/stats``'s nested sections as flat ``section/key/value`` rows
    (dict-valued leaves like ``per_method`` become dotted keys)."""
    rows: list[dict] = []
    for section, body in payload.items():
        if not isinstance(body, dict):
            rows.append({"section": section, "key": "", "value": body})
            continue
        for key, value in body.items():
            if isinstance(value, dict):
                for label, entry in sorted(value.items()):
                    rows.append(
                        {"section": section, "key": f"{key}.{label}", "value": entry}
                    )
            else:
                rows.append({"section": section, "key": key, "value": value})
    return rows
