"""The ``repro`` operator CLI.

The actual commands live in :mod:`repro.cli.commands`, which needs
:mod:`click` — an *optional* dependency (``pip install
repro-ssrq[cli]``).  This package's :func:`main` entry point gates
that import so a missing click fails with instructions instead of a
traceback, and the library itself never pays the import.
"""

from __future__ import annotations

import sys

__all__ = ["main"]


def main() -> None:
    """Console-script entry point (``repro = repro.cli:main``)."""
    try:
        from repro.cli.commands import cli
    except ModuleNotFoundError as err:
        if err.name == "click":
            sys.stderr.write(
                "the repro CLI needs the optional 'click' dependency;\n"
                "install it with: pip install click  (or: pip install 'repro-ssrq[cli]')\n"
            )
            raise SystemExit(1) from None
        raise
    cli()
