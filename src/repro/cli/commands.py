"""``repro`` — the operator CLI.

One command per operational verb: ``load`` materialises a synthetic
dataset into a saved engine file, ``serve`` puts the HTTP API in front
of it, ``query``/``stats``/``tail`` are the read tools (each with
``--format {table,csv,json}``), and ``snapshot``/``restore`` drive the
durable store — against a running server or a local engine file.

The module imports :mod:`click` at import time; the package's
``main()`` entry point (:mod:`repro.cli`) gates that import behind a
helpful error, since click is an optional dependency
(``pip install repro-ssrq[cli]``).
"""

from __future__ import annotations

import sys

import click

import repro
from repro import (
    GeoSocialEngine,
    QueryService,
    correlated_dataset,
    foursquare_like,
    gowalla_like,
    twitter_like,
)
from repro.cli.format import FORMATS, flatten_stats, format_output
from repro.server import ServerApiError, ServerClient, ServerThread

DATASETS = {
    "gowalla": gowalla_like,
    "foursquare": foursquare_like,
    "twitter": twitter_like,
    "correlated": correlated_dataset,
}

QUERY_COLUMNS = ["rank", "user", "score", "social", "spatial"]

format_option = click.option(
    "--format",
    "fmt",
    type=click.Choice(FORMATS),
    default="table",
    show_default=True,
    help="Output format.",
)


def _parse_address(address: str) -> "tuple[str, int]":
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise click.BadParameter(
            f"expected HOST:PORT, got {address!r}", param_hint="--server"
        )
    return host or "127.0.0.1", int(port)


def _client(address: str) -> ServerClient:
    host, port = _parse_address(address)
    return ServerClient(host, port)


def _fail(err: Exception) -> "click.ClickException":
    return click.ClickException(str(err))


def _parse_k(raw) -> int:
    """``k`` with the engine's error-wording contract.

    The option is taken as a raw string so a malformed value fails with
    the same ``invalid_argument`` wording the engine and the HTTP layer
    use — not click's own type error (which would exit 2 with different
    text and break CLI/server error parity)."""
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise click.ClickException(f"k must be an integer, got {raw!r}") from None


def _parse_alpha(raw) -> float:
    """``alpha`` with the engine's wording (``float("nan")`` parses —
    the engine's range check rejects it with its own pinned message)."""
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise click.ClickException(f"alpha must be a number, got {raw!r}") from None


def _parse_budget(raw) -> "float | None":
    if raw is None:
        return None
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise click.ClickException(f"budget must be a number, got {raw!r}") from None


def _result_rows(result: dict) -> "list[dict]":
    return [
        dict(rank=i, **neighbor)
        for i, neighbor in enumerate(result["neighbors"])
    ]


@click.group()
@click.version_option(version=repro.__version__, prog_name="repro")
def cli() -> None:
    """Operate an SSRQ engine: build, serve, query, observe."""


@cli.command()
@click.argument("out", type=click.Path(writable=True))
@click.option(
    "--dataset",
    type=click.Choice(sorted(DATASETS)),
    default="gowalla",
    show_default=True,
    help="Synthetic dataset family to generate.",
)
@click.option("--n", type=int, default=2000, show_default=True, help="User count.")
@click.option("--seed", type=int, default=7, show_default=True, help="RNG seed.")
def load(out: str, dataset: str, n: int, seed: int) -> None:
    """Build a synthetic dataset and save the engine to OUT."""
    engine = GeoSocialEngine.from_dataset(DATASETS[dataset](n=n, seed=seed))
    path = engine.save(out)
    located = sum(1 for user in range(engine.graph.n) if engine.locations.get(user))
    click.echo(
        f"saved {dataset} engine: {engine.graph.n} users "
        f"({located} located, backend={engine.kernels.name}) -> {path}"
    )


@cli.command()
@click.argument("user", type=int)
@click.option("--engine", "engine_path", type=click.Path(exists=True),
              help="Saved engine (directory) to query locally.")
@click.option("--server", "server_address", metavar="HOST:PORT",
              help="Running server to query instead.")
@click.option("-k", type=str, default="10", show_default=True, help="Result size.")
@click.option("--alpha", type=str, default="0.3", show_default=True,
              help="Social/spatial preference in [0, 1].")
@click.option("--method", default="ais", show_default=True, help="Search method.")
@click.option("-t", type=int, default=None, help="Cached-list length (ais-cache).")
@click.option("--budget", type=str, default=None,
              help="Accuracy budget in [0, 1] (unset/0: exact; positive values "
                   "let method=auto answer from the sketch fast path).")
@format_option
def query(user, engine_path, server_address, k, alpha, method, t, budget, fmt) -> None:
    """Run one SSRQ for USER and print the ranked neighbours."""
    if (engine_path is None) == (server_address is None):
        raise click.UsageError("pass exactly one of --engine or --server")
    k = _parse_k(k)
    alpha = _parse_alpha(alpha)
    budget = _parse_budget(budget)
    try:
        if server_address is not None:
            with _client(server_address) as client:
                payload = client.query(
                    user, k=k, alpha=alpha, method=method, t=t, budget=budget
                )
            result = payload["result"]
        else:
            engine = GeoSocialEngine.load(engine_path)
            result_obj = engine.query(
                user, k=k, alpha=alpha, method=method, t=t, budget=budget
            )
            from repro.service.model import result_payload

            result = result_payload(result_obj)
    except ServerApiError as err:
        # the wire body carries the engine's message verbatim; show that
        # (not the "[status code]" repr) so CLI output matches a local run
        raise click.ClickException(err.message) from err
    except (ValueError, ConnectionError) as err:
        raise _fail(err) from err
    click.echo(format_output(_result_rows(result), QUERY_COLUMNS, fmt))


@cli.command()
@click.option("--engine", "engine_path", type=click.Path(exists=True),
              help="Saved engine (directory) to serve.")
@click.option("--dataset", type=click.Choice(sorted(DATASETS)),
              help="Serve a freshly generated dataset instead of a file.")
@click.option("--n", type=int, default=2000, show_default=True,
              help="User count (with --dataset).")
@click.option("--seed", type=int, default=7, show_default=True,
              help="RNG seed (with --dataset).")
@click.option("--host", default="127.0.0.1", show_default=True)
@click.option("--port", type=int, default=8787, show_default=True)
@click.option("--workers", type=int, default=4, show_default=True)
@click.option("--queue-depth", type=int, default=64, show_default=True,
              help="Admission-queue depth (overflow sheds with 429).")
@click.option("--max-batch", type=int, default=32, show_default=True,
              help="Coalescing ceiling for concurrent /query requests.")
@click.option("--deadline-ms", type=float, default=30_000.0, show_default=True,
              help="Default per-request deadline.")
@click.option("--no-cache", is_flag=True, help="Disable the service result cache.")
@click.option("--social-cache-bytes", type=int, default=None,
              help="Byte budget of the social column cache "
                   "(0 disables; default: the engine's setting).")
@click.option("--drain-snapshot-root", type=click.Path(file_okay=False), default=None,
              help="Take a final snapshot here on graceful shutdown.")
def serve(engine_path, dataset, n, seed, host, port, workers, queue_depth,
          max_batch, deadline_ms, no_cache, social_cache_bytes,
          drain_snapshot_root) -> None:
    """Serve the HTTP API over an engine until interrupted."""
    if (engine_path is None) == (dataset is None):
        raise click.UsageError("pass exactly one of --engine or --dataset")
    if engine_path is not None:
        engine = GeoSocialEngine.load(engine_path)
    else:
        engine = GeoSocialEngine.from_dataset(DATASETS[dataset](n=n, seed=seed))
    with QueryService(
        engine,
        cache_size=0 if no_cache else 1024,
        social_cache_bytes=social_cache_bytes,
    ) as service:
        handle = ServerThread(
            service,
            host=host,
            port=port,
            workers=workers,
            queue_depth=queue_depth,
            max_batch=max_batch,
            default_deadline_ms=deadline_ms,
            drain_snapshot_root=drain_snapshot_root,
        )
        try:
            handle.start()
        except OSError as err:
            raise _fail(err) from err
        click.echo(
            f"serving {engine.graph.n} users on http://{handle.host}:{handle.port} "
            f"(workers={workers}, queue_depth={queue_depth}); Ctrl-C to drain and stop"
        )
        try:
            while True:
                import time

                time.sleep(3600)
        except KeyboardInterrupt:
            click.echo("draining...", err=True)
        finally:
            handle.stop()
            click.echo("stopped", err=True)


@cli.command()
@click.argument("user", type=int)
@click.option("--server", "server_address", metavar="HOST:PORT", required=True)
@click.option("-k", type=int, default=10, show_default=True)
@click.option("--alpha", type=float, default=0.3, show_default=True)
@click.option("--method", default="ais", show_default=True)
@click.option("--count", type=int, default=None,
              help="Exit after this many events (default: stream forever).")
@format_option
def tail(user, server_address, k, alpha, method, count, fmt) -> None:
    """Follow a standing query's delta stream for USER."""
    import csv as _csv
    import io as _io
    import json as _json

    columns = ["event", "entered", "left", "moved", "size"]
    # streaming output can't right-size columns after the fact, so the
    # table format uses fixed widths
    widths = {"event": 9, "entered": 24, "left": 16, "moved": 24, "size": 4}

    def emit(row: dict) -> None:
        if fmt == "csv":
            buffer = _io.StringIO()
            _csv.writer(buffer, lineterminator="\n").writerow(
                [row[col] for col in columns]
            )
            click.echo(buffer.getvalue().rstrip("\n"))
        else:
            click.echo(
                "  ".join(str(row[col]).ljust(widths[col]) for col in columns).rstrip()
            )

    if fmt != "json":
        emit({col: col for col in columns})
    seen = 0
    client = _client(server_address)
    try:
        for event, payload in client.tail(user, k=k, alpha=alpha, method=method):
            if fmt == "json":
                click.echo(_json.dumps({"event": event, "payload": payload}))
            else:
                if event == "delta":
                    row = {
                        "event": event,
                        "entered": ",".join(str(nb["user"]) for nb in payload["entered"]),
                        "left": ",".join(str(u) for u in payload["left"]),
                        "moved": ",".join(str(nb["user"]) for nb in payload["moved"]),
                        "size": payload["size"],
                    }
                else:
                    result = (payload or {}).get("result") or {}
                    row = {
                        "event": event,
                        "entered": ",".join(str(u) for u in result.get("users", [])),
                        "left": "",
                        "moved": "",
                        "size": len(result.get("users", [])),
                    }
                emit(row)
            seen += 1
            if event == "end" or (count is not None and seen >= count):
                break
    except (ServerApiError, ConnectionError) as err:
        raise _fail(err) from err
    except KeyboardInterrupt:
        pass


@cli.command()
@click.option("--server", "server_address", metavar="HOST:PORT", required=True)
@format_option
def stats(server_address, fmt) -> None:
    """Print every layer's counters from a running server."""
    try:
        with _client(server_address) as client:
            payload = client.stats()
    except (ServerApiError, ConnectionError) as err:
        raise _fail(err) from err
    if fmt == "json":
        import json as _json

        click.echo(_json.dumps(payload, indent=2, sort_keys=True))
        return
    click.echo(format_output(flatten_stats(payload), ["section", "key", "value"], fmt))


@cli.command()
@click.argument("root", type=click.Path(file_okay=False))
@click.option("--server", "server_address", metavar="HOST:PORT",
              help="Snapshot a running server's live engine.")
@click.option("--engine", "engine_path", type=click.Path(exists=True),
              help="Snapshot a saved engine (directory) instead.")
@click.option("--no-fold", is_flag=True,
              help="Keep the delta journal instead of folding pending updates.")
def snapshot(root, server_address, engine_path, no_fold) -> None:
    """Write a crash-consistent snapshot under ROOT."""
    if (engine_path is None) == (server_address is None):
        raise click.UsageError("pass exactly one of --engine or --server")
    try:
        if server_address is not None:
            with _client(server_address) as client:
                payload = client.snapshot(root, fold=not no_fold)
            click.echo(f"snapshot {payload['name']} -> {payload['path']}")
        else:
            engine = GeoSocialEngine.load(engine_path)
            with QueryService(engine, cache_size=0) as service:
                path = service.snapshots(root).snapshot(fold=not no_fold)
            click.echo(f"snapshot {path.name} -> {path}")
    except (ServerApiError, ValueError, ConnectionError) as err:
        raise _fail(err) from err


@cli.command()
@click.argument("root", type=click.Path(exists=True, file_okay=False))
@click.option("--server", "server_address", metavar="HOST:PORT", required=True,
              help="Server whose live engine is replaced by the snapshot.")
def restore(root, server_address) -> None:
    """Swap ROOT's last committed snapshot into a running server."""
    try:
        with _client(server_address) as client:
            payload = client.restore(root)
    except (ServerApiError, ConnectionError) as err:
        raise _fail(err) from err
    click.echo(
        f"restored {payload['kind']} with {payload['users']} users from {payload['root']}"
    )


if __name__ == "__main__":  # pragma: no cover
    cli()
