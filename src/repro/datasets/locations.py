"""Location assignment for synthetic geo-social datasets.

Check-in datasets are spatially *clustered* (cities, venues), so the
default generator draws locations from a Gaussian mixture over the unit
square.  :func:`apply_coverage` blanks a fraction of users to mimic the
paper's privacy-constrained datasets (54.4% of Gowalla users and 60.3%
of Foursquare users have locations; the rest are "infinitely far").

For Figure 14(a), :func:`correlated_locations` implements the paper's
construction: the spatial distance of user ``u`` from an anchor vertex
is ``d̄ = ρ·p(anchor, u) + ε`` with ``ρ = ±1`` and noise
``ε ∈ [−0.15, 0.15]``, normalised to [0, 1], and the user is placed at
a uniformly random angle on the circle of radius ``d̄`` around the
anchor.  ``ρ = 1`` gives positively correlated social/spatial
proximity, ``ρ = −1`` negatively correlated;
:func:`permuted_locations` produces the *independent* control by
shuffling an existing assignment.
"""

from __future__ import annotations

import math

from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from repro.spatial.point import LocationTable
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability

INF = math.inf


def uniform_locations(n: int, seed: int = 0) -> LocationTable:
    """Uniform locations over the unit square."""
    rng = make_rng(seed)
    xs = [rng.random() for _ in range(n)]
    ys = [rng.random() for _ in range(n)]
    return LocationTable.from_columns(xs, ys)


def clustered_locations(
    n: int,
    clusters: int = 12,
    spread: float = 0.05,
    seed: int = 0,
) -> LocationTable:
    """Gaussian-mixture ("cities") locations over the unit square.

    Cluster centres are uniform; per-user coordinates are normal around
    a randomly chosen centre with standard deviation ``spread``, clamped
    to [0, 1].
    """
    if clusters < 1:
        raise ValueError(f"need at least one cluster, got {clusters}")
    if spread <= 0:
        raise ValueError(f"spread must be positive, got {spread}")
    rng = make_rng(seed)
    centers = [(rng.random(), rng.random()) for _ in range(clusters)]
    # Zipf-ish cluster popularity: big cities attract more users.
    popularity = [1.0 / (i + 1) for i in range(clusters)]
    total = sum(popularity)
    cumulative = []
    acc = 0.0
    for p in popularity:
        acc += p / total
        cumulative.append(acc)

    def pick_center() -> tuple[float, float]:
        r = rng.random()
        for i, threshold in enumerate(cumulative):
            if r <= threshold:
                return centers[i]
        return centers[-1]

    xs = []
    ys = []
    for _ in range(n):
        cx, cy = pick_center()
        xs.append(min(1.0, max(0.0, rng.gauss(cx, spread))))
        ys.append(min(1.0, max(0.0, rng.gauss(cy, spread))))
    return LocationTable.from_columns(xs, ys)


def apply_coverage(locations: LocationTable, coverage: float, seed: int = 0) -> LocationTable:
    """Return a copy where only a ``coverage`` fraction of users keep
    their location (the rest become unknown/infinitely far)."""
    check_probability("coverage", coverage)
    n = len(locations)
    rng = make_rng(seed)
    keep = set(rng.sample(range(n), int(round(coverage * n))))
    table = locations.copy()
    for user in range(n):
        if user not in keep:
            table.clear(user)
    return table


def permuted_locations(locations: LocationTable, seed: int = 0) -> LocationTable:
    """Shuffle which user holds which location (Figure 14a's
    *independent* dataset): the spatial distribution is identical but
    any social/spatial correlation is destroyed."""
    n = len(locations)
    rng = make_rng(seed)
    known = [(locations.xs[u], locations.ys[u]) for u in locations.located_users()]
    rng.shuffle(known)
    holders = list(locations.located_users())
    table = LocationTable.empty(n)
    for user, (x, y) in zip(holders, known):
        table.set(user, x, y)
    return table


def correlated_locations(
    graph: SocialGraph,
    anchor: int,
    rho: float = 1.0,
    noise: float = 0.15,
    seed: int = 0,
) -> LocationTable:
    """Figure 14(a) construction: spatial distance from the ``anchor``
    correlates (``rho = 1``) or anti-correlates (``rho = -1``) with
    social distance from it.

    Vertices unreachable from the anchor receive no location (their
    social distance is undefined).  The anchor sits at the centre
    (0.5, 0.5); radii are normalised to [0, 0.5] so the whole circle
    family stays within the unit square.
    """
    if rho == 0:
        raise ValueError("rho must be non-zero; use permuted_locations for independence")
    rng = make_rng(seed)
    social = dijkstra_distances(graph, anchor)
    finite = {v: p for v, p in social.items() if p != INF}
    if not finite:
        raise ValueError(f"anchor {anchor} reaches no vertex")
    p_max = max(finite.values()) or 1.0

    table = LocationTable.empty(graph.n)
    raw: dict[int, float] = {}
    for v, p in finite.items():
        raw[v] = rho * (p / p_max) + rng.uniform(-noise, noise)
    lo = min(raw.values())
    hi = max(raw.values())
    span = (hi - lo) or 1.0
    cx = cy = 0.5
    for v, value in raw.items():
        radius = 0.5 * (value - lo) / span
        angle = rng.uniform(0.0, 2.0 * math.pi)
        table.set(v, cx + radius * math.cos(angle), cy + radius * math.sin(angle))
    # Anchor at the centre regardless of noise.
    table.set(anchor, cx, cy)
    return table
