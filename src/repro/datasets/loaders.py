"""Text-format loaders for real geo-social data.

Two formats cover the paper's sources:

- **SNAP edge lists** (``u<TAB>v`` per line, ``#`` comments) — the
  format of the public Gowalla friendship graph;
- **check-in files** (``user<TAB>timestamp<TAB>lat<TAB>lon<TAB>venue``)
  — the paper assigns each user *the location with the highest
  frequency of visits* among their check-ins, which
  :func:`load_checkins` reproduces.

Writers exist so tests and examples can round-trip small files.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.spatial.point import LocationTable


def load_edge_list(path: str | Path) -> tuple[int, list[tuple[int, int]]]:
    """Read a SNAP-style undirected edge list.

    Returns ``(n, edges)`` where ``n`` is one more than the largest
    vertex id seen and edges are deduplicated with ``u < v``.
    """
    edges: set[tuple[int, int]] = set()
    max_id = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            if u > v:
                u, v = v, u
            edges.add((u, v))
            if v > max_id:
                max_id = v
    return max_id + 1, sorted(edges)


def save_edge_list(path: str | Path, edges: Iterable[tuple[int, int]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# u\tv\n")
        for u, v in edges:
            handle.write(f"{u}\t{v}\n")


def load_checkins(path: str | Path, n: int) -> LocationTable:
    """Read a Gowalla-format check-in file and assign each user their
    most frequently visited location (ties: the lexicographically
    smallest coordinate pair, for determinism)."""
    visits: dict[int, Counter] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 4:
                raise ValueError(f"malformed check-in line: {line!r}")
            user = int(parts[0])
            lat, lon = float(parts[2]), float(parts[3])
            if user >= n or user < 0:
                continue
            visits.setdefault(user, Counter())[(lat, lon)] += 1
    table = LocationTable.empty(n)
    for user, counter in visits.items():
        (lat, lon), _ = min(
            counter.items(), key=lambda item: (-item[1], item[0])
        )
        # Store as (x, y) = (lon, lat): x east, y north.
        table.set(user, lon, lat)
    return table


def save_checkins(
    path: str | Path, checkins: Iterable[tuple[int, str, float, float, int]]
) -> None:
    """Write ``(user, timestamp, lat, lon, venue)`` rows."""
    with open(path, "w", encoding="utf-8") as handle:
        for user, ts, lat, lon, venue in checkins:
            handle.write(f"{user}\t{ts}\t{lat}\t{lon}\t{venue}\n")
