"""Random social-graph generators (unweighted edge lists).

Real social networks are heavy-tailed; Barabási–Albert preferential
attachment is the standard generator matching that property and is the
default for the calibrated dataset stand-ins.  Watts–Strogatz and
Erdős–Rényi are provided for controlled experiments on degree
distribution effects (e.g. reproducing Figure 13's observation that
higher average degree shrinks hop radii).

All generators return deduplicated undirected edge tuples ``(u, v)``
with ``u < v`` and produce connected-ish graphs of the expected average
degree; determinism follows from the explicit seed.
"""

from __future__ import annotations

from repro.utils.rng import make_rng


def barabasi_albert_edges(n: int, m_attach: int, seed: int = 0) -> list[tuple[int, int]]:
    """Preferential attachment: each new vertex attaches to ``m_attach``
    existing vertices chosen proportionally to degree (average degree
    approaches ``2·m_attach``).

    Uses the repeated-endpoints trick: sampling uniformly from the list
    of all edge endpoints *is* degree-proportional sampling.
    """
    if m_attach < 1:
        raise ValueError(f"m_attach must be >= 1, got {m_attach}")
    if n <= m_attach:
        raise ValueError(f"need n > m_attach, got n={n}, m_attach={m_attach}")
    rng = make_rng(seed)
    edges: set[tuple[int, int]] = set()
    # Seed clique-ish core: connect the first m_attach+1 vertices in a ring.
    core = m_attach + 1
    endpoints: list[int] = []
    for v in range(core):
        u = (v + 1) % core
        a, b = (v, u) if v < u else (u, v)
        if (a, b) not in edges:
            edges.add((a, b))
            endpoints.append(a)
            endpoints.append(b)
    for v in range(core, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            # Mix uniform picks in occasionally so early hubs do not
            # absorb everything (standard BA still dominates).
            if endpoints and rng.random() < 0.9:
                candidate = rng.choice(endpoints)
            else:
                candidate = rng.randrange(v)
            if candidate != v:
                targets.add(candidate)
        for u in targets:
            a, b = (u, v) if u < v else (v, u)
            edges.add((a, b))
            endpoints.append(a)
            endpoints.append(b)
    return sorted(edges)


def watts_strogatz_edges(n: int, k: int, beta: float, seed: int = 0) -> list[tuple[int, int]]:
    """Small-world ring lattice with rewiring probability ``beta``.

    ``k`` (even) is the lattice degree; average degree stays ``k``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"k must be a positive even integer, got {k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    rng = make_rng(seed)
    edges: set[tuple[int, int]] = set()
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            a, b = (v, u) if v < u else (u, v)
            edges.add((a, b))
    rewired: set[tuple[int, int]] = set()
    for a, b in sorted(edges):
        if rng.random() < beta:
            for _ in range(8):  # bounded retry against duplicates
                c = rng.randrange(n)
                if c == a:
                    continue
                x, y = (a, c) if a < c else (c, a)
                if (x, y) not in edges and (x, y) not in rewired:
                    rewired.add((x, y))
                    break
            else:
                rewired.add((a, b))
        else:
            rewired.add((a, b))
    return sorted(rewired)


def erdos_renyi_edges(n: int, avg_degree: float, seed: int = 0) -> list[tuple[int, int]]:
    """G(n, m) with ``m = n·avg_degree/2`` uniformly random edges."""
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    target = int(n * avg_degree / 2)
    max_edges = n * (n - 1) // 2
    if target > max_edges:
        raise ValueError(f"avg_degree {avg_degree} infeasible for n={n}")
    rng = make_rng(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < target:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        if a > b:
            a, b = b, a
        edges.add((a, b))
    return sorted(edges)
