"""Calibrated synthetic stand-ins for the paper's datasets.

Table 2 of the paper:

=========== ========= ============ ============ =====
Name        |V|       |E|          # locations  Deg.
=========== ========= ============ ============ =====
Gowalla     196,590   1,900,654    107,092      9.7
Foursquare  1,880,405 17,838,254   1,133,936    9.5
Twitter-SG  124,000   —            124,000      57.7
=========== ========= ============ ============ =====

Pure-Python shortest-path work is ~two orders of magnitude slower than
the authors' C++, so the default stand-ins scale node counts down
(Gowalla-like 12K, Foursquare-like 30K, Twitter-like 8K) while matching
the properties the experiments actually exercise: heavy-tailed degree
distribution, average degree, location coverage ratio, degree-product
edge weights, and clustered spatial placement.  Every builder takes
``n`` so benchmarks can scale up or down uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.forest_fire import forest_fire_sample
from repro.datasets.generators import barabasi_albert_edges
from repro.datasets.locations import (
    apply_coverage,
    clustered_locations,
    correlated_locations,
    permuted_locations,
)
from repro.datasets.weights import degree_product_weights
from repro.graph.socialgraph import SocialGraph
from repro.spatial.point import LocationTable


@dataclass
class GeoSocialDataset:
    """A social graph plus a (partial) user location table.

        >>> from repro import gowalla_like
        >>> dataset = gowalla_like(n=300, seed=7)
        >>> dataset.name, dataset.graph.n
        ('gowalla-like', 300)
        >>> sorted(dataset.stats()) == ['E', 'V', 'avg_degree', 'coverage', 'locations', 'name']
        True
    """

    name: str
    graph: SocialGraph
    locations: LocationTable

    def stats(self) -> dict:
        """Table 2-style statistics row."""
        return {
            "name": self.name,
            "V": self.graph.n,
            "E": self.graph.num_edges,
            "locations": self.locations.n_located,
            "avg_degree": round(self.graph.average_degree, 2),
            "coverage": round(self.locations.coverage, 3),
        }


def build_dataset(
    name: str,
    n: int,
    avg_degree: float,
    coverage: float = 1.0,
    clusters: int = 12,
    spread: float = 0.05,
    seed: int = 0,
) -> GeoSocialDataset:
    """Generic builder: BA graph at the requested average degree,
    degree-product weights, clustered locations masked to ``coverage``.

        >>> from repro import build_dataset
        >>> ds = build_dataset("demo", n=200, avg_degree=6.0, coverage=0.8, seed=1)
        >>> ds.graph.n, ds.locations.n_located
        (200, 160)
    """
    m_attach = max(1, round(avg_degree / 2))
    raw_edges = barabasi_albert_edges(n, m_attach, seed=seed)
    weighted = degree_product_weights(n, raw_edges)
    graph = SocialGraph.from_edges(n, weighted)
    locations = clustered_locations(n, clusters=clusters, spread=spread, seed=seed + 1)
    if coverage < 1.0:
        locations = apply_coverage(locations, coverage, seed=seed + 2)
    return GeoSocialDataset(name, graph, locations)


def gowalla_like(n: int = 12_000, seed: int = 7) -> GeoSocialDataset:
    """Gowalla stand-in: avg degree 9.7, 54.4% location coverage.

        >>> from repro import gowalla_like
        >>> round(gowalla_like(n=300, seed=7).locations.coverage, 3)
        0.543
    """
    return build_dataset("gowalla-like", n, avg_degree=9.7, coverage=0.544, seed=seed)


def foursquare_like(n: int = 30_000, seed: int = 11) -> GeoSocialDataset:
    """Foursquare stand-in: avg degree 9.5, 60.3% location coverage.

        >>> from repro import foursquare_like
        >>> foursquare_like(n=250, seed=11).name
        'foursquare-like'
    """
    return build_dataset("foursquare-like", n, avg_degree=9.5, coverage=0.603, seed=seed)


def twitter_like(n: int = 8_000, seed: int = 13) -> GeoSocialDataset:
    """Twitter-SG stand-in: avg degree 57.7, full location coverage
    (every user geo-tagged a tweet), tight urban clustering.

        >>> from repro import twitter_like
        >>> twitter_like(n=200, seed=13).locations.coverage
        1.0
    """
    return build_dataset(
        "twitter-like", n, avg_degree=57.7, coverage=1.0, clusters=20, spread=0.03, seed=seed
    )


def correlated_dataset(
    correlation: str,
    n: int = 20_000,
    seed: int = 17,
) -> tuple[GeoSocialDataset, int]:
    """Figure 14(a) datasets: Foursquare-like social distances with
    ``positive`` / ``independent`` / ``negative`` social-spatial
    correlation.  Returns the dataset and the anchor vertex queries
    should be issued from.

        >>> from repro import correlated_dataset
        >>> dataset, anchor = correlated_dataset("positive", n=200)
        >>> dataset.name, 0 <= anchor < dataset.graph.n
        ('correlated-positive', True)
    """
    base = build_dataset("correlated-base", n, avg_degree=9.5, coverage=1.0, seed=seed)
    anchor = max(range(base.graph.n), key=lambda v: (base.graph.degree(v), -v))
    if correlation == "positive":
        locations = correlated_locations(base.graph, anchor, rho=1.0, seed=seed + 3)
    elif correlation == "negative":
        locations = correlated_locations(base.graph, anchor, rho=-1.0, seed=seed + 3)
    elif correlation == "independent":
        locations = permuted_locations(
            correlated_locations(base.graph, anchor, rho=1.0, seed=seed + 3),
            seed=seed + 4,
        )
    else:
        raise ValueError(
            f"correlation must be positive/independent/negative, got {correlation!r}"
        )
    return GeoSocialDataset(f"correlated-{correlation}", base.graph, locations), anchor


def forest_fire_series(
    base: GeoSocialDataset,
    sizes: list[int],
    p_forward: float = 0.7,
    seed: int = 23,
) -> list[GeoSocialDataset]:
    """Figure 14(b): structure-preserving samples of ``base`` at the
    requested vertex counts (locations carried over per user).

        >>> from repro import build_dataset, forest_fire_series
        >>> base = build_dataset("demo", n=200, avg_degree=6.0, seed=1)
        >>> [d.graph.n for d in forest_fire_series(base, [50, 100], seed=3)]
        [50, 100]
    """
    series = []
    for size in sizes:
        if size > base.graph.n:
            raise ValueError(f"sample size {size} exceeds base |V|={base.graph.n}")
        if size == base.graph.n:
            series.append(GeoSocialDataset(f"{base.name}-{size}", base.graph, base.locations))
            continue
        subgraph, mapping = forest_fire_sample(base.graph, size, p_forward, seed)
        locations = LocationTable.empty(size)
        for old, new in mapping.items():
            point = base.locations.get(old)
            if point is not None:
                locations.set(new, point[0], point[1])
        series.append(GeoSocialDataset(f"{base.name}-{size}", subgraph, locations))
    return series
