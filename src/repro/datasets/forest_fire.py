"""Forest-Fire graph sampling (Leskovec & Faloutsos; paper ref [45]).

Figure 14(b) extracts structure-preserving subnetworks of different
sizes from Foursquare with Forest-Fire sampling.  The sampler "burns"
through the graph: from a random ambassador it recursively spreads to a
geometrically-distributed number of unburned neighbours, restarting from
fresh ambassadors until the target vertex count is reached.  The burned
vertex set induces the sample.
"""

from __future__ import annotations

from collections import deque

from repro.graph.socialgraph import SocialGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_probability


def forest_fire_sample(
    graph: SocialGraph,
    target_n: int,
    p_forward: float = 0.7,
    seed: int = 0,
) -> tuple[SocialGraph, dict[int, int]]:
    """Sample ``target_n`` vertices by forest fire; returns the induced
    subgraph (relabelled ``0..target_n-1``) and the old->new id map.

    ``p_forward`` is the forward-burning probability: at each burned
    vertex, ``Geometric(1 - p_forward) - 1`` unburned neighbours catch
    fire (mean ``p_forward / (1 - p_forward)``).
    """
    check_probability("p_forward", p_forward)
    if p_forward >= 1.0:
        raise ValueError("p_forward must be < 1 (burning must stop)")
    if not 1 <= target_n <= graph.n:
        raise ValueError(f"target_n must be in [1, {graph.n}], got {target_n}")
    rng = make_rng(seed)
    burned: set[int] = set()
    burned_order: list[int] = []
    indptr, nbrs = graph.indptr, graph.nbrs

    def burn(v: int) -> None:
        burned.add(v)
        burned_order.append(v)
        queue = deque([v])
        while queue and len(burned) < target_n:
            x = queue.popleft()
            # Geometric number of spreads with mean p/(1-p).
            spreads = 0
            while rng.random() < p_forward:
                spreads += 1
            if spreads == 0:
                continue
            unburned = [
                nbrs[i] for i in range(indptr[x], indptr[x + 1]) if nbrs[i] not in burned
            ]
            if not unburned:
                continue
            rng.shuffle(unburned)
            for y in unburned[:spreads]:
                if len(burned) >= target_n:
                    break
                if y not in burned:
                    burned.add(y)
                    burned_order.append(y)
                    queue.append(y)

    while len(burned) < target_n:
        candidates = [v for v in range(graph.n) if v not in burned]
        ambassador = rng.choice(candidates)
        burn(ambassador)

    vertices = sorted(burned_order[:target_n])
    return graph.subgraph(vertices)
