"""Edge weighting: the paper's degree-product scheme (Section 6).

Real SN datasets carry no explicit tie strengths, so the paper derives
them from vertex degrees: *the more the friends of a user, the looser
the connection to them*, i.e. ::

    w(v_i, v_j) = deg(v_i) · deg(v_j) / max_degree²

Weights land in ``(0, 1]`` and strongly-connected low-degree pairs get
the smallest (strongest) weights.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def degree_product_weights(
    n: int, edges: Sequence[tuple[int, int]]
) -> list[tuple[int, int, float]]:
    """Attach degree-product weights to an unweighted edge list."""
    degree = [0] * n
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    max_degree = max(degree, default=0)
    if max_degree == 0:
        return []
    denom = float(max_degree * max_degree)
    return [(u, v, (degree[u] * degree[v]) / denom) for u, v in edges]


def uniform_weights(
    edges: Iterable[tuple[int, int]], weight: float = 1.0
) -> list[tuple[int, int, float]]:
    """Constant weights (hop-count semantics), for controlled tests."""
    if weight <= 0:
        raise ValueError(f"weight must be positive, got {weight}")
    return [(u, v, weight) for u, v in edges]
