"""Dataset substrate: synthetic geo-social networks and file loaders.

The paper evaluates on Gowalla (196K users), Foursquare (1.88M) and a
Singapore Twitter crawl (124K, average degree 57.7) — none of which is
redistributable here.  This package builds *calibrated synthetic
stand-ins*: power-law social graphs with matching average degree,
degree-product edge weights (the paper's weighting, Section 6),
clustered check-in-style locations with matching coverage ratios, plus
the Forest-Fire sampler and the correlation-controlled location
generators used by Figure 14.  Loaders for SNAP edge lists and
Gowalla-format check-in files let users plug in the real data when they
have it.
"""

from repro.datasets.forest_fire import forest_fire_sample
from repro.datasets.generators import (
    barabasi_albert_edges,
    erdos_renyi_edges,
    watts_strogatz_edges,
)
from repro.datasets.loaders import (
    load_checkins,
    load_edge_list,
    save_checkins,
    save_edge_list,
)
from repro.datasets.locations import (
    apply_coverage,
    clustered_locations,
    correlated_locations,
    permuted_locations,
    uniform_locations,
)
from repro.datasets.synthetic import (
    GeoSocialDataset,
    build_dataset,
    correlated_dataset,
    forest_fire_series,
    foursquare_like,
    gowalla_like,
    twitter_like,
)
from repro.datasets.weights import degree_product_weights

__all__ = [
    "barabasi_albert_edges",
    "watts_strogatz_edges",
    "erdos_renyi_edges",
    "degree_product_weights",
    "clustered_locations",
    "uniform_locations",
    "apply_coverage",
    "correlated_locations",
    "permuted_locations",
    "forest_fire_sample",
    "load_edge_list",
    "save_edge_list",
    "load_checkins",
    "save_checkins",
    "GeoSocialDataset",
    "build_dataset",
    "gowalla_like",
    "foursquare_like",
    "twitter_like",
    "correlated_dataset",
    "forest_fire_series",
]
