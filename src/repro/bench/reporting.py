"""Result tables and their text/markdown rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentTable:
    """One regenerated table/figure: a title, column headers, and rows
    printed exactly as the paper's series (one row per x-axis point or
    per dataset, one column per method/statistic)."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, row: Sequence) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(self.headers)}"
            )
        self.rows.append(list(row))

    def _fmt(self, value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Fixed-width ASCII rendering."""
        cells = [self.headers] + [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [f"== {self.experiment}: {self.title} =="]
        for r, row in enumerate(cells):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(f"({self.notes})")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"#### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        return "\n".join(lines)

    def column(self, header: str) -> list:
        """All values of one column (for assertions on trends)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
