"""Run the full paper evaluation: ``python -m repro.bench``.

Options::

    python -m repro.bench                     # all experiments, quick profile
    python -m repro.bench fig8 fig9           # a subset
    REPRO_BENCH_PROFILE=full python -m repro.bench
    python -m repro.bench --output results.md # also write markdown

Prints each regenerated table to stdout and (with ``--output``) writes a
markdown report suitable for pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.config import get_profile
from repro.bench.figures import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--profile", default=None, help="smoke | quick | full")
    parser.add_argument("--output", default=None, help="write a markdown report here")
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    names = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; choose from {list(ALL_EXPERIMENTS)}")

    print(f"profile: {profile.name} (|V|: gowalla={profile.gowalla_n}, "
          f"foursquare={profile.foursquare_n}, twitter={profile.twitter_n}; "
          f"{profile.queries} queries/point)")
    markdown: list[str] = [f"# Regenerated evaluation (profile: {profile.name})", ""]
    for name in names:
        start = time.perf_counter()
        tables = ALL_EXPERIMENTS[name](profile)
        elapsed = time.perf_counter() - start
        for table in tables:
            print()
            print(table.to_text())
            markdown.append(table.to_markdown())
            markdown.append("")
        print(f"[{name}: {elapsed:.1f}s]")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(markdown))
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
