"""Execution and aggregation of benchmark query batches."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import GeoSocialEngine
from repro.core.result import SSRQResult


@dataclass
class MethodAggregate:
    """Averages over a query batch for one (method, parameters) point —
    the unit the paper plots."""

    method: str
    queries: int
    avg_time: float
    avg_pops: float
    pop_ratio: float
    avg_evaluations: float
    results: list[SSRQResult] = field(repr=False, default_factory=list)


def run_method(
    engine: GeoSocialEngine,
    users: list[int],
    method: str,
    k: int = 30,
    alpha: float = 0.3,
    t: int | None = None,
    keep_results: bool = False,
) -> MethodAggregate:
    """Run one query per user and aggregate run-time / pop statistics."""
    if not users:
        raise ValueError("empty query workload")
    total_time = 0.0
    total_pops = 0
    total_evals = 0
    results: list[SSRQResult] = []
    for user in users:
        start = time.perf_counter()
        result = engine.query(user, k=k, alpha=alpha, method=method, t=t)
        total_time += time.perf_counter() - start
        total_pops += result.stats.pops
        total_evals += result.stats.evaluations
        if keep_results:
            results.append(result)
    n = len(users)
    return MethodAggregate(
        method=method,
        queries=n,
        avg_time=total_time / n,
        avg_pops=total_pops / n,
        pop_ratio=(total_pops / n) / engine.graph.n,
        avg_evaluations=total_evals / n,
        results=results,
    )


def jaccard(a: set, b: set) -> float:
    """Jaccard set-similarity ratio (Figure 7b's measure)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0
