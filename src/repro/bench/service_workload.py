"""Service-layer throughput workload: Zipf-skewed arrivals over the
query service, measuring queries/sec versus batch size, worker count,
and cache configuration.

Urban check-in traffic is highly skewed — a small set of hot users and
hot regions generates most of the load — so arrivals are drawn from a
Zipf distribution over the located users.  Each configuration serves
the *same* arrival sequence, so the rows are directly comparable; the
baseline row (batch=1, workers=1, no cache) is the sequential
``engine.query`` loop the rest are sped up against.

The drivers here back two consumers: ``python -m repro.bench service``
(registered in :data:`repro.bench.figures.ALL_EXPERIMENTS`) and the
standalone ``benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.workloads import get_bundle
from repro.core.engine import GeoSocialEngine
from repro.service.model import QueryRequest
from repro.service.service import QueryService
from repro.utils.rng import make_rng


def zipf_arrivals(
    users: list[int], count: int, skew: float = 1.1, seed: int = 0
) -> list[int]:
    """A ``count``-long arrival sequence over ``users``, Zipf-skewed.

    Users are ranked in a seed-shuffled order and user at rank ``r``
    arrives with probability ∝ ``1/(r+1)^skew`` — the classic model of
    repeat-heavy request traffic.

        >>> from repro.bench.service_workload import zipf_arrivals
        >>> arrivals = zipf_arrivals([10, 20, 30, 40], count=100, seed=1)
        >>> len(arrivals), set(arrivals) <= {10, 20, 30, 40}
        (100, True)
    """
    if not users:
        raise ValueError("empty user population")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = make_rng(seed)
    ranked = list(users)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(ranked))]
    return rng.choices(ranked, weights=weights, k=count)


@dataclass
class ThroughputPoint:
    """One measured serving configuration."""

    label: str
    batch_size: int
    workers: int
    cache_size: int
    queries: int
    elapsed: float
    hit_rate: float

    @property
    def qps(self) -> float:
        """Queries served per second."""
        return self.queries / self.elapsed if self.elapsed > 0 else float("inf")


def run_throughput_point(
    engine: GeoSocialEngine,
    arrivals: list[int],
    *,
    label: str,
    batch_size: int,
    workers: int,
    cache_size: int,
    k: int = 30,
    alpha: float = 0.3,
    method: str = "ais",
) -> ThroughputPoint:
    """Serve the whole arrival sequence through a fresh
    :class:`QueryService` in ``batch_size``-sized batches and time it."""
    with QueryService(engine, max_workers=workers, cache_size=cache_size) as service:
        requests = [
            QueryRequest(user=user, k=k, alpha=alpha, method=method)
            for user in arrivals
        ]
        start = time.perf_counter()
        for lo in range(0, len(requests), batch_size):
            service.query_many(requests[lo : lo + batch_size])
        elapsed = time.perf_counter() - start
        hit_rate = service.stats.hit_rate
    return ThroughputPoint(
        label=label,
        batch_size=batch_size,
        workers=workers,
        cache_size=cache_size,
        queries=len(arrivals),
        elapsed=elapsed,
        hit_rate=hit_rate,
    )


def run_throughput_grid(
    engine: GeoSocialEngine,
    arrivals: list[int],
    *,
    k: int = 30,
    alpha: float = 0.3,
    method: str = "ais",
    batch_sizes: tuple[int, ...] = (1, 16, 64),
    worker_counts: tuple[int, ...] = (1, 4),
    cache_size: int = 4096,
) -> list[ThroughputPoint]:
    """The standard configuration sweep: a sequential no-cache baseline,
    then batching, workers, and caching toggled across the grid."""
    points = [
        run_throughput_point(
            engine,
            arrivals,
            label="baseline (seq, no cache)",
            batch_size=1,
            workers=1,
            cache_size=0,
            k=k,
            alpha=alpha,
            method=method,
        )
    ]
    for batch in batch_sizes:
        if batch == 1:
            continue
        for workers in worker_counts:
            points.append(
                run_throughput_point(
                    engine,
                    arrivals,
                    label=f"batch={batch} workers={workers} no cache",
                    batch_size=batch,
                    workers=workers,
                    cache_size=0,
                    k=k,
                    alpha=alpha,
                    method=method,
                )
            )
    points.append(
        run_throughput_point(
            engine,
            arrivals,
            label=f"cache only (seq, LRU {cache_size})",
            batch_size=1,
            workers=1,
            cache_size=cache_size,
            k=k,
            alpha=alpha,
            method=method,
        )
    )
    points.append(
        run_throughput_point(
            engine,
            arrivals,
            label=f"batch={max(batch_sizes)} workers={max(worker_counts)} "
            f"cache LRU {cache_size}",
            batch_size=max(batch_sizes),
            workers=max(worker_counts),
            cache_size=cache_size,
            k=k,
            alpha=alpha,
            method=method,
        )
    )
    return points


def service_throughput(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Experiment driver (registered as ``service``): queries/sec of the
    service layer under Zipf-skewed arrivals on the Gowalla-like
    dataset, versus batch size, worker count, and cache configuration."""
    profile = profile or get_profile()
    bundle = get_bundle("gowalla", profile)
    engine = bundle.engine
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 25, 100), skew=1.1, seed=profile.seed
    )
    points = run_throughput_grid(
        engine,
        arrivals,
        k=profile.default_k,
        alpha=profile.default_alpha,
    )
    baseline = points[0]
    table = ExperimentTable(
        "Service",
        "Serving throughput on Zipf-skewed arrivals (Gowalla-like)",
        ["Configuration", "Queries", "QPS", "Speedup", "Cache hit rate"],
        notes=f"{len(set(arrivals))} distinct users over {len(arrivals)} arrivals; "
        "speedup is relative to the sequential no-cache baseline",
    )
    for point in points:
        table.add_row(
            [
                point.label,
                point.queries,
                point.qps,
                point.qps / baseline.qps if baseline.qps else float("inf"),
                point.hit_rate,
            ]
        )
    return [table]
