"""Benchmark datasets, engines and query workloads (built once, cached).

Engines are keyed by ``(dataset, s, M)`` so parameter sweeps (Figure 12
varies ``s``) can share datasets without rebuilding graphs, and repeated
pytest-benchmark cases reuse everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchProfile, get_profile
from repro.core.engine import GeoSocialEngine
from repro.datasets.synthetic import (
    GeoSocialDataset,
    correlated_dataset,
    forest_fire_series,
    foursquare_like,
    gowalla_like,
    twitter_like,
)
from repro.utils.rng import make_rng


def sample_query_users(
    dataset: GeoSocialDataset, count: int, seed: int = 0
) -> list[int]:
    """Random located query users (the paper issues random SSRQ
    queries; located because SSRQ with α < 1 requires a query point)."""
    located = list(dataset.locations.located_users())
    rng = make_rng(seed)
    if count >= len(located):
        return located
    return rng.sample(located, count)


@dataclass
class DatasetBundle:
    """A dataset with its engine and query workload."""

    dataset: GeoSocialDataset
    engine: GeoSocialEngine
    query_users: list[int]

    @property
    def name(self) -> str:
        return self.dataset.name


class _BundleCache:
    def __init__(self) -> None:
        self._datasets: dict[str, GeoSocialDataset] = {}
        self._engines: dict[tuple, GeoSocialEngine] = {}

    def dataset(self, kind: str, profile: BenchProfile) -> GeoSocialDataset:
        key = f"{kind}:{profile.name}"
        ds = self._datasets.get(key)
        if ds is not None:
            return ds
        if kind == "gowalla":
            ds = gowalla_like(n=profile.gowalla_n)
        elif kind == "foursquare":
            ds = foursquare_like(n=profile.foursquare_n)
        elif kind == "gowalla-ch":
            ds = gowalla_like(n=profile.ch_gowalla_n)
        elif kind == "foursquare-ch":
            ds = foursquare_like(n=profile.ch_foursquare_n)
        elif kind == "twitter":
            ds = twitter_like(n=profile.twitter_n)
        elif kind.startswith("correlated-"):
            correlation = kind.split("-", 1)[1]
            ds, anchor = correlated_dataset(correlation, n=profile.correlated_n)
            self._datasets[f"{key}:anchor"] = anchor  # type: ignore[assignment]
        elif kind.startswith("scale-"):
            index = int(kind.split("-", 1)[1])
            base = self.dataset("foursquare", profile)
            sizes = [s for s in profile.scale_sizes if s <= base.graph.n]
            series = forest_fire_series(base, sizes, seed=profile.seed)
            for i, sub in enumerate(series):
                self._datasets[f"scale-{i}:{profile.name}"] = sub
            ds = self._datasets[key]
        else:
            raise ValueError(f"unknown dataset kind {kind!r}")
        self._datasets[key] = ds
        return ds

    def anchor(self, kind: str, profile: BenchProfile) -> int:
        """Anchor vertex of a correlated dataset (query origin)."""
        self.dataset(kind, profile)
        return self._datasets[f"{kind}:{profile.name}:anchor"]  # type: ignore[return-value]

    def bundle(
        self,
        kind: str,
        profile: BenchProfile | None = None,
        s: int | None = None,
        queries: int | None = None,
    ) -> DatasetBundle:
        profile = profile or get_profile()
        s = s if s is not None else profile.default_s
        ds = self.dataset(kind, profile)
        engine_key = (kind, profile.name, s, profile.num_landmarks)
        engine = self._engines.get(engine_key)
        if engine is None:
            engine = GeoSocialEngine(
                ds.graph,
                ds.locations,
                num_landmarks=min(profile.num_landmarks, ds.graph.n),
                s=s,
                seed=profile.seed,
            )
            self._engines[engine_key] = engine
        count = queries if queries is not None else profile.queries
        if kind.startswith("correlated-"):
            users = [self.anchor(kind, profile)] * 1  # paper queries from the anchor
        else:
            users = sample_query_users(ds, count, seed=profile.seed)
        return DatasetBundle(ds, engine, users)

    def clear(self) -> None:
        self._datasets.clear()
        self._engines.clear()


_CACHE = _BundleCache()


def get_bundle(
    kind: str,
    profile: BenchProfile | None = None,
    s: int | None = None,
    queries: int | None = None,
) -> DatasetBundle:
    """Cached dataset+engine+workload for ``kind``:

    ``gowalla`` | ``foursquare`` | ``twitter`` |
    ``correlated-positive`` | ``correlated-independent`` |
    ``correlated-negative`` | ``scale-0`` / ``scale-1`` / ``scale-2``.
    """
    return _CACHE.bundle(kind, profile, s, queries)


def clear_cache() -> None:
    """Drop all cached datasets/engines (tests of the harness itself)."""
    _CACHE.clear()
