"""Open-loop load generation against the HTTP server.

Closed-loop clients (send, wait, send again) hide saturation: when the
server slows down, the offered load politely slows down with it and the
measured latency stays flat — the *coordinated omission* trap.  This
module drives the real :class:`~repro.server.app.ServerThread` the way
production traffic would: arrivals are scheduled in advance from a
Poisson process at a fixed *offered* rate, each request's latency is
measured from its **scheduled arrival time** (so queueing delay behind
a slow server is charged to the server, not silently skipped), and the
server is free to shed with ``429`` when its admission queue fills.

One experiment sweeps offered load from well below measured capacity to
well past it and reports, per point: achieved qps, shed rate, and the
p50/p99/p999 of arrival-anchored latency — the canonical saturation
curve (flat latency, zero shed → hockey stick → shedding holds p99
bounded for the requests that are admitted).
"""

from __future__ import annotations

import math
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.service_workload import zipf_arrivals
from repro.bench.workloads import get_bundle
from repro.server.client import ServerClient


@dataclass
class LoadPoint:
    """One offered-load data point of the saturation sweep."""

    label: str
    offered_qps: float
    sent: int
    ok: int
    shed: int
    errors: int
    duration_s: float
    #: arrival-anchored latencies (seconds) of the *admitted* requests
    latencies_s: list = field(default_factory=list, repr=False)

    @property
    def achieved_qps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.sent if self.sent else 0.0

    def latency_ms(self, quantile: float) -> float:
        """Latency quantile in milliseconds (nearest-rank)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
        return ordered[rank] * 1000.0

    def row(self) -> list:
        return [
            self.label,
            round(self.offered_qps, 1),
            round(self.achieved_qps, 1),
            round(self.shed_rate, 4),
            round(self.latency_ms(0.50), 2),
            round(self.latency_ms(0.99), 2),
            round(self.latency_ms(0.999), 2),
        ]

    def payload(self) -> dict:
        return {
            "label": self.label,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": self.shed_rate,
            "p50_ms": self.latency_ms(0.50),
            "p99_ms": self.latency_ms(0.99),
            "p999_ms": self.latency_ms(0.999),
        }


HEADERS = ["Load", "Offered qps", "Achieved qps", "Shed rate", "p50 ms", "p99 ms", "p999 ms"]

#: sweep points as fractions of measured closed-loop capacity — the
#: last one is deliberately past saturation to exercise shedding
LOAD_FRACTIONS = (("light", 0.4), ("near-capacity", 0.9), ("overload", 2.5))


def estimate_capacity_qps(
    host: str, port: int, users: list, k: int, alpha: float, concurrency: int = 4
) -> float:
    """Closed-loop calibration: ``concurrency`` synchronous clients
    hammer the server through one pass over ``users``; the combined
    completion rate approximates saturation throughput."""
    cursor = {"i": 0}
    lock = threading.Lock()

    def drain() -> int:
        done = 0
        with ServerClient(host, port) as client:
            while True:
                with lock:
                    i = cursor["i"]
                    cursor["i"] = i + 1
                if i >= len(users):
                    return done
                client.query(users[i], k=k, alpha=alpha)
                done += 1

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        total = sum(pool.map(lambda _: drain(), range(concurrency)))
    elapsed = time.perf_counter() - start
    if total == 0 or elapsed <= 0:
        raise RuntimeError("capacity calibration served no queries")
    return total / elapsed


def run_load_point(
    host: str,
    port: int,
    users: list,
    offered_qps: float,
    k: int,
    alpha: float,
    label: str = "",
    seed: int = 0,
    pool_size: int = 64,
) -> LoadPoint:
    """Fire ``len(users)`` requests open-loop at ``offered_qps``.

    Arrival offsets are pre-drawn Poisson interarrivals; the dispatcher
    sleeps to each scheduled instant and hands the request to a worker
    pool regardless of how many are still outstanding.  Latency is
    ``completion - scheduled_arrival``, charging queueing delay.

    ``pool_size`` must exceed the server's ``queue_depth + workers`` or
    the client pool itself becomes the admission limit and the server
    never sheds — the closed-loop trap this generator exists to avoid.
    """
    if offered_qps <= 0:
        raise ValueError(f"offered_qps must be > 0, got {offered_qps}")
    rng = random.Random(seed)
    offsets = []
    t = 0.0
    for _ in users:
        t += rng.expovariate(offered_qps)
        offsets.append(t)

    point = LoadPoint(label=label or f"{offered_qps:.0f}qps", offered_qps=offered_qps,
                      sent=0, ok=0, shed=0, errors=0, duration_s=0.0)
    lock = threading.Lock()
    local = threading.local()

    def client() -> ServerClient:
        if getattr(local, "client", None) is None:
            local.client = ServerClient(host, port)
        return local.client

    def fire(user: int, scheduled: float) -> None:
        try:
            status, _, _ = client().request(
                "POST", "/query", {"user": user, "k": k, "alpha": alpha}
            )
        except Exception:
            status = -1
        done = time.perf_counter()
        with lock:
            if status == 200:
                point.ok += 1
                point.latencies_s.append(done - scheduled)
            elif status == 429:
                point.shed += 1
            else:
                point.errors += 1

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=pool_size) as pool:
        futures = []
        for user, offset in zip(users, offsets):
            delay = start + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            point.sent += 1
            futures.append(pool.submit(fire, user, start + offset))
        for future in futures:
            future.result()
    point.duration_s = time.perf_counter() - start
    return point


def server_load_sweep(
    profile: "BenchProfile | None" = None,
    queue_depth: int = 16,
    workers: int = 2,
) -> "tuple[float, list[LoadPoint], ExperimentTable]":
    """The full experiment: boot a server over the gowalla bundle,
    calibrate capacity closed-loop, then sweep :data:`LOAD_FRACTIONS`
    open-loop.  Returns ``(capacity_qps, points, table)``."""
    from repro import QueryService
    from repro.server import ServerThread

    profile = profile or get_profile()
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    count = max(profile.queries * 20, 120)
    arrivals = zipf_arrivals(located, count=count, skew=1.1, seed=profile.seed)
    k, alpha = profile.default_k, profile.default_alpha

    table = ExperimentTable(
        experiment="server_load",
        title="HTTP saturation sweep (open-loop Poisson arrivals, Zipf users)",
        headers=HEADERS,
        notes="latency anchored at scheduled arrival; shed = HTTP 429",
    )
    points: list[LoadPoint] = []
    with QueryService(bundle.engine, cache_size=0) as service:
        with ServerThread(service, queue_depth=queue_depth, workers=workers) as handle:
            capacity = estimate_capacity_qps(
                handle.host, handle.port, arrivals[: max(count // 2, 60)], k, alpha
            )
            for label, fraction in LOAD_FRACTIONS:
                point = run_load_point(
                    handle.host,
                    handle.port,
                    arrivals,
                    offered_qps=max(capacity * fraction, 1.0),
                    k=k,
                    alpha=alpha,
                    label=label,
                    seed=profile.seed,
                )
                points.append(point)
                table.add_row(point.row())
    return capacity, points, table
