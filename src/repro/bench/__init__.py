"""Benchmark harness regenerating the paper's evaluation (Section 6).

One driver per table/figure lives in :mod:`repro.bench.figures`; each
returns an :class:`~repro.bench.reporting.ExperimentTable` whose rows
mirror the series the paper plots.  ``python -m repro.bench`` runs the
whole evaluation and writes the results to ``experiments_output.md``.

Scale is controlled by the ``REPRO_BENCH_PROFILE`` environment variable
(``smoke`` / ``quick`` / ``full``; default ``quick``) — see
:mod:`repro.bench.config` for the exact dataset sizes and query counts.
"""

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.runner import MethodAggregate, run_method
from repro.bench.service_workload import (
    ThroughputPoint,
    run_throughput_grid,
    run_throughput_point,
    zipf_arrivals,
)
from repro.bench.workloads import DatasetBundle, get_bundle, sample_query_users

__all__ = [
    "BenchProfile",
    "get_profile",
    "ExperimentTable",
    "MethodAggregate",
    "run_method",
    "DatasetBundle",
    "get_bundle",
    "sample_query_users",
    "ThroughputPoint",
    "zipf_arrivals",
    "run_throughput_point",
    "run_throughput_grid",
]
