"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a list of :class:`ExperimentTable` objects whose
rows correspond to the series the paper plots (x-axis value per row,
one column per method/statistic).  Absolute numbers differ from the
paper (Python vs C++, scaled datasets); EXPERIMENTS.md compares shapes.
"""

from __future__ import annotations

import math

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.runner import jaccard, run_method
from repro.bench.workloads import get_bundle
from repro.graph.traversal import DijkstraIterator

MAIN_METHODS = ("sfa", "spa", "tsa", "tsa-qc", "ais")
CH_METHODS = ("sfa-ch", "spa-ch", "tsa-ch")
AIS_VERSIONS = ("ais-bid", "ais-minus", "ais")

_DATASET_LABELS = {"gowalla": "Gowalla-like", "foursquare": "Foursquare-like"}


# ---------------------------------------------------------------- Table 2


def table2(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Table 2: dataset statistics."""
    profile = profile or get_profile()
    table = ExperimentTable(
        "Table 2",
        "Data statistics (calibrated synthetic stand-ins)",
        ["Name", "|V|", "|E|", "# locations", "Deg.", "Coverage"],
        notes="paper: Gowalla 196,590/1,900,654/107,092/9.7 — "
        "Foursquare 1,880,405/17,838,254/1,133,936/9.5 — Twitter 124K/deg 57.7",
    )
    for kind in ("gowalla", "foursquare", "twitter"):
        stats = get_bundle(kind, profile).dataset.stats()
        table.add_row(
            [
                stats["name"],
                stats["V"],
                stats["E"],
                stats["locations"],
                stats["avg_degree"],
                stats["coverage"],
            ]
        )
    return [table]


# ---------------------------------------------------------------- Figure 7


def fig7a(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 7(a): hops (weighted-shortest-path edges) to the furthest
    SSRQ result, AVG and MAX over queries, versus k."""
    profile = profile or get_profile()
    table = ExperimentTable(
        "Figure 7a",
        "Hop distance of the furthest SSRQ result vs k",
        ["k", "G. Avg. hop", "G. Max. hop", "F. Avg. hop", "F. Max. hop"],
        notes="paper: results reach up to ~8 hops; Foursquare deeper than Gowalla",
    )
    k_max = max(profile.k_values)
    per_dataset: dict[str, dict[int, tuple[float, int]]] = {}
    for kind in ("gowalla", "foursquare"):
        bundle = get_bundle(kind, profile)
        # One max-k query per user; smaller k results are prefixes.
        hops_per_k: dict[int, list[int]] = {k: [] for k in profile.k_values}
        for user in bundle.query_users:
            result = bundle.engine.query(
                user, k=k_max, alpha=profile.default_alpha, method="ais"
            )
            if not result.neighbors:
                continue
            social_tree = DijkstraIterator(bundle.engine.graph, user)
            for k in profile.k_values:
                prefix = result.neighbors[: min(k, len(result.neighbors))]
                furthest = prefix[-1].user
                if social_tree.run_until(furthest) == math.inf:
                    continue
                hops_per_k[k].append(len(social_tree.path_to(furthest)) - 1)
        per_dataset[kind] = {
            k: (sum(h) / len(h) if h else 0.0, max(h) if h else 0)
            for k, h in hops_per_k.items()
        }
    for k in profile.k_values:
        g_avg, g_max = per_dataset["gowalla"][k]
        f_avg, f_max = per_dataset["foursquare"][k]
        table.add_row([k, round(g_avg, 2), g_max, round(f_avg, 2), f_max])
    return [table]


def fig7b(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 7(b): Jaccard similarity of the SSRQ result versus pure
    social / pure spatial top-k, across α (Foursquare-like)."""
    profile = profile or get_profile()
    table = ExperimentTable(
        "Figure 7b",
        "SSRQ vs social-only and spatial-only top-k (Jaccard)",
        ["alpha", "vs. social", "vs. spatial"],
        notes="paper: Jaccard below 0.1 for all alpha — SSRQ is its own query type",
    )
    bundle = get_bundle("foursquare", profile)
    k = profile.default_k
    social_sets = {}
    spatial_sets = {}
    for user in bundle.query_users:
        social_sets[user] = set(bundle.engine.query(user, k=k, alpha=1.0, method="sfa").users)
        spatial_sets[user] = set(bundle.engine.query(user, k=k, alpha=0.0, method="spa").users)
    for alpha in profile.alpha_values:
        js, jd = [], []
        for user in bundle.query_users:
            ssrq = set(bundle.engine.query(user, k=k, alpha=alpha, method="ais").users)
            js.append(jaccard(ssrq, social_sets[user]))
            jd.append(jaccard(ssrq, spatial_sets[user]))
        table.add_row(
            [alpha, round(sum(js) / len(js), 4), round(sum(jd) / len(jd), 4)]
        )
    return [table]


# ---------------------------------------------------------------- Figure 8


def _sweep_k(
    kind: str,
    methods: tuple[str, ...],
    profile: BenchProfile,
    queries: int | None = None,
    experiment: str = "Figure 8",
    notes: str = "",
    with_pops: bool = True,
) -> list[ExperimentTable]:
    """One pass over (k, method); emits a run-time table and (optionally)
    the matching pop-ratio table."""
    label = _DATASET_LABELS.get(kind, kind)
    headers = ["k"] + [m.upper() for m in methods]
    time_table = ExperimentTable(
        experiment, f"running time (s) vs k in {label}", headers, notes=notes
    )
    pop_table = ExperimentTable(
        f"{experiment} (pop)", f"pop ratio vs k in {label}", headers, notes=notes
    )
    bundle = get_bundle(kind, profile, queries=queries)
    users = bundle.query_users if queries is None else bundle.query_users[:queries]
    for k in profile.k_values:
        time_row: list = [k]
        pop_row: list = [k]
        for method in methods:
            agg = run_method(bundle.engine, users, method, k=k, alpha=profile.default_alpha)
            time_row.append(agg.avg_time)
            pop_row.append(agg.pop_ratio)
        time_table.add_row(time_row)
        pop_table.add_row(pop_row)
    return [time_table, pop_table] if with_pops else [time_table]


def fig8(profile: BenchProfile | None = None, include_ch: bool = True) -> list[ExperimentTable]:
    """Figure 8: effect of k — run-time (a, b) and pop ratio (c, d) on
    both datasets.  The CH-backed variants (in the paper's run-time
    charts only) run on reduced instances: a per-evaluation CH query is
    orders of magnitude costlier than a shared-Dijkstra read in Python —
    the very effect the figure demonstrates — and the method ordering is
    scale-free (see EXPERIMENTS.md)."""
    profile = profile or get_profile()
    gowalla = _sweep_k("gowalla", MAIN_METHODS, profile)
    foursquare = _sweep_k("foursquare", MAIN_METHODS, profile)
    tables = [gowalla[0], foursquare[0], gowalla[1], foursquare[1]]
    if include_ch:
        ch_note = (
            "reduced scale for CH variants; vanilla methods re-measured "
            "on the same instance for a fair ratio"
        )
        for kind in ("gowalla-ch", "foursquare-ch"):
            tables.extend(
                _sweep_k(
                    kind, ("sfa", "spa", "tsa") + CH_METHODS, profile,
                    queries=profile.ch_queries, experiment="Figure 8 (CH)",
                    notes=ch_note, with_pops=False,
                )
            )
    return tables


# ---------------------------------------------------------------- Figure 9


def fig9(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 9: effect of α on run-time, both datasets."""
    profile = profile or get_profile()
    tables = []
    for kind in ("gowalla", "foursquare"):
        table = ExperimentTable(
            "Figure 9",
            f"running time (s) vs alpha in {_DATASET_LABELS[kind]}",
            ["alpha"] + [m.upper() for m in MAIN_METHODS],
            notes="paper: SFA/TSA improve with larger alpha, SPA degrades, AIS robust",
        )
        bundle = get_bundle(kind, profile)
        for alpha in profile.alpha_values:
            row = [alpha]
            for method in MAIN_METHODS:
                agg = run_method(
                    bundle.engine, bundle.query_users, method, k=profile.default_k, alpha=alpha
                )
                row.append(agg.avg_time)
            table.add_row(row)
        tables.append(table)
    return tables


# ---------------------------------------------------------------- Figure 10


def fig10(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 10: AIS-BID vs AIS− vs AIS (run-time and pop ratio)."""
    profile = profile or get_profile()
    notes = "paper: AIS-BID worst by far; delayed evaluation a moderate extra gain"
    tables = []
    for kind in ("gowalla", "foursquare"):
        headers = ["k", "AIS-BID", "AIS-", "AIS"]
        time_table = ExperimentTable(
            "Figure 10",
            f"running time (s) vs k in {_DATASET_LABELS[kind]} (AIS versions)",
            headers,
            notes=notes,
        )
        pop_table = ExperimentTable(
            "Figure 10 (pop)",
            f"pop ratio vs k in {_DATASET_LABELS[kind]} (AIS versions)",
            headers,
            notes=notes,
        )
        bundle = get_bundle(kind, profile)
        for k in profile.k_values:
            time_row: list = [k]
            pop_row: list = [k]
            for method in AIS_VERSIONS:
                agg = run_method(
                    bundle.engine, bundle.query_users, method, k=k,
                    alpha=profile.default_alpha,
                )
                time_row.append(agg.avg_time)
                pop_row.append(agg.pop_ratio)
            time_table.add_row(time_row)
            pop_table.add_row(pop_row)
        tables.extend([time_table, pop_table])
    return tables


# ---------------------------------------------------------------- Figure 11


def fig11(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 11: pre-computation (AIS-Cache) vs cache size t."""
    profile = profile or get_profile()
    tables = []
    for kind in ("gowalla", "foursquare"):
        table = ExperimentTable(
            "Figure 11",
            f"running time (s) vs t in {_DATASET_LABELS[kind]}",
            ["t", "AIS", "AIS-Cache", "fallback rate"],
            notes="paper: clear gain on the smaller graph, minor on the larger "
            "(deeper searches exhaust the cache)",
        )
        bundle = get_bundle(kind, profile)
        baseline = run_method(
            bundle.engine, bundle.query_users, "ais",
            k=profile.default_k, alpha=profile.default_alpha,
        )
        for t in profile.t_values:
            # Pre-computation is offline: build lists before timing.
            bundle.engine.neighbor_cache(t).prebuild(bundle.query_users)
            agg = run_method(
                bundle.engine, bundle.query_users, "ais-cache",
                k=profile.default_k, alpha=profile.default_alpha, t=t, keep_results=True,
            )
            fallbacks = sum(r.stats.extra.get("fallback", 0) for r in agg.results)
            table.add_row(
                [t, baseline.avg_time, agg.avg_time, round(fallbacks / agg.queries, 2)]
            )
        tables.append(table)
    return tables


# ---------------------------------------------------------------- Figure 12


def fig12(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 12: effect of grid granularity s."""
    profile = profile or get_profile()
    methods = ("spa", "ais-bid", "ais-minus", "ais")
    tables = []
    for kind in ("gowalla", "foursquare"):
        table = ExperimentTable(
            "Figure 12",
            f"running time (s) vs s in {_DATASET_LABELS[kind]}",
            ["s", "SPA", "AIS-BID", "AIS-", "AIS"],
            notes="paper: s=10 a good balance; methods not very sensitive",
        )
        for s in profile.s_values:
            bundle = get_bundle(kind, profile, s=s)
            row = [s]
            for method in methods:
                agg = run_method(
                    bundle.engine, bundle.query_users, method,
                    k=profile.default_k, alpha=profile.default_alpha,
                )
                row.append(agg.avg_time)
            table.add_row(row)
        tables.append(table)
    return tables


# ---------------------------------------------------------------- Figure 13


def fig13(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 13: the high-degree Twitter-like dataset, vs k and α."""
    profile = profile or get_profile()
    bundle = get_bundle("twitter", profile)
    by_k = ExperimentTable(
        "Figure 13a",
        "running time (s) vs k in Twitter-like (avg degree ~57.7)",
        ["k"] + [m.upper() for m in MAIN_METHODS],
        notes="paper: same trends; run-time grows less sharply with k (fewer hops needed)",
    )
    for k in profile.k_values:
        row = [k]
        for method in MAIN_METHODS:
            agg = run_method(bundle.engine, bundle.query_users, method, k=k, alpha=profile.default_alpha)
            row.append(agg.avg_time)
        by_k.add_row(row)
    by_alpha = ExperimentTable(
        "Figure 13b",
        "running time (s) vs alpha in Twitter-like",
        ["alpha"] + [m.upper() for m in MAIN_METHODS],
    )
    for alpha in profile.alpha_values:
        row = [alpha]
        for method in MAIN_METHODS:
            agg = run_method(bundle.engine, bundle.query_users, method, k=profile.default_k, alpha=alpha)
            row.append(agg.avg_time)
        by_alpha.add_row(row)
    return [by_k, by_alpha]


# ---------------------------------------------------------------- Figure 14


def fig14a(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 14(a): social/spatial correlation effect (queries issued
    from the construction anchor; see DESIGN.md substitutions)."""
    profile = profile or get_profile()
    table = ExperimentTable(
        "Figure 14a",
        "running time (s) vs social-spatial correlation",
        ["correlation"] + [m.upper() for m in MAIN_METHODS],
        notes="paper: positive fastest, negative slowest, AIS best everywhere",
    )
    repeats = max(3, profile.queries // 2)
    for correlation in ("positive", "independent", "negative"):
        bundle = get_bundle(f"correlated-{correlation}", profile)
        users = bundle.query_users * repeats  # timing stability
        row = [correlation]
        for method in MAIN_METHODS:
            agg = run_method(
                bundle.engine, users, method, k=profile.default_k, alpha=profile.default_alpha
            )
            row.append(agg.avg_time)
        table.add_row(row)
    return [table]


def fig14b(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Figure 14(b): scalability over Forest-Fire samples of the
    Foursquare-like network."""
    profile = profile or get_profile()
    table = ExperimentTable(
        "Figure 14b",
        "running time (s) vs |V| (Forest-Fire samples)",
        ["|V|"] + [m.upper() for m in MAIN_METHODS],
        notes="paper: near-linear growth for all; AIS scales most gracefully",
    )
    sizes = [s for s in profile.scale_sizes]
    for index, size in enumerate(sizes):
        bundle = get_bundle(f"scale-{index}", profile)
        row = [bundle.engine.graph.n]
        for method in MAIN_METHODS:
            agg = run_method(
                bundle.engine, bundle.query_users, method,
                k=profile.default_k, alpha=profile.default_alpha,
            )
            row.append(agg.avg_time)
        table.add_row(row)
    return [table]


def service(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Service-layer throughput (not a paper figure: the serving layer's
    batching/concurrency/caching sweep under Zipf-skewed arrivals)."""
    from repro.bench.service_workload import service_throughput

    return service_throughput(profile)


def sharded(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Sharded-engine scaling (not a paper figure: scatter-gather
    throughput and shard pruning versus shard count)."""
    from repro.bench.sharded_workload import sharded_scaling

    return sharded_scaling(profile)


def stream(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Continuous-subscription maintenance (not a paper figure: the
    stream layer's amortized cost vs recompute-per-update)."""
    from repro.bench.stream_workload import stream_maintenance

    return stream_maintenance(profile)


ALL_EXPERIMENTS = {
    "table2": table2,
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14a": fig14a,
    "fig14b": fig14b,
    "service": service,
    "sharded": sharded,
    "stream": stream,
}
