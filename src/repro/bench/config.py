"""Benchmark scale profiles.

The paper runs 1,000 random queries per data point on datasets of up to
1.88M users (C++).  Pure Python needs smaller defaults; the *shape* of
every result (method ordering, trends versus k/α/s, crossovers) is
preserved at these scales — see DESIGN.md's substitution table.

Profiles (override via ``REPRO_BENCH_PROFILE``):

- ``smoke`` — seconds; used by the harness's own tests
- ``quick`` — minutes; the default for ``pytest benchmarks/``
- ``full``  — the DESIGN.md calibrated sizes; tens of minutes

Table 3 of the paper (query/system parameters) is mirrored here:
``k ∈ {10..50}`` (default 30), ``α ∈ {0.1..0.9}`` (default 0.3),
``s ∈ {5..25}`` (default 10), ``M = 8`` landmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class BenchProfile:
    name: str
    gowalla_n: int
    foursquare_n: int
    twitter_n: int
    correlated_n: int
    #: Figure 14(b) sample sizes (paper: 0.6M / 1.2M / 1.8M)
    scale_sizes: tuple[int, ...]
    #: queries per data point (paper: 1000)
    queries: int
    #: queries per data point for the CH-backed variants (slower)
    ch_queries: int
    #: Figure 11 cached-list lengths (paper: 1K..10K)
    t_values: tuple[int, ...]
    #: reduced dataset sizes for the CH-variant comparison — per-settle
    #: CH evaluations are ~100x the cost of shared Dijkstra reads, the
    #: very effect Figure 8 reports; the ordering is scale-free
    ch_gowalla_n: int = 900
    ch_foursquare_n: int = 1400
    # Table 3 ranges
    k_values: tuple[int, ...] = (10, 20, 30, 40, 50)
    alpha_values: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    s_values: tuple[int, ...] = (5, 10, 15, 20, 25)
    default_k: int = 30
    default_alpha: float = 0.3
    default_s: int = 10
    num_landmarks: int = 8
    seed: int = 99


PROFILES = {
    "smoke": BenchProfile(
        name="smoke",
        gowalla_n=800,
        foursquare_n=1200,
        twitter_n=600,
        correlated_n=800,
        scale_sizes=(300, 600, 900),
        queries=3,
        ch_queries=2,
        ch_gowalla_n=400,
        ch_foursquare_n=600,
        t_values=(25, 50, 100),
        k_values=(10, 30, 50),
        alpha_values=(0.1, 0.5, 0.9),
        s_values=(5, 10, 20),
        num_landmarks=4,
    ),
    "quick": BenchProfile(
        name="quick",
        gowalla_n=3000,
        foursquare_n=7000,
        twitter_n=2500,
        correlated_n=4000,
        scale_sizes=(2000, 4000, 6000),
        queries=8,
        ch_queries=4,
        t_values=(50, 100, 200, 400),
    ),
    "full": BenchProfile(
        name="full",
        gowalla_n=12_000,
        foursquare_n=30_000,
        twitter_n=8_000,
        correlated_n=20_000,
        scale_sizes=(10_000, 20_000, 30_000),
        queries=30,
        ch_queries=8,
        ch_gowalla_n=1500,
        ch_foursquare_n=2500,
        t_values=(100, 200, 400, 600, 800, 1000),
    ),
}


def get_profile(name: str | None = None) -> BenchProfile:
    """The active profile: explicit name, else ``REPRO_BENCH_PROFILE``,
    else ``quick``."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
