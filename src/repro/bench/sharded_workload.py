"""Sharded scatter-gather scaling: throughput and shard pruning versus
shard count on the Zipf-skewed service workload.

Not a paper figure — this benchmarks the sharding layer
(:mod:`repro.shard`) added on top of the reproduction.  Every
configuration serves the *same* Zipf arrival sequence in the same batch
sizes with result caching off (the engine, not the cache, is measured);
the interesting numbers are the speedup over the 1-shard configuration
and the fraction of non-home shards the ``MINF`` bound prunes.

Two execution backends are measured:

- ``inline`` — the scatter runs in the serving thread.  This isolates
  the *work* story: pruned shards cost nothing, searched shards run
  over right-sized indexes, and threshold propagation lets non-home
  shards terminate after a bound check.  A single unified index is a
  strong baseline (the home shard must re-derive roughly the global
  top-k on its own), so inline throughput stays near 1x — the honest
  single-core reading.
- ``process`` — per-configuration worker processes, ``min(cpus,
  shards)`` wide (one serving process per shard, the deployment shape
  sharding exists for), fork-sharing the built indexes copy-on-write.
  On multi-core hardware this is where shard count buys real
  throughput; on a single core it degrades gracefully to the inline
  story plus IPC overhead.

Drivers back ``python -m repro.bench sharded`` (registered in
:data:`repro.bench.figures.ALL_EXPERIMENTS`) and the standalone
``benchmarks/bench_sharded_scaling.py``, whose acceptance gate requires
the 4-shard configuration to beat 1-shard by >= 1.5x with a nonzero
pruning rate whenever the hardware gives shard parallelism real margin
(>= 4 cores; fewer cores report instead of asserting).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.service_workload import zipf_arrivals
from repro.bench.workloads import get_bundle
from repro.service.model import QueryRequest
from repro.service.service import QueryService
from repro.shard.engine import ShardedGeoSocialEngine
from repro.shard.parallel import ProcessScatterPool

#: shard counts swept by the scaling experiment
SHARD_COUNTS = (1, 2, 4, 8)


@dataclass
class ShardedPoint:
    """One measured shard-count configuration."""

    shards: int
    backend: str
    workers: int
    queries: int
    elapsed: float
    pruned_fraction: float
    shards_searched_per_query: float

    @property
    def qps(self) -> float:
        """Queries served per second."""
        return self.queries / self.elapsed if self.elapsed > 0 else float("inf")


def build_sharded_engine(
    dataset,
    n_shards: int,
    *,
    profile: BenchProfile | None = None,
    landmarks=None,
    normalization=None,
    partitioner_kind: str = "grid",
    max_workers: int = 1,
) -> ShardedGeoSocialEngine:
    """A sharded engine over ``dataset`` sharing pre-built landmark
    tables/normalization (pass the single engine's to skip N rebuilds).
    The grid partitioner's region boundaries respect the spatial
    clustering, which is what makes the MINF bound prune hard."""
    profile = profile or get_profile()
    return ShardedGeoSocialEngine(
        dataset.graph,
        dataset.locations,
        n_shards=n_shards,
        partitioner_kind=partitioner_kind,
        num_landmarks=profile.num_landmarks,
        s=profile.default_s,
        seed=profile.seed,
        landmarks=landmarks,
        normalization=normalization,
        max_workers=max_workers,
    )


def run_sharded_point(
    engine: ShardedGeoSocialEngine,
    arrivals: list[int],
    *,
    backend: str = "inline",
    batch_size: int = 32,
    k: int = 30,
    alpha: float = 0.3,
    method: str = "ais",
) -> ShardedPoint:
    """Serve the arrival sequence in ``batch_size``-sized batches (no
    result cache — the engine is measured) and time it.

    ``backend="inline"`` serves through a fresh
    :class:`~repro.service.QueryService`; ``backend="process"`` fans
    shard searches across ``min(cpus, shards)`` forked workers via
    :class:`~repro.shard.ProcessScatterPool`.
    """
    before = engine.scatter_info()
    workers = 1
    if backend == "inline":
        with QueryService(engine, max_workers=1, cache_size=0) as service:
            requests = [
                QueryRequest(user=user, k=k, alpha=alpha, method=method)
                for user in arrivals
            ]
            start = time.perf_counter()
            for lo in range(0, len(requests), batch_size):
                service.query_many(requests[lo : lo + batch_size])
            elapsed = time.perf_counter() - start
    elif backend == "process":
        workers = max(1, min(os.cpu_count() or 1, engine.n_shards))
        with ProcessScatterPool(engine, processes=workers) as pool:
            start = time.perf_counter()
            for lo in range(0, len(arrivals), batch_size):
                pool.query_many(
                    arrivals[lo : lo + batch_size], k=k, alpha=alpha, method=method
                )
            elapsed = time.perf_counter() - start
    else:
        raise ValueError(f"unknown backend {backend!r}; choose 'inline' or 'process'")
    after = engine.scatter_info()
    scatter = after["scatter_queries"] - before["scatter_queries"]
    considered = after["shards_considered"] - before["shards_considered"]
    searched = after["shards_searched"] - before["shards_searched"]
    prunable = considered - scatter
    return ShardedPoint(
        shards=engine.n_shards,
        backend=backend,
        workers=workers,
        queries=len(arrivals),
        elapsed=elapsed,
        pruned_fraction=(considered - searched) / prunable if prunable > 0 else 0.0,
        shards_searched_per_query=searched / scatter if scatter else 0.0,
    )


def sharded_scaling(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Experiment driver (registered as ``sharded``): queries/sec and
    pruned-shard fraction versus shard count on the Zipf-skewed
    Gowalla-like workload, for both scatter backends."""
    profile = profile or get_profile()
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 25, 100), skew=1.1, seed=profile.seed
    )
    points: list[ShardedPoint] = []
    for n_shards in SHARD_COUNTS:
        engine = build_sharded_engine(
            bundle.dataset,
            n_shards,
            profile=profile,
            landmarks=bundle.engine.landmarks,
            normalization=bundle.engine.normalization,
        )
        try:
            for backend in ("inline", "process"):
                points.append(
                    run_sharded_point(
                        engine,
                        arrivals,
                        backend=backend,
                        k=profile.default_k,
                        alpha=profile.default_alpha,
                    )
                )
        finally:
            engine.close()
    baseline = next(p for p in points if p.shards == 1 and p.backend == "inline")
    table = ExperimentTable(
        "Sharded",
        "Scatter-gather scaling on Zipf-skewed arrivals (Gowalla-like)",
        [
            "Shards",
            "Backend",
            "Workers",
            "Queries",
            "QPS",
            "Speedup",
            "Pruned fraction",
            "Searched/query",
        ],
        notes="speedup is relative to 1 shard inline; pruned fraction "
        "counts non-home shards skipped by the MINF bound; the process "
        "backend runs one worker per shard (capped at the core count)",
    )
    for point in points:
        table.add_row(
            [
                point.shards,
                point.backend,
                point.workers,
                point.queries,
                point.qps,
                point.qps / baseline.qps if baseline.qps else float("inf"),
                point.pruned_fraction,
                point.shards_searched_per_query,
            ]
        )
    return [table]
