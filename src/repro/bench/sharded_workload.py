"""Sharded scatter-gather scaling: throughput and shard pruning versus
shard count on the Zipf-skewed service workload.

Not a paper figure — this benchmarks the sharding layer
(:mod:`repro.shard`) added on top of the reproduction.  Every
configuration serves the *same* Zipf arrival sequence in the same batch
sizes with result caching off (the engine, not the cache, is measured);
the interesting numbers are the speedup over the 1-shard configuration
and the fraction of non-home shards the ``MINF`` bound prunes.

Two execution backends are measured:

- ``inline`` — the scatter runs in the serving thread.  This isolates
  the *work* story: pruned shards cost nothing, searched shards run
  over right-sized indexes, and threshold propagation lets non-home
  shards terminate after a bound check.  A single unified index is a
  strong baseline (the home shard must re-derive roughly the global
  top-k on its own), so inline throughput stays near 1x — the honest
  single-core reading.
- ``process`` — the warm :class:`~repro.shard.ProcessScatterPool`:
  ``min(cpus, shards)`` pinned worker processes (one serving group per
  shard, the deployment shape sharding exists for), fork-sharing the
  built indexes copy-on-write, pre-forked before timing starts, and
  kept warm across the run.  On multi-core hardware this is where
  shard count buys real throughput; on a single core it degrades
  gracefully to the inline story plus IPC overhead.

The **mixed read/update scenario** (:func:`run_sharded_mixed`)
interleaves location updates between serving batches: under the
process backend those updates ride the delta journal to the live
workers, and the scenario records how often the pool had to cold
re-fork instead — the warm-pool acceptance number (must be <= 1; the
expectation is 0).

Drivers back ``python -m repro.bench sharded`` (registered in
:data:`repro.bench.figures.ALL_EXPERIMENTS`) and the standalone
``benchmarks/bench_sharded_scaling.py``, whose acceptance gate
requires the 4-shard configuration to beat 1-shard by >= 3x with a
nonzero pruning rate whenever the hardware gives shard parallelism
real margin (>= 4 cores; fewer cores report instead of asserting),
and writes the tracked ``BENCH_sharded.json`` baseline.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.service_workload import zipf_arrivals
from repro.bench.workloads import get_bundle
from repro.service.model import QueryRequest
from repro.service.service import QueryService
from repro.shard.engine import ShardedGeoSocialEngine
from repro.shard.parallel import ProcessScatterPool

#: shard counts swept by the scaling experiment
SHARD_COUNTS = (1, 2, 4, 8)


@dataclass
class ShardedPoint:
    """One measured shard-count configuration."""

    shards: int
    backend: str
    workers: int
    queries: int
    elapsed: float
    pruned_fraction: float
    shards_searched_per_query: float
    #: location updates interleaved with serving (mixed scenario only)
    updates: int = 0
    #: rounds in which the pool fell back to a cold re-fork (must stay
    #: <= 1 under delta shipping; 0 is the expectation)
    cold_reforks: int = 0
    #: per-worker re-forks the pool performed (0 when deltas sufficed)
    reforks: int = 0
    #: delta records shipped to live workers instead of re-forking
    deltas_shipped: int = 0

    @property
    def qps(self) -> float:
        """Queries served per second."""
        return self.queries / self.elapsed if self.elapsed > 0 else float("inf")


def build_sharded_engine(
    dataset,
    n_shards: int,
    *,
    profile: BenchProfile | None = None,
    landmarks=None,
    normalization=None,
    partitioner_kind: str = "grid",
    max_workers: int = 1,
    copy_locations: bool = False,
) -> ShardedGeoSocialEngine:
    """A sharded engine over ``dataset`` sharing pre-built landmark
    tables/normalization (pass the single engine's to skip N rebuilds).
    The grid partitioner's region boundaries respect the spatial
    clustering, which is what makes the MINF bound prune hard.

    ``copy_locations=True`` gives the engine a private
    :class:`~repro.engine.LocationTable` copy so a mutating scenario
    (the mixed read/update leg) cannot corrupt the shared bundle.

    The engine is pinned to ``scatter_backend="inline"``: the benchmark
    measures each backend explicitly (inline via the service, process
    via its own :class:`~repro.shard.ProcessScatterPool`), so the
    engine's auto-resolution must not fork a second, unmeasured pool.
    """
    profile = profile or get_profile()
    locations = dataset.locations.copy() if copy_locations else dataset.locations
    return ShardedGeoSocialEngine(
        dataset.graph,
        locations,
        n_shards=n_shards,
        scatter_backend="inline",
        partitioner_kind=partitioner_kind,
        num_landmarks=profile.num_landmarks,
        s=profile.default_s,
        seed=profile.seed,
        landmarks=landmarks,
        normalization=normalization,
        max_workers=max_workers,
    )


def run_sharded_point(
    engine: ShardedGeoSocialEngine,
    arrivals: list[int],
    *,
    backend: str = "inline",
    batch_size: int = 32,
    k: int = 30,
    alpha: float = 0.3,
    method: str = "ais",
) -> ShardedPoint:
    """Serve the arrival sequence in ``batch_size``-sized batches (no
    result cache — the engine is measured) and time it.

    ``backend="inline"`` serves through a fresh
    :class:`~repro.service.QueryService`; ``backend="process"`` fans
    shard searches across ``min(cpus, shards)`` forked workers via
    :class:`~repro.shard.ProcessScatterPool`.  The pool is pre-forked
    and pinged (:meth:`~repro.shard.ProcessScatterPool.warm_up`)
    *before* the clock starts — fork latency is a deployment one-off,
    not a serving cost.
    """
    before = engine.scatter_info()
    workers = 1
    if backend == "inline":
        with QueryService(engine, max_workers=1, cache_size=0) as service:
            requests = [
                QueryRequest(user=user, k=k, alpha=alpha, method=method)
                for user in arrivals
            ]
            start = time.perf_counter()
            for lo in range(0, len(requests), batch_size):
                service.query_many(requests[lo : lo + batch_size])
            elapsed = time.perf_counter() - start
    elif backend == "process":
        workers = max(1, min(os.cpu_count() or 1, engine.n_shards))
        with ProcessScatterPool(engine, processes=workers) as pool:
            pool.warm_up()
            start = time.perf_counter()
            for lo in range(0, len(arrivals), batch_size):
                pool.query_many(
                    arrivals[lo : lo + batch_size], k=k, alpha=alpha, method=method
                )
            elapsed = time.perf_counter() - start
    else:
        raise ValueError(f"unknown backend {backend!r}; choose 'inline' or 'process'")
    after = engine.scatter_info()
    scatter = after["scatter_queries"] - before["scatter_queries"]
    considered = after["shards_considered"] - before["shards_considered"]
    searched = after["shards_searched"] - before["shards_searched"]
    prunable = considered - scatter
    return ShardedPoint(
        shards=engine.n_shards,
        backend=backend,
        workers=workers,
        queries=len(arrivals),
        elapsed=elapsed,
        pruned_fraction=(considered - searched) / prunable if prunable > 0 else 0.0,
        shards_searched_per_query=searched / scatter if scatter else 0.0,
    )


def run_sharded_mixed(
    engine: ShardedGeoSocialEngine,
    arrivals: list[int],
    *,
    backend: str = "inline",
    batch_size: int = 32,
    k: int = 30,
    alpha: float = 0.3,
    method: str = "ais",
    moves_per_batch: int = 4,
    replicas: int = 1,
    seed: int = 0,
) -> ShardedPoint:
    """Mixed read/update workload on a warm pool: between consecutive
    serving batches, jitter ``moves_per_batch`` located users' positions
    through :meth:`~repro.shard.ShardedGeoSocialEngine.move_user`.

    Under the process backend the updates reach the already-forked
    workers as delta batches over the task pipes; the returned point's
    ``cold_reforks``/``reforks``/``deltas_shipped`` counters make the
    warm-pool claim checkable — a healthy run ships every update as
    deltas and never cold re-forks.  The update schedule is seeded, so
    the inline and process legs traverse identical engine states and
    their timings stay comparable.

    The caller must hand each leg a *private* engine
    (``build_sharded_engine(..., copy_locations=True)``): the moves
    mutate the location table.
    """
    rng = random.Random(seed)
    located = sorted(engine.locations.located_users())
    box = engine.locations.bbox()
    span_x = box.width or 1.0
    span_y = (box.maxy - box.miny) or 1.0

    def apply_moves() -> int:
        moved = 0
        for _ in range(moves_per_batch):
            user = rng.choice(located)
            point = engine.locations.get(user)
            if point is None:
                continue
            x, y = point
            engine.move_user(
                user,
                min(box.maxx, max(box.minx, x + rng.uniform(-0.05, 0.05) * span_x)),
                min(box.maxy, max(box.miny, y + rng.uniform(-0.05, 0.05) * span_y)),
            )
            moved += 1
        return moved

    before = engine.scatter_info()
    workers = 1
    updates = 0
    cold_reforks = reforks = deltas_shipped = 0
    if backend == "inline":
        with QueryService(engine, max_workers=1, cache_size=0) as service:
            start = time.perf_counter()
            for lo in range(0, len(arrivals), batch_size):
                if lo:
                    updates += apply_moves()
                service.query_many(
                    [
                        QueryRequest(user=user, k=k, alpha=alpha, method=method)
                        for user in arrivals[lo : lo + batch_size]
                    ]
                )
            elapsed = time.perf_counter() - start
    elif backend == "process":
        workers = max(1, min(os.cpu_count() or 1, engine.n_shards))
        with ProcessScatterPool(engine, processes=workers, replicas=replicas) as pool:
            pool.warm_up()
            start = time.perf_counter()
            for lo in range(0, len(arrivals), batch_size):
                if lo:
                    updates += apply_moves()
                pool.query_many(
                    arrivals[lo : lo + batch_size], k=k, alpha=alpha, method=method
                )
            elapsed = time.perf_counter() - start
            info = pool.info()
            cold_reforks = info["cold_refork_rounds"]
            reforks = info["reforks"]
            deltas_shipped = info["deltas_shipped"]
    else:
        raise ValueError(f"unknown backend {backend!r}; choose 'inline' or 'process'")
    after = engine.scatter_info()
    scatter = after["scatter_queries"] - before["scatter_queries"]
    considered = after["shards_considered"] - before["shards_considered"]
    searched = after["shards_searched"] - before["shards_searched"]
    prunable = considered - scatter
    return ShardedPoint(
        shards=engine.n_shards,
        backend=backend,
        workers=workers,
        queries=len(arrivals),
        elapsed=elapsed,
        pruned_fraction=(considered - searched) / prunable if prunable > 0 else 0.0,
        shards_searched_per_query=searched / scatter if scatter else 0.0,
        updates=updates,
        cold_reforks=cold_reforks,
        reforks=reforks,
        deltas_shipped=deltas_shipped,
    )


def sharded_scaling(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """Experiment driver (registered as ``sharded``): queries/sec and
    pruned-shard fraction versus shard count on the Zipf-skewed
    Gowalla-like workload, for both scatter backends."""
    profile = profile or get_profile()
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 25, 100), skew=1.1, seed=profile.seed
    )
    points: list[ShardedPoint] = []
    for n_shards in SHARD_COUNTS:
        engine = build_sharded_engine(
            bundle.dataset,
            n_shards,
            profile=profile,
            landmarks=bundle.engine.landmarks,
            normalization=bundle.engine.normalization,
        )
        try:
            for backend in ("inline", "process"):
                points.append(
                    run_sharded_point(
                        engine,
                        arrivals,
                        backend=backend,
                        k=profile.default_k,
                        alpha=profile.default_alpha,
                    )
                )
        finally:
            engine.close()
    baseline = next(p for p in points if p.shards == 1 and p.backend == "inline")
    table = ExperimentTable(
        "Sharded",
        "Scatter-gather scaling on Zipf-skewed arrivals (Gowalla-like)",
        [
            "Shards",
            "Backend",
            "Workers",
            "Queries",
            "QPS",
            "Speedup",
            "Pruned fraction",
            "Searched/query",
        ],
        notes="speedup is relative to 1 shard inline; pruned fraction "
        "counts non-home shards skipped by the MINF bound; the process "
        "backend runs one worker per shard (capped at the core count)",
    )
    for point in points:
        table.add_row(
            [
                point.shards,
                point.backend,
                point.workers,
                point.queries,
                point.qps,
                point.qps / baseline.qps if baseline.qps else float("inf"),
                point.pruned_fraction,
                point.shards_searched_per_query,
            ]
        )
    mixed_table = ExperimentTable(
        "Sharded mixed",
        "Warm pool under a mixed read/update stream (4 shards)",
        [
            "Backend",
            "Queries",
            "Updates",
            "QPS",
            "Cold re-forks",
            "Re-forks",
            "Deltas shipped",
        ],
        notes="location updates interleave with serving batches; under "
        "the process backend they ship to the live workers as delta "
        "batches — cold re-forks must stay <= 1 (0 expected)",
    )
    for backend in ("inline", "process"):
        engine = build_sharded_engine(
            bundle.dataset,
            4,
            profile=profile,
            landmarks=bundle.engine.landmarks,
            normalization=bundle.engine.normalization,
            copy_locations=True,
        )
        try:
            point = run_sharded_mixed(
                engine,
                arrivals,
                backend=backend,
                k=profile.default_k,
                alpha=profile.default_alpha,
                seed=profile.seed,
            )
        finally:
            engine.close()
        mixed_table.add_row(
            [
                point.backend,
                point.queries,
                point.updates,
                point.qps,
                point.cold_reforks,
                point.reforks,
                point.deltas_shipped,
            ]
        )
    return [table, mixed_table]
