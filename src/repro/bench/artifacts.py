"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

Every benchmark run — pytest-benchmark suites and standalone scripts
alike — writes a small JSON file next to the working directory (or
under ``REPRO_BENCH_JSON_DIR``), so the performance trajectory is
trackable across PRs with plain tooling instead of parsing stdout:

- standalone scripts (``bench_kernels.py``, ``bench_planner_regret.py``,
  …) call :func:`write_bench_json` from their ``main()`` with their
  workload parameters, medians, and speedups;
- pytest runs are harvested by ``benchmarks/conftest.py``: an autouse
  fixture collects every measured pytest-benchmark case per bench
  module and a session-finish hook writes one ``BENCH_<module>.json``
  each.

The envelope is stable: ``bench`` (name), ``profile`` (active scale
profile), ``backend``, and the caller's payload.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path


def bench_json_path(name: str, directory: "str | os.PathLike | None" = None) -> Path:
    """Where ``BENCH_<name>.json`` lands: explicit ``directory`` >
    ``REPRO_BENCH_JSON_DIR`` > the current working directory."""
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_JSON_DIR", ".")
    return Path(directory) / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    payload: dict,
    directory: "str | os.PathLike | None" = None,
) -> Path:
    """Write one benchmark artifact and return its path.

        >>> from repro.bench.artifacts import write_bench_json
        >>> import json, tempfile, os
        >>> with tempfile.TemporaryDirectory() as tmp:
        ...     path = write_bench_json("doctest", {"speedup": 2.0}, tmp)
        ...     data = json.loads(path.read_text())
        ...     path.name, data["bench"], data["speedup"]
        ('BENCH_doctest.json', 'doctest', 2.0)
    """
    from repro.bench.config import get_profile

    try:
        profile = get_profile().name
    except ValueError:  # unknown REPRO_BENCH_PROFILE: record it verbatim
        profile = os.environ.get("REPRO_BENCH_PROFILE", "unknown")
    envelope = {
        "bench": name,
        "profile": profile,
        "backend": os.environ.get("REPRO_BACKEND", "auto"),
        "python": platform.python_version(),
        "generated_unix": int(time.time()),
    }
    envelope.update(payload)
    path = bench_json_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")
    return path


def tables_payload(tables) -> dict:
    """Serialize :class:`~repro.bench.reporting.ExperimentTable` rows
    into an artifact payload (one entry per table)."""
    return {
        "tables": [
            {
                "experiment": t.experiment,
                "title": t.title,
                "headers": list(t.headers),
                "rows": [list(row) for row in t.rows],
                "notes": t.notes,
            }
            for t in tables
        ]
    }
