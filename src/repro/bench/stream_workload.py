"""Stream-maintenance workload: standing queries under a mostly-stable
Zipf update stream.

The production scenario behind :mod:`repro.stream`: a fleet of
standing queries (hot users watching their top-k companions) while the
whole population reports location updates.  Most updates come from
users far away from every standing query — the *mostly-stable* regime
— so the registry's NO-OP screen discharges them in O(1), a few repair,
and only a handful recompute.

The baseline is *recompute-per-update*: without incremental
maintenance, a continuous-query server keeps results current by
re-running every standing query after every update.  The benchmark
reports the amortized per-update cost of both and their speedup, and
verifies at the end that the maintained results equal the baseline's
(fresh) ones.

Backs ``benchmarks/bench_stream_maintenance.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.config import BenchProfile, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.service_workload import zipf_arrivals
from repro.core.engine import GeoSocialEngine
from repro.datasets.synthetic import gowalla_like
from repro.service.service import QueryService
from repro.stream.registry import SubscriptionRegistry
from repro.utils.rng import make_rng


@dataclass
class StreamPoint:
    """One measured maintenance configuration.

        >>> from repro.bench.stream_workload import StreamPoint
        >>> point = StreamPoint("maintained", updates=100, seconds=0.5,
        ...                     noops=90, repairs=8, recomputes=2)
        >>> round(point.per_update_ms, 1)
        5.0
    """

    label: str
    updates: int
    seconds: float
    noops: int = 0
    repairs: int = 0
    recomputes: int = 0

    @property
    def per_update_ms(self) -> float:
        """Amortized milliseconds per update (maintenance + reads)."""
        return (self.seconds / self.updates) * 1e3 if self.updates else 0.0


def _build_update_stream(engine, subs, count: int, seed: int):
    """A mostly-stable stream: Zipf-weighted movers, mostly small
    jitter far from the standing queries, occasionally a member or a
    teleport (the updates that force repairs/recomputes)."""
    rng = make_rng(seed)
    population = list(range(engine.graph.n))
    watched = {sub.user for sub in subs}
    for sub in subs:
        watched.update(sub.result.users if sub.result is not None else ())
    cold = [u for u in population if u not in watched]
    arrivals = zipf_arrivals(cold, count=count, skew=1.05, seed=seed + 1)
    hot = sorted(watched)
    stream = []
    for i, mover in enumerate(arrivals):
        roll = rng.random()
        if roll < 0.05 and hot:  # a watched user moves: repair/recompute
            mover = rng.choice(hot)
        location = engine.locations.get(mover)
        if location is None or roll >= 0.92:
            x, y = rng.random(), rng.random()  # (re)appear anywhere
        else:
            x = min(1.0, max(0.0, location[0] + rng.uniform(-0.01, 0.01)))
            y = min(1.0, max(0.0, location[1] + rng.uniform(-0.01, 0.01)))
        stream.append((mover, x, y))
    return stream


def run_stream_point(
    *,
    n: int = 1500,
    n_subs: int = 12,
    updates: int = 200,
    read_every: int = 10,
    k: int = 10,
    alpha: float = 0.3,
    method: str = "tsa",
    seed: int = 99,
) -> tuple[StreamPoint, StreamPoint, bool]:
    """Measure maintained vs recompute-per-update on one dataset.

    Returns ``(maintained, baseline, results_equal)`` where
    ``results_equal`` verifies the maintained results match the
    baseline's final fresh recomputes exactly.
    """
    dataset = gowalla_like(n=n, seed=seed)
    # Two engines over identical data (the streams mutate locations, so
    # each run owns its copy); shared normalization keeps scores equal.
    maintained_engine = GeoSocialEngine(
        dataset.graph, dataset.locations.copy(), num_landmarks=4, s=6, seed=seed
    )
    baseline_engine = GeoSocialEngine(
        dataset.graph,
        dataset.locations.copy(),
        num_landmarks=4,
        s=6,
        seed=seed,
        landmarks=maintained_engine.landmarks,
        normalization=maintained_engine.normalization,
    )
    located = list(maintained_engine.locations.located_users())
    query_users = zipf_arrivals(located, count=n_subs * 4, skew=1.2, seed=seed)
    query_users = list(dict.fromkeys(query_users))[:n_subs]

    service = QueryService(maintained_engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    subs = [registry.subscribe(u, k=k, alpha=alpha, method=method) for u in query_users]
    stream = _build_update_stream(maintained_engine, subs, updates, seed)
    # Baseline the counters after the initial subscribe-time fills, so
    # the reported mix covers stream maintenance only.
    stats = registry.stats
    base_noops, base_repairs, base_recomputes = (
        stats.noops,
        stats.repairs_applied,
        stats.recomputes_applied,
    )

    # --- maintained: classify every update, read on a cadence -------
    start = time.perf_counter()
    for i, (mover, x, y) in enumerate(stream):
        service.move_user(mover, x, y)
        if (i + 1) % read_every == 0:
            registry.flush()
    maintained_results = {sub.user: registry.result(sub) for sub in subs}
    maintained_seconds = time.perf_counter() - start
    maintained = StreamPoint(
        "maintained",
        updates=len(stream),
        seconds=maintained_seconds,
        noops=stats.noops - base_noops,
        repairs=stats.repairs_applied - base_repairs,
        recomputes=stats.recomputes_applied - base_recomputes,
    )

    # --- baseline: recompute every standing query on every update ---
    start = time.perf_counter()
    baseline_results = {}
    for mover, x, y in stream:
        baseline_engine.move_user(mover, x, y)
        for user in query_users:
            baseline_results[user] = baseline_engine.query(user, k, alpha, method)
    baseline_seconds = time.perf_counter() - start
    baseline = StreamPoint(
        "recompute-per-update",
        updates=len(stream),
        seconds=baseline_seconds,
        recomputes=len(stream) * len(query_users),
    )

    equal = all(
        [(nb.user, nb.score) for nb in maintained_results[user]]
        == [(nb.user, nb.score) for nb in baseline_results[user]]
        for user in query_users
    )
    registry.close()
    service.close()
    maintained_engine.close()
    baseline_engine.close()
    return maintained, baseline, equal


def stream_maintenance(profile: BenchProfile | None = None) -> list[ExperimentTable]:
    """The ``stream`` experiment: amortized maintenance cost vs the
    recompute-per-update baseline on a mostly-stable Zipf workload."""
    profile = profile if profile is not None else get_profile()
    scale = {"smoke": (500, 6, 60), "quick": (1500, 12, 200)}.get(
        profile.name, (3000, 16, 300)
    )
    n, n_subs, updates = scale
    maintained, baseline, equal = run_stream_point(
        n=n,
        n_subs=n_subs,
        updates=updates,
        k=profile.default_k if profile.name != "smoke" else 10,
        alpha=profile.default_alpha,
        seed=profile.seed,
    )
    table = ExperimentTable(
        experiment="stream",
        title=(
            f"continuous top-k maintenance, {n_subs} subscriptions, "
            f"{updates} updates (n={n})"
        ),
        headers=[
            "Strategy",
            "ms/update",
            "NO-OP",
            "Repairs",
            "Recomputes",
            "Speedup",
        ],
        notes="maintained results verified equal to recompute-per-update"
        if equal
        else "WARNING: maintained results diverged from the baseline",
    )
    speedup = baseline.seconds / max(maintained.seconds, 1e-12)
    table.add_row(
        [baseline.label, baseline.per_update_ms, 0, 0, baseline.recomputes, 1.0]
    )
    table.add_row(
        [
            maintained.label,
            maintained.per_update_ms,
            maintained.noops,
            maintained.repairs,
            maintained.recomputes,
            speedup,
        ]
    )
    return [table]
