"""Contraction Hierarchies (CH) — the comparator of Figure 8.

The paper compares its incremental-Dijkstra distance modules against the
state-of-the-art pre-computation technique CH (its reference [44]) and
finds CH *slower* on social networks, because (i) CH favours low-degree,
near-planar graphs and (ii) the paper's methods share one incremental
search across all distance computations from ``v_q``.  Reproducing that
comparison requires an actual CH implementation, provided here.

**Preprocessing** contracts vertices in importance order (lazy
priorities: edge-difference estimate + deleted neighbours, refreshed
only when a neighbour was contracted since the last evaluation),
inserting shortcuts whenever a limited *witness search* cannot prove a
bypass exists.  Limited witness searches only ever add extra shortcuts,
never omit needed ones, so correctness is preserved.

**Core.**  Social networks densify catastrophically toward the end of
contraction — hub vertices accumulate shortcuts until every contraction
is quadratic.  Following the standard *core-CH* construction, vertices
whose remaining degree exceeds ``core_degree_limit`` are never
contracted; they form an uncontracted top *core* in which both query
searches may travel freely.  This keeps preprocessing near-linear while
remaining exact — and it faithfully exposes why CH degenerates on such
graphs: queries decay toward a Dijkstra over the dense core.

**Query**: bidirectional upward search; upward edges lead to
higher-ranked vertices, and core vertices (all of maximal rank) keep
their full remaining adjacency, so the searches can meet anywhere on the
peak of an up-(core-)down path.
"""

from __future__ import annotations

import heapq
import math

from repro.graph.socialgraph import SocialGraph
from repro.utils.heaps import MinHeap
from repro.utils.rng import make_rng

INF = math.inf


def _witness_search(
    adj: list[dict[int, float]],
    source: int,
    excluded: int,
    targets: set[int],
    cutoff: float,
    settle_limit: int,
) -> dict[int, float]:
    """Limited Dijkstra from ``source`` over the remaining graph,
    never entering ``excluded``; returns settled distances for vertices
    in ``targets`` (possibly incomplete — callers treat absence as
    'no witness found')."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    settled: set[int] = set()
    found: dict[int, float] = {}
    remaining = len(targets)
    budget = settle_limit
    while heap and remaining > 0 and budget > 0:
        d, x = heapq.heappop(heap)
        if x in settled:
            continue
        settled.add(x)
        budget -= 1
        if x in targets:
            found[x] = d
            remaining -= 1
        if d > cutoff:
            break
        for y, w in adj[x].items():
            if y == excluded or y in settled:
                continue
            nd = d + w
            if nd <= cutoff and nd < dist.get(y, INF):
                dist[y] = nd
                heapq.heappush(heap, (nd, y))
    return found


class ContractionHierarchy:
    """Preprocessed hierarchy supporting exact point-to-point distances."""

    __slots__ = ("n", "rank", "upward", "num_shortcuts", "core_size")

    def __init__(
        self,
        n: int,
        rank: list[int],
        upward: list[list[tuple[int, float]]],
        num_shortcuts: int,
        core_size: int,
    ) -> None:
        self.n = n
        #: contraction order (0 = contracted first; core vertices share
        #: the maximal rank ``n``)
        self.rank = rank
        #: upward adjacency: edges toward weakly-higher-ranked vertices
        self.upward = upward
        self.num_shortcuts = num_shortcuts
        #: number of uncontracted (core) vertices
        self.core_size = core_size

    # -- preprocessing -----------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        witness_settle_limit: int = 40,
        core_degree_limit: int = 48,
        priority_sample: int = 40,
        seed: int = 0,
    ) -> "ContractionHierarchy":
        """Contract the graph bottom-up.  Undirected graphs only (the
        paper's setting).

        ``core_degree_limit`` bounds the remaining degree at which a
        vertex is still contracted; set it to ``n`` to force full
        contraction (tiny graphs / tests).
        """
        if graph.directed:
            raise NotImplementedError("CH preprocessing implemented for undirected graphs")
        n = graph.n
        rng = make_rng(seed)
        adj = graph.to_adjacency()
        rank = [n] * n  # default: core tier
        upward: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        deleted_neighbors = [0] * n
        version = [0] * n  # bumped when a neighbour contracts
        num_shortcuts = 0

        def priority(v: int) -> float:
            """Edge difference (sampled above ``priority_sample`` pairs)
            plus deleted-neighbour tie-breaking."""
            nbrs = list(adj[v])
            deg = len(nbrs)
            pairs = deg * (deg - 1) // 2
            if pairs == 0:
                missing = 0
            elif pairs <= priority_sample:
                missing = 0
                for i, u in enumerate(nbrs):
                    au = adj[u]
                    for w in nbrs[i + 1 :]:
                        if w not in au:
                            missing += 1
            else:
                hits = 0
                for _ in range(priority_sample):
                    u, w = rng.sample(nbrs, 2)
                    if w not in adj[u]:
                        hits += 1
                missing = hits * pairs // priority_sample
            return (missing - deg) + 2.0 * deleted_neighbors[v]

        heap = [(priority(v), version[v], v) for v in range(n)]
        heapq.heapify(heap)
        order = 0
        contracted = [False] * n
        while heap:
            p, ver, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            if ver != version[v]:
                # A neighbour contracted since evaluation: refresh lazily.
                heapq.heappush(heap, (priority(v), version[v], v))
                continue
            nbrs = sorted(adj[v].items())
            if len(nbrs) > core_degree_limit:
                continue  # joins the core: never contracted, never re-pushed
            # Contract v.
            contracted[v] = True
            rank[v] = order
            order += 1
            upward[v] = [(u, w) for u, w in nbrs]
            for u, _ in nbrs:
                del adj[u][v]
                deleted_neighbors[u] += 1
                version[u] += 1
            for i, (u, wu) in enumerate(nbrs):
                rest = nbrs[i + 1 :]
                if not rest:
                    continue
                targets = {w for w, _ in rest}
                cutoff = wu + max(ww for _, ww in rest)
                witness = _witness_search(adj, u, v, targets, cutoff, witness_settle_limit)
                au = adj[u]
                for w, ww in rest:
                    via = wu + ww
                    if witness.get(w, INF) <= via:
                        continue  # a bypass at most as long exists
                    old = au.get(w)
                    if old is None or via < old:
                        if old is None:
                            num_shortcuts += 1
                        au[w] = via
                        adj[w][u] = via
            adj[v].clear()

        # Core vertices keep their full remaining adjacency (traversable
        # by both searches: all core edges are weakly upward).
        core_size = 0
        for v in range(n):
            if not contracted[v]:
                core_size += 1
                upward[v] = sorted(adj[v].items())
        return cls(n, rank, upward, num_shortcuts, core_size)

    # -- queries --------------------------------------------------------------

    def upward_distances(self, source: int, heap: MinHeap | None = None) -> dict[int, float]:
        """Complete upward search space of ``source``: every vertex
        reachable by weakly-rank-increasing edges, with its distance.

        Many-targets-one-source callers (the SSRQ ``*-CH`` variants)
        compute this once and reuse it via :meth:`distance_from`.
        """
        upward = self.upward
        dist: dict[int, float] = {source: 0.0}
        settled: set[int] = set()
        hp = [(0.0, source)]
        pops = 0
        while hp:
            d, v = heapq.heappop(hp)
            pops += 1
            if v in settled:
                continue
            settled.add(v)
            for u, w in upward[v]:
                nd = d + w
                if nd < dist.get(u, INF):
                    dist[u] = nd
                    heapq.heappush(hp, (nd, u))
        if heap is not None:
            heap.pops += pops
        return dist

    def distance_from(
        self,
        forward: dict[int, float],
        source: int,
        target: int,
        heap: MinHeap | None = None,
    ) -> float:
        """Exact distance given the pre-computed forward search space of
        ``source`` (see :meth:`upward_distances`): only the backward
        upward search from ``target`` runs, pruned by the best meeting
        found so far."""
        if source == target:
            return 0.0
        upward = self.upward
        best = forward.get(target, INF)
        dist_b: dict[int, float] = {target: 0.0}
        settled: set[int] = set()
        hp = [(0.0, target)]
        pops = 0
        while hp:
            key = hp[0][0]
            if best <= key:
                break
            d, v = heapq.heappop(hp)
            pops += 1
            if v in settled:
                continue
            settled.add(v)
            fv = forward.get(v)
            if fv is not None and d + fv < best:
                best = d + fv
            for u, w in upward[v]:
                nd = d + w
                if nd < dist_b.get(u, INF) and nd < best:
                    dist_b[u] = nd
                    heapq.heappush(hp, (nd, u))
        if heap is not None:
            heap.pops += pops
        return best

    def distance(self, source: int, target: int, heap: MinHeap | None = None) -> float:
        """Exact distance via bidirectional upward search.

        An optional shared ``heap`` collects pop statistics; internally
        two heaps are used, so pops are added to it instead.
        """
        if source == target:
            return 0.0
        upward = self.upward
        best = INF
        dist_f: dict[int, float] = {source: 0.0}
        dist_b: dict[int, float] = {target: 0.0}
        heap_f = [(0.0, source)]
        heap_b = [(0.0, target)]
        settled_f: set[int] = set()
        settled_b: set[int] = set()
        pops = 0
        while heap_f or heap_b:
            key_f = heap_f[0][0] if heap_f else INF
            key_b = heap_b[0][0] if heap_b else INF
            if best <= key_f and best <= key_b:
                break
            if key_f <= key_b:
                hp, settled, dist, other_dist = heap_f, settled_f, dist_f, dist_b
            else:
                hp, settled, dist, other_dist = heap_b, settled_b, dist_b, dist_f
            d, v = heapq.heappop(hp)
            pops += 1
            if v in settled:
                continue
            settled.add(v)
            od = other_dist.get(v)
            if od is not None and d + od < best:
                best = d + od
            for u, w in upward[v]:
                nd = d + w
                if nd < dist.get(u, INF) and nd < best:
                    dist[u] = nd
                    heapq.heappush(hp, (nd, u))
        if heap is not None:
            heap.pops += pops
        return best
