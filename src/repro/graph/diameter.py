"""Graph diameter estimation for the social normaliser ``P_max``.

The ranking function divides social distance by the maximum pairwise
graph distance (paper Section 3.1).  Computing the exact weighted
diameter is quadratic; the classic *double sweep* gives a tight lower
bound in a handful of Dijkstra runs and is the standard estimator for
this purpose.  Because ``P_max`` is only a fixed normalising constant
shared by every algorithm, a consistent estimate preserves all rankings.
"""

from __future__ import annotations

import math

from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from repro.utils.rng import make_rng

INF = math.inf


def _farthest(graph: SocialGraph, source: int) -> tuple[int, float]:
    """Reachable vertex maximising distance from ``source`` (ties broken
    by id for determinism)."""
    dist = dijkstra_distances(graph, source)
    best_v, best_d = source, 0.0
    for v in sorted(dist):
        d = dist[v]
        if d != INF and d > best_d:
            best_v, best_d = v, d
    return best_v, best_d


def double_sweep_diameter(graph: SocialGraph, sweeps: int = 2, seed: int = 0) -> float:
    """Double-sweep lower bound on the weighted diameter.

    Runs ``sweeps`` independent sweeps (each: Dijkstra from a random
    start, then Dijkstra from the farthest vertex found) and returns the
    largest eccentricity observed.  Returns 0 for edgeless graphs.
    """
    if graph.n == 0:
        return 0.0
    rng = make_rng(seed)
    best = 0.0
    for _ in range(max(1, sweeps)):
        start = rng.randrange(graph.n)
        far, _ = _farthest(graph, start)
        _, ecc = _farthest(graph, far)
        if ecc > best:
            best = ecc
    return best
