"""Incremental landmark-table maintenance under edge updates.

Section 5.1 of the paper notes that updates to the social graph ``G``
are far rarer than location updates and can be absorbed by *batching in
conjunction with dynamic shortest path algorithms, so that landmark
information can be incrementally maintained* (its references [38, 39]).
This module implements that maintenance: each landmark's distance row is
a shortest-path tree, repaired in place when an edge is inserted,
deleted, or re-weighted.

- **Decrease / insertion** — ripple relaxation: seed a Dijkstra from the
  endpoints whose distance improved.
- **Increase / deletion** — two phases: (1) collect the (conservative)
  affected region by walking shortest-path-DAG descendants of the
  changed edge; (2) reset it and re-relax from its non-affected
  boundary.

Both repairs touch work proportional to the affected region, not the
whole graph, and are property-tested against full recomputation.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable

from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph

INF = math.inf


def _ripple_decrease(adj: list[dict[int, float]], dist: list[float], seeds: list[int]) -> int:
    """Propagate distance decreases outward from ``seeds``; returns the
    number of vertices whose distance changed."""
    heap = [(dist[s], s) for s in seeds]
    heapq.heapify(heap)
    changed = 0
    while heap:
        d, x = heapq.heappop(heap)
        if d > dist[x]:
            continue  # stale
        for y, w in adj[x].items():
            nd = d + w
            if nd < dist[y]:
                dist[y] = nd
                changed += 1
                heapq.heappush(heap, (nd, y))
    return changed


def _collect_affected(
    adj: list[dict[int, float]], dist: list[float], roots: list[int]
) -> set[int]:
    """Vertices whose shortest path may have used the removed/worsened
    edge: SP-DAG descendants of ``roots`` (conservative — equal-length
    alternative paths are re-verified rather than analysed)."""
    affected = set(roots)
    queue = deque(roots)
    while queue:
        x = queue.popleft()
        dx = dist[x]
        for y, w in adj[x].items():
            if y not in affected and dist[y] == dx + w:
                affected.add(y)
                queue.append(y)
    return affected


def _repair_increase(adj: list[dict[int, float]], dist: list[float], affected: set[int]) -> None:
    """Recompute distances inside ``affected`` from its boundary."""
    heap = []
    for y in affected:
        best = INF
        for x, w in adj[y].items():
            if x not in affected:
                d = dist[x] + w
                if d < best:
                    best = d
        dist[y] = best
        if best != INF:
            heap.append((best, y))
    heapq.heapify(heap)
    settled: set[int] = set()
    while heap:
        d, x = heapq.heappop(heap)
        if x in settled or d > dist[x]:
            continue
        settled.add(x)
        for y, w in adj[x].items():
            if y in affected and y not in settled:
                nd = d + w
                if nd < dist[y]:
                    dist[y] = nd
                    heapq.heappush(heap, (nd, y))


class DynamicLandmarkTables:
    """Mutable companion to a :class:`LandmarkIndex`.

    Holds an adjacency-dict copy of the (undirected) graph and repairs
    every landmark row on each :meth:`update_edge` call.  A rebuilt CSR
    snapshot of the current topology is available via :meth:`snapshot`.

    Downstream components that derive state from social distances (most
    prominently the service layer's result cache) can subscribe via
    :meth:`add_update_listener`; every listener is called *after* the
    landmark tables have been repaired, with the same ``(u, v, weight)``
    arguments the update was applied with.
    """

    def __init__(self, graph: SocialGraph, landmarks: LandmarkIndex) -> None:
        if graph.directed:
            raise NotImplementedError("dynamic maintenance implemented for undirected graphs")
        self.adj = graph.to_adjacency()
        self.n = graph.n
        self.landmarks = landmarks
        self.updates_applied = 0
        self._listeners: list[Callable[[int, int, float | None], None]] = []

    # -- invalidation hooks -------------------------------------------

    def add_update_listener(self, listener: Callable[[int, int, float | None], None]) -> None:
        """Subscribe ``listener(u, v, weight)`` to every applied edge
        update (called after landmark repair; ``weight is None`` means
        the edge was deleted)."""
        self._listeners.append(listener)

    def remove_update_listener(self, listener: Callable[[int, int, float | None], None]) -> None:
        """Unsubscribe a previously added listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def update_edge(self, u: int, v: int, weight: float | None) -> None:
        """Insert, re-weight (``weight`` > 0) or delete (``weight is
        None``) the undirected edge ``(u, v)`` and repair all tables."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if weight is not None and weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        old = self.adj[u].get(v)
        if weight is None and old is None:
            raise KeyError(f"edge ({u}, {v}) does not exist")

        if weight is not None and (old is None or weight < old):
            self._apply_decrease(u, v, weight)
        elif weight is not None and weight > old:
            self._apply_increase(u, v, weight)
        elif weight is None:
            self._apply_increase(u, v, None)
        # weight == old: no-op
        self.updates_applied += 1
        for listener in list(self._listeners):
            listener(u, v, weight)

    def _apply_decrease(self, u: int, v: int, weight: float) -> None:
        self.adj[u][v] = weight
        self.adj[v][u] = weight
        for dist in self.landmarks.dist:
            seeds = []
            if dist[u] + weight < dist[v]:
                dist[v] = dist[u] + weight
                seeds.append(v)
            if dist[v] + weight < dist[u]:
                dist[u] = dist[v] + weight
                seeds.append(u)
            if seeds:
                _ripple_decrease(self.adj, dist, seeds)

    def _apply_increase(self, u: int, v: int, weight: float | None) -> None:
        old = self.adj[u][v]
        # Determine, per landmark, which endpoint's tree may break.
        roots_per_row: list[list[int]] = []
        for dist in self.landmarks.dist:
            roots = []
            if dist[v] == dist[u] + old:
                roots.append(v)
            if dist[u] == dist[v] + old:
                roots.append(u)
            roots_per_row.append(roots)
        if weight is None:
            del self.adj[u][v]
            del self.adj[v][u]
        else:
            self.adj[u][v] = weight
            self.adj[v][u] = weight
        for dist, roots in zip(self.landmarks.dist, roots_per_row):
            if not roots:
                continue
            affected = _collect_affected(self.adj, dist, roots)
            _repair_increase(self.adj, dist, affected)

    def snapshot(self) -> SocialGraph:
        """CSR graph reflecting every update applied so far."""
        return SocialGraph.from_adjacency(self.adj, directed=False)
