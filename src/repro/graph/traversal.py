"""Dijkstra search, resumable iteration, and path utilities.

The central object is :class:`DijkstraIterator`, a *pausable* Dijkstra
expansion from a fixed source.  Paused-and-resumed expansion is what the
paper's methods lean on throughout:

- SFA consumes it directly as a stream of users in increasing social
  distance (Section 4.1);
- TSA interleaves it with spatial NN retrieval (Section 4.2);
- AIS keeps one alive as the shared *forward search* whose heap is
  reused across point-to-point computations ("forward heap caching",
  Section 5.2) and whose frontier key provides the ``β`` bound of the
  delayed-evaluation strategy (Section 5.3).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

from repro.graph.socialgraph import SocialGraph
from repro.utils.heaps import MinHeap

INF = math.inf


class DijkstraIterator:
    """Resumable single-source Dijkstra over a :class:`SocialGraph`.

    Each call to :meth:`next` settles (finalises) one more vertex and
    returns it together with its exact distance; vertices are produced
    in non-decreasing distance order.  The search heap persists between
    calls, so interleaving with other work costs nothing.
    """

    __slots__ = ("graph", "source", "settled", "parent", "heap", "_best", "_last_distance")

    def __init__(self, graph: SocialGraph, source: int, heap: MinHeap | None = None) -> None:
        if not 0 <= source < graph.n:
            raise ValueError(f"source {source} out of range [0, {graph.n})")
        self.graph = graph
        self.source = source
        #: vertex -> exact (final) distance, in settle order
        self.settled: dict[int, float] = {}
        #: vertex -> predecessor on a shortest path from the source
        self.parent: dict[int, int] = {source: source}
        self.heap = heap if heap is not None else MinHeap()
        self._best: dict[int, float] = {source: 0.0}
        self._last_distance = 0.0
        self.heap.push((0.0, source))

    # -- core ------------------------------------------------------------

    def next(self) -> tuple[int, float] | None:
        """Settle and return the next ``(vertex, distance)``; ``None``
        once the reachable component is exhausted."""
        heap = self.heap
        settled = self.settled
        best = self._best
        parent = self.parent
        indptr = self.graph.indptr
        nbrs = self.graph.nbrs
        wts = self.graph.wts
        while heap:
            d, v = heap.pop()
            if v in settled:
                continue  # stale entry
            settled[v] = d
            self._last_distance = d
            lo, hi = indptr[v], indptr[v + 1]
            for i in range(lo, hi):
                u = nbrs[i]
                if u in settled:
                    continue
                nd = d + wts[i]
                old = best.get(u)
                if old is None or nd < old:
                    best[u] = nd
                    parent[u] = v
                    heap.push((nd, u))
            return v, d
        return None

    @property
    def last_distance(self) -> float:
        """Distance of the most recently settled vertex — the social
        lower bound ``t_p`` / frontier key ``β`` of the paper.  0 before
        the first settle."""
        return self._last_distance

    @property
    def exhausted(self) -> bool:
        return not self.heap

    def is_settled(self, v: int) -> bool:
        return v in self.settled

    def distance(self, v: int) -> float | None:
        """Exact distance of ``v`` if already settled, else ``None``."""
        return self.settled.get(v)

    # -- bulk helpers ------------------------------------------------------

    def run_until(self, target: int) -> float:
        """Advance until ``target`` is settled; return its distance
        (``inf`` if unreachable)."""
        d = self.settled.get(target)
        if d is not None:
            return d
        while True:
            item = self.next()
            if item is None:
                return INF
            if item[0] == target:
                return item[1]

    def run_past(self, distance: float) -> None:
        """Advance until the frontier distance exceeds ``distance`` (or
        the component is exhausted)."""
        while self._last_distance <= distance:
            if self.next() is None:
                return

    def run_to_completion(self) -> dict[int, float]:
        """Settle everything reachable; return the distance map."""
        while self.next() is not None:
            pass
        return self.settled

    def path_to(self, v: int) -> list[int]:
        """Shortest path ``source .. v`` for a settled vertex."""
        if v not in self.settled:
            raise KeyError(f"vertex {v} not settled yet")
        path = [v]
        while v != self.source:
            v = self.parent[v]
            path.append(v)
        path.reverse()
        return path


def dijkstra_distances(
    graph: SocialGraph, source: int, cutoff: float | None = None
) -> dict[int, float]:
    """Plain single-source shortest distances.

    With ``cutoff``, expansion stops once the frontier exceeds it (the
    returned map then only covers vertices within the cutoff).
    """
    it = DijkstraIterator(graph, source)
    while True:
        item = it.next()
        if item is None:
            break
        if cutoff is not None and item[1] > cutoff:
            del it.settled[item[0]]
            break
    return it.settled


def shortest_path(graph: SocialGraph, source: int, target: int) -> tuple[float, list[int]]:
    """Distance and one shortest path; ``(inf, [])`` if unreachable."""
    it = DijkstraIterator(graph, source)
    d = it.run_until(target)
    if d == INF:
        return INF, []
    return d, it.path_to(target)


def hop_counts(graph: SocialGraph, source: int) -> dict[int, int]:
    """Unweighted BFS hop distance from ``source`` to every reachable
    vertex."""
    hops = {source: 0}
    queue = deque([source])
    indptr, nbrs = graph.indptr, graph.nbrs
    while queue:
        v = queue.popleft()
        h = hops[v] + 1
        for i in range(indptr[v], indptr[v + 1]):
            u = nbrs[i]
            if u not in hops:
                hops[u] = h
                queue.append(u)
    return hops


def path_hops(iterator: DijkstraIterator, targets: Iterable[int]) -> dict[int, int]:
    """Number of edges on the weighted shortest path from the iterator's
    source to each settled target (the 'hops' statistic of Figure 7a)."""
    result = {}
    for t in targets:
        result[t] = len(iterator.path_to(t)) - 1
    return result
