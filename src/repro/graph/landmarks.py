"""Landmark selection and ALT distance tables.

Landmarks (Goldberg & Harrelson, the paper's reference [25]) are a small
set of vertices with pre-computed distances to every vertex.  By the
triangle inequality, for any landmark ``l``::

    p(u, v) >= |p(l, u) - p(l, v)|          (lower bound)
    p(u, v) <= p(l, u) + p(l, v)            (upper bound)

The tightest bound over all landmarks drives A* search, TSA's candidate
pruning, per-user bounds in the AIS heap, and — aggregated per cell via
min/max vectors — the social summaries of the AIS index (Section 5.1).

The paper fine-tunes the number of landmarks to ``M = 8``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from repro.utils.rng import make_rng

try:  # soft dependency: the scalar fallback keeps working without it
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None

INF = math.inf


def _distance_row(graph: SocialGraph, landmark: int) -> list[float]:
    """Distances from ``landmark`` to every vertex (``inf`` when
    unreachable), as a flat list indexed by vertex id."""
    dist_map = dijkstra_distances(graph, landmark)
    row = [INF] * graph.n
    for v, d in dist_map.items():
        row[v] = d
    return row


def select_landmarks(
    graph: SocialGraph,
    m: int,
    strategy: str = "farthest",
    seed: int = 0,
) -> list[int]:
    """Choose ``m`` landmark vertices.

    Strategies:

    - ``"farthest"`` (default, per [25]): greedy k-center — start from
      the highest-degree vertex and repeatedly add the vertex maximising
      the minimum distance to the chosen set (restricted to reachable
      vertices, so landmarks stay in the giant component).
    - ``"random"``: uniform sample.
    - ``"degree"``: the ``m`` highest-degree vertices (hub landmarks).
    """
    if m < 1:
        raise ValueError(f"need at least one landmark, got {m}")
    if m > graph.n:
        raise ValueError(f"cannot select {m} landmarks from {graph.n} vertices")

    if strategy == "random":
        rng = make_rng(seed)
        return sorted(rng.sample(range(graph.n), m))

    if strategy == "degree":
        order = sorted(range(graph.n), key=lambda v: (-graph.degree(v), v))
        return sorted(order[:m])

    if strategy != "farthest":
        raise ValueError(f"unknown landmark strategy {strategy!r}")

    start = max(range(graph.n), key=lambda v: (graph.degree(v), -v))
    chosen = [start]
    min_dist = _distance_row(graph, start)
    for _ in range(m - 1):
        candidate = -1
        candidate_d = -1.0
        for v, d in enumerate(min_dist):
            if d != INF and d > candidate_d and v not in chosen:
                candidate = v
                candidate_d = d
        if candidate < 0:
            # Graph smaller/more disconnected than m: fall back to any
            # not-yet-chosen vertex.
            candidate = next(v for v in range(graph.n) if v not in chosen)
        chosen.append(candidate)
        row = _distance_row(graph, candidate)
        for v in range(graph.n):
            if row[v] < min_dist[v]:
                min_dist[v] = row[v]
    return sorted(chosen)


class LandmarkIndex:
    """Pre-computed landmark distance tables with bound queries.

    ``dist[j][v]`` is the graph distance between the ``j``-th landmark
    and vertex ``v`` (``m_vj`` in the paper's notation).  For directed
    graphs two tables are kept (to/from each landmark); for undirected
    graphs they coincide.

    Storage is columnar: under NumPy the rows of :attr:`dist` are views
    into one contiguous ``(n_landmarks, n_users)`` float64 matrix
    (:attr:`matrix`), so in-place row maintenance (see
    :class:`~repro.graph.dynamics.DynamicLandmarkTables`) and the
    vectorized ALT-bound kernels of :mod:`repro.backend` always observe
    the same numbers.  Without NumPy the rows are plain lists and
    :attr:`matrix` is ``None``.
    """

    __slots__ = ("graph", "landmarks", "dist", "dist_rev", "_matrix", "_matrix_rev")

    def __init__(self, graph: SocialGraph, landmarks: Sequence[int]) -> None:
        self.graph = graph
        self.landmarks = list(landmarks)
        rows = [_distance_row(graph, l) for l in self.landmarks]
        #: distances landmark -> v (== v -> landmark for undirected)
        self.dist: list = self._adopt_rows(rows, "_matrix", graph.n)
        if graph.directed:
            rev = graph.reverse()
            rev_rows = [_distance_row(rev, l) for l in self.landmarks]
            self.dist_rev = self._adopt_rows(rev_rows, "_matrix_rev", graph.n)
        else:
            self.dist_rev = self.dist
            self._matrix_rev = self._matrix

    def _adopt_rows(self, rows: list[list[float]], attr: str, n: int) -> list:
        """Store ``rows`` behind ``attr`` as a contiguous matrix (NumPy)
        and return per-landmark row *views* of it, so scalar row access
        and the matrix stay coherent under in-place mutation."""
        if _np is None:
            setattr(self, attr, None)
            return rows
        matrix = (
            _np.array(rows, dtype=_np.float64) if rows else _np.empty((0, n))
        )
        setattr(self, attr, matrix)
        return [matrix[j] for j in range(matrix.shape[0])]

    @property
    def matrix(self):
        """The ``(n_landmarks, n_users)`` float64 distance matrix (the
        columnar form of :attr:`dist`; ``None`` without NumPy).  Rows of
        :attr:`dist` are views into it — mutations through either side
        stay coherent."""
        return self._matrix

    @property
    def matrix_rev(self):
        """Reverse-orientation matrix (``is matrix`` for undirected
        graphs; ``None`` without NumPy)."""
        return self._matrix_rev

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        m: int = 8,
        strategy: str = "farthest",
        seed: int = 0,
    ) -> "LandmarkIndex":
        return cls(graph, select_landmarks(graph, m, strategy, seed))

    @property
    def m(self) -> int:
        """Number of landmarks (``M`` in the paper)."""
        return len(self.landmarks)

    def copy(self) -> "LandmarkIndex":
        """Deep-copy the distance tables (same graph and landmark
        choice, no recomputation) — lets
        :class:`~repro.graph.dynamics.DynamicLandmarkTables` maintain a
        companion table under edge updates without mutating the
        original index that live queries depend on."""
        clone = object.__new__(LandmarkIndex)
        clone.graph = self.graph
        clone.landmarks = list(self.landmarks)
        clone.dist = clone._adopt_rows([list(row) for row in self.dist], "_matrix", self.graph.n)
        if self.dist_rev is self.dist:
            clone.dist_rev = clone.dist
            clone._matrix_rev = clone._matrix
        else:
            clone.dist_rev = clone._adopt_rows(
                [list(row) for row in self.dist_rev], "_matrix_rev", self.graph.n
            )
        return clone

    @classmethod
    def from_tables(
        cls,
        graph: SocialGraph,
        landmarks: Sequence[int],
        matrix,
        matrix_rev=None,
    ) -> "LandmarkIndex":
        """Adopt pre-computed distance tables (the restore path of
        :mod:`repro.store`) — same shape contract as :meth:`copy` but
        fed from disk instead of a live index.

        Under NumPy, ``matrix`` (shape ``(m, n)``, possibly memory-
        mapped copy-on-write) is adopted without copying and rows of
        :attr:`dist` become views into it.  Without NumPy, pass
        list-of-lists.  Directed graphs must supply ``matrix_rev``.
        """
        clone = object.__new__(cls)
        clone.graph = graph
        clone.landmarks = list(landmarks)
        m = len(clone.landmarks)
        if _np is not None:
            if matrix.shape != (m, graph.n):
                raise ValueError(
                    f"landmark matrix shape {matrix.shape} != ({m}, {graph.n})"
                )
            clone._matrix = matrix
            clone.dist = [matrix[j] for j in range(m)]
            if graph.directed:
                if matrix_rev is None:
                    raise ValueError("directed graph needs matrix_rev")
                if matrix_rev.shape != (m, graph.n):
                    raise ValueError(
                        f"reverse matrix shape {matrix_rev.shape} != ({m}, {graph.n})"
                    )
                clone._matrix_rev = matrix_rev
                clone.dist_rev = [matrix_rev[j] for j in range(m)]
            else:
                clone._matrix_rev = clone._matrix
                clone.dist_rev = clone.dist
        else:  # pragma: no cover - exercised only off-CI
            clone.dist = clone._adopt_rows([list(r) for r in matrix], "_matrix", graph.n)
            if graph.directed:
                if matrix_rev is None:
                    raise ValueError("directed graph needs matrix_rev")
                clone.dist_rev = clone._adopt_rows(
                    [list(r) for r in matrix_rev], "_matrix_rev", graph.n
                )
            else:
                clone.dist_rev = clone.dist
                clone._matrix_rev = clone._matrix
        return clone

    def vector(self, v: int) -> tuple[float, ...]:
        """Landmark distance vector of vertex ``v`` (``m_v*``)."""
        return tuple(row[v] for row in self.dist)

    def lower_bound(self, u: int, v: int) -> float:
        """Tightest triangle-inequality lower bound on ``p(u, v)``.

        Undirected graphs use ``|p(l,u) − p(l,v)|``.  Directed graphs
        need the orientation-aware forms ``p(l→v) − p(l→u)`` and
        ``p(u→l) − p(v→l)`` (the symmetric difference is *not* valid).

        Infinite table entries encode disconnection and are handled so
        that the bound stays valid: if exactly one of ``u, v`` reaches a
        landmark, they are in different components and the bound is
        ``inf`` (undirected only); if neither does, that landmark is
        uninformative.
        """
        best = 0.0
        if not self.graph.directed:
            for row in self.dist:
                a = row[u]
                b = row[v]
                if a == b:
                    continue  # also covers inf == inf
                if a == INF or b == INF:
                    return INF
                diff = a - b if a > b else b - a
                if diff > best:
                    best = diff
            return best
        for fwd, rev in zip(self.dist, self.dist_rev):
            # p(u, v) >= p(l -> v) - p(l -> u)
            a, b = fwd[v], fwd[u]
            if a != b and b != INF:
                diff = a - b
                if diff > best:
                    best = diff
            # p(u, v) >= p(u -> l) - p(v -> l)
            a, b = rev[u], rev[v]
            if a != b and b != INF:
                diff = a - b
                if diff > best:
                    best = diff
        return best

    def upper_bound(self, u: int, v: int) -> float:
        """Tightest triangle-inequality upper bound on ``p(u, v)``."""
        best = INF
        for row in self.dist:
            s = row[u] + row[v]
            if s < best:
                best = s
        return best

    def heuristic_to(self, target: int) -> Callable[[int], float]:
        """Admissible, consistent A* heuristic estimating ``p(v, target)``.

        The target's landmark vector is captured once, so per-vertex
        evaluation is a tight loop over ``M`` floats.  Directed graphs
        use the orientation-aware ALT potentials.
        """
        rows = self.dist
        target_vec = [row[target] for row in rows]
        if self.graph.directed:
            rev_rows = self.dist_rev
            target_rev = [row[target] for row in rev_rows]

            def h_directed(v: int) -> float:
                best = 0.0
                for j, row in enumerate(rows):
                    # p(v, t) >= p(l -> t) - p(l -> v)
                    b = row[v]
                    if b != INF:
                        diff = target_vec[j] - b
                        if diff > best:
                            best = diff
                    # p(v, t) >= p(v -> l) - p(t -> l)
                    b = target_rev[j]
                    if b != INF:
                        diff = rev_rows[j][v] - b
                        if diff > best:
                            best = diff
                return best

            return h_directed

        def h(v: int) -> float:
            best = 0.0
            for j, row in enumerate(rows):
                a = row[v]
                b = target_vec[j]
                if a == b:
                    continue
                if a == INF or b == INF:
                    return INF
                diff = a - b if a > b else b - a
                if diff > best:
                    best = diff
            return best

        return h

    def max_finite_distance(self) -> float:
        """Largest finite table entry — a cheap lower bound on the graph
        diameter, used as a sanity fallback for ``P_max``."""
        if self._matrix is not None and self._matrix.size:
            finite = self._matrix[_np.isfinite(self._matrix)]
            return float(finite.max()) if finite.size else 0.0
        best = 0.0
        for row in self.dist:
            for d in row:
                if d != INF and d > best:
                    best = d
        return best
