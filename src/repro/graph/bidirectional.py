"""Bidirectional graph-distance computation (paper Section 5.2).

AIS repeatedly needs exact distances from the query vertex ``v_q`` to
*different* targets.  :class:`BidirectionalDistanceEngine` implements
the paper's Algorithm 3 (``GraphDist``) with its two computation-sharing
optimisations:

- **Forward heap caching** — the forward search from ``v_q`` is a plain
  Dijkstra whose heap keys do not depend on the target, so one forward
  search is paused/resumed across all calls.  (This is exactly why the
  paper uses Dijkstra, not A*, on the forward side.)
- **Distance caching** — targets already settled by the forward search,
  or lying on a previously reported shortest path (table ``T``), are
  answered in O(1).

The reverse search is a fresh landmark-guided A* per call, which stops
expanding at vertices the forward search has already covered (line 18).

Setting ``share_forward=False`` / ``cache_paths=False`` yields the
"AIS-BID" baseline of Figure 10: a from-scratch bidirectional search per
evaluation with no sharing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.graph.astar import AStarSearch
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.graph.landmarks import LandmarkIndex

INF = math.inf


def bidirectional_dijkstra(graph: SocialGraph, source: int, target: int) -> float:
    """Plain symmetric bidirectional Dijkstra (reference implementation,
    used in tests and as the no-landmark fallback).

    Uses Goldberg's sound stopping rule: the candidate ``μ`` is updated
    on every arc relaxation whose head the *other* search has settled,
    and the search stops when ``μ <= top_f + top_r``.
    """
    import heapq

    if source == target:
        return 0.0
    graphs = (graph, graph.reverse() if graph.directed else graph)
    dist: tuple[dict[int, float], dict[int, float]] = ({source: 0.0}, {target: 0.0})
    settled: tuple[dict[int, float], dict[int, float]] = ({}, {})
    heaps: tuple[list, list] = ([(0.0, source)], [(0.0, target)])
    best = INF
    while True:
        key0 = heaps[0][0][0] if heaps[0] else INF
        key1 = heaps[1][0][0] if heaps[1] else INF
        if best <= key0 + key1:
            return best
        side = 0 if key0 <= key1 else 1
        d, v = heapq.heappop(heaps[side])
        my_settled = settled[side]
        if v in my_settled:
            continue
        my_settled[v] = d
        other_settled = settled[1 - side]
        my_dist = dist[side]
        g = graphs[side]
        lo, hi = g.indptr[v], g.indptr[v + 1]
        for i in range(lo, hi):
            u = g.nbrs[i]
            nd = d + g.wts[i]
            ou = other_settled.get(u)
            if ou is not None and nd + ou < best:
                best = nd + ou
            if u not in my_settled and nd < my_dist.get(u, INF):
                my_dist[u] = nd
                heapq.heappush(heaps[side], (nd, u))


class BidirectionalDistanceEngine:
    """Many-targets-one-source exact distance oracle (Algorithm 3).

    Parameters
    ----------
    graph:
        The social graph.
    source:
        The query vertex ``v_q``; all distances are measured from it.
    landmarks:
        Optional :class:`~repro.graph.landmarks.LandmarkIndex` guiding
        the reverse A* search (plain Dijkstra without it).
    share_forward:
        Keep one forward Dijkstra alive across calls (paper: forward
        heap caching).  When ``False`` a fresh forward search runs per
        call.
    cache_paths:
        Maintain the shortest-path table ``T`` (paper: distance caching).
    """

    __slots__ = (
        "graph",
        "source",
        "landmarks",
        "share_forward",
        "cache_paths",
        "forward_interleave",
        "forward",
        "path_cache",
        "_h",
        "forward_pops",
        "reverse_pops",
        "calls",
        "cache_hits",
    )

    def __init__(
        self,
        graph: SocialGraph,
        source: int,
        landmarks: "LandmarkIndex | None" = None,
        share_forward: bool = True,
        cache_paths: bool = True,
        forward_interleave: int = 1,
    ) -> None:
        """``forward_interleave``: advance the forward search once every
        this many reverse steps.  The paper's Algorithm 3 alternates 1:1;
        values > 1 throttle the (target-independent) forward work when
        the reverse heuristic is weak — correctness is unaffected, the
        forward search merely contributes less cached state per call."""
        if forward_interleave < 1:
            raise ValueError(f"forward_interleave must be >= 1, got {forward_interleave}")
        self.graph = graph
        self.source = source
        self.landmarks = landmarks
        self.share_forward = share_forward
        self.cache_paths = cache_paths
        self.forward_interleave = forward_interleave
        self.forward = DijkstraIterator(graph, source) if share_forward else None
        #: table T: vertex -> exact distance from source, harvested from
        #: previously reported shortest paths
        self.path_cache: dict[int, float] = {}
        # The reverse search always aims at the fixed source, so one
        # heuristic closure serves every call.
        if landmarks is not None and not graph.directed:
            self._h = landmarks.heuristic_to(source)
        else:
            self._h = None
        self.forward_pops = 0
        self.reverse_pops = 0
        self.calls = 0
        self.cache_hits = 0

    # -- caching-aware public API -----------------------------------------

    @property
    def beta(self) -> float:
        """Frontier key of the shared forward search — the lower bound
        ``β`` on the distance of every forward-unvisited vertex (used by
        the delayed evaluation strategy, Section 5.3)."""
        return self.forward.last_distance if self.forward is not None else 0.0

    def known_distance(self, v: int) -> float | None:
        """Exact distance if available without any search (settled by
        forward search or recorded in the path table)."""
        if self.forward is not None:
            d = self.forward.settled.get(v)
            if d is not None:
                return d
        return self.path_cache.get(v)

    def distance(self, target: int) -> float:
        """Exact graph distance ``p(source, target)``."""
        self.calls += 1
        if target == self.source:
            return 0.0
        known = self.known_distance(target)
        if known is not None:
            self.cache_hits += 1
            return known
        if self.forward is not None:
            forward = self.forward
        else:
            forward = DijkstraIterator(self.graph, self.source)
        d = self._bidirectional(forward, target)
        if not self.share_forward:
            self.forward_pops += forward.heap.pops
        return d

    # -- Algorithm 3 core ----------------------------------------------------

    def _bidirectional(self, forward: DijkstraIterator, target: int) -> float:
        fwd_settled = forward.settled
        rev_graph = self.graph.reverse() if self.graph.directed else self.graph
        reverse = AStarSearch(
            rev_graph,
            target,
            h=self._h,
            expand_filter=lambda v: v not in fwd_settled,
        )
        min_dist = INF
        meet = -1  # meeting vertex of the best candidate path
        step = 0

        while True:
            # Termination (paper line 7): no undiscovered path can beat
            # the candidate once the reverse frontier bound reaches it.
            rev_bound = reverse.min_fkey
            if min_dist <= rev_bound:
                break
            if forward.exhausted and reverse.exhausted:
                break

            # Forward step (lines 8-12), throttled by forward_interleave.
            step += 1
            item = forward.next() if step % self.forward_interleave == 0 else None
            if item is not None:
                vf, df = item
                if vf == target:
                    # Settled by Dijkstra: df is exact; no candidate or
                    # frontier can be shorter.
                    min_dist, meet = df, vf
                    break
                gr = reverse.settled.get(vf)
                if gr is not None and df + gr < min_dist:
                    min_dist, meet = df + gr, vf

            # Reverse step (lines 13-18).
            item = reverse.next()
            if item is not None:
                vr, gr = item
                if vr == self.source:
                    if gr < min_dist:
                        min_dist, meet = gr, vr
                    break  # exact: reverse settled the goal itself
                df = fwd_settled.get(vr)
                if df is not None and df + gr < min_dist:
                    min_dist, meet = df + gr, vr

        self.reverse_pops += reverse.heap.pops
        if min_dist != INF and self.cache_paths:
            self._record_path(forward, reverse, target, meet, min_dist)
        return min_dist

    def _record_path(
        self,
        forward: DijkstraIterator,
        reverse: AStarSearch,
        target: int,
        meet: int,
        total: float,
    ) -> None:
        """Store exact from-source distances for every vertex on the
        reported shortest path (table ``T``, lines 19-20).

        Forward-side vertices are already covered by ``forward.settled``
        when the forward search is shared; reverse-side vertices ``x``
        satisfy ``p(source, x) = total - g_r(x)`` because subpaths of a
        shortest path are shortest.
        """
        cache = self.path_cache
        if meet in forward.settled:
            for x in forward.path_to(meet):
                cache[x] = forward.settled[x]
        if meet in reverse.settled and meet != target:
            for x in reverse.path_to(meet):
                gr = reverse.settled.get(x)
                if gr is not None:
                    cache[x] = total - gr
        cache[target] = total
