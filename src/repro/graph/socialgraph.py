"""Weighted social graph in compressed sparse row (CSR) form.

The paper's setting (Section 3): an undirected graph ``G = (V, E)`` with
one vertex per user and positive edge weights encoding friendship
strength (smaller weight = stronger tie).  The work "extends to directed
graphs easily", and so does this class.

CSR keeps the three flat arrays ``indptr``, ``nbrs`` and ``wts``; the
out-neighbourhood of vertex ``v`` is
``nbrs[indptr[v]:indptr[v+1]]`` / ``wts[indptr[v]:indptr[v+1]]``.
Flat Python lists are the fastest random-access container available to
pure-Python Dijkstra loops, which dominate every algorithm's cost.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence


class SocialGraph:
    """Immutable weighted graph over vertices ``0..n-1``.

    Parallel edges are collapsed to the smallest weight at construction;
    self-loops are rejected (they can never appear on a shortest path
    with positive weights and the paper's friendship semantics exclude
    them).

        >>> from repro import SocialGraph
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> g.n, g.num_edges, g.degree(0)
        (4, 3, 2)
        >>> sorted(g.neighbors(0))
        [(1, 1.0), (3, 3.0)]
    """

    __slots__ = ("n", "indptr", "nbrs", "wts", "directed", "_num_edges", "_reverse")

    def __init__(
        self,
        n: int,
        indptr: list[int],
        nbrs: list[int],
        wts: list[float],
        directed: bool = False,
        _num_edges: int | None = None,
    ) -> None:
        if len(indptr) != n + 1:
            raise ValueError("indptr must have length n + 1")
        if len(nbrs) != len(wts):
            raise ValueError("nbrs and wts must have equal length")
        self.n = n
        self.indptr = indptr
        self.nbrs = nbrs
        self.wts = wts
        self.directed = directed
        if _num_edges is None:
            _num_edges = len(nbrs) if directed else len(nbrs) // 2
        self._num_edges = _num_edges
        self._reverse: "SocialGraph | None" = None

    # -- construction ---------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int, float]],
        directed: bool = False,
    ) -> "SocialGraph":
        """Build from ``(u, v, weight)`` triples.

        For undirected graphs each input edge is stored in both
        directions.  Duplicate edges keep the minimum weight.
        """
        best: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            if u == v:
                raise ValueError(f"self-loop on vertex {u}")
            if not 0 <= u < n or not 0 <= v < n:
                raise ValueError(f"edge ({u}, {v}) out of range [0, {n})")
            if w <= 0 or not math.isfinite(w):
                raise ValueError(f"edge ({u}, {v}) has non-positive weight {w}")
            if not directed and u > v:
                u, v = v, u
            key = (u, v)
            old = best.get(key)
            if old is None or w < old:
                best[key] = w

        counts = [0] * (n + 1)
        for u, v in best:
            counts[u + 1] += 1
            if not directed:
                counts[v + 1] += 1
        indptr = counts
        for i in range(1, n + 1):
            indptr[i] += indptr[i - 1]
        m = indptr[n]
        nbrs = [0] * m
        wts = [0.0] * m
        cursor = list(indptr[:n])
        for (u, v), w in best.items():
            nbrs[cursor[u]] = v
            wts[cursor[u]] = w
            cursor[u] += 1
            if not directed:
                nbrs[cursor[v]] = u
                wts[cursor[v]] = w
                cursor[v] += 1
        return cls(n, indptr, nbrs, wts, directed, _num_edges=len(best))

    @classmethod
    def from_csr(
        cls,
        n: int,
        indptr: Sequence[int],
        nbrs: Sequence[int],
        wts: Sequence[float],
        directed: bool = False,
        num_edges: int | None = None,
    ) -> "SocialGraph":
        """Re-adopt already-built CSR columns (the persistence path of
        :mod:`repro.store`): no edge collapsing or re-sorting, just
        structural validation of the three arrays.

        Unlike :meth:`from_edges`, the input is trusted to be a valid
        CSR image produced by this class — but since the columns may
        come from disk, the cheap invariants (monotone ``indptr``,
        neighbour ids in range, positive finite weights) are checked so
        a corrupted file fails loudly instead of corrupting a search.

            >>> from repro import SocialGraph
            >>> g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
            >>> clone = SocialGraph.from_csr(
            ...     g.n, list(g.indptr), list(g.nbrs), list(g.wts))
            >>> clone.num_edges, sorted(clone.neighbors(1))
            (2, [(0, 1.0), (2, 2.0)])
        """
        indptr = list(indptr)
        nbrs = list(nbrs)
        wts = list(wts)
        if len(indptr) != n + 1 or indptr[0] != 0 or indptr[n] != len(nbrs):
            raise ValueError(
                f"CSR indptr inconsistent: len={len(indptr)} (need {n + 1}), "
                f"first={indptr[:1]}, last={indptr[-1:]} vs {len(nbrs)} entries"
            )
        if any(a > b for a, b in zip(indptr, indptr[1:])):
            raise ValueError("CSR indptr must be non-decreasing")
        if any(not 0 <= v < n for v in nbrs):
            raise ValueError(f"CSR neighbour id out of range [0, {n})")
        if any(w <= 0 or not math.isfinite(w) for w in wts):
            raise ValueError("CSR edge weights must be positive and finite")
        return cls(n, indptr, nbrs, wts, directed, _num_edges=num_edges)

    @classmethod
    def from_adjacency(
        cls, adjacency: Sequence[dict[int, float]], directed: bool = False
    ) -> "SocialGraph":
        """Build from a list of ``{neighbor: weight}`` dicts."""
        n = len(adjacency)
        edges = []
        for u, nbrs in enumerate(adjacency):
            for v, w in nbrs.items():
                if directed or u < v:
                    edges.append((u, v, w))
                elif v not in range(n) or u not in adjacency[v]:
                    raise ValueError(f"undirected adjacency asymmetric at ({u}, {v})")
        return cls.from_edges(n, edges, directed)

    # -- accessors --------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def degree(self, v: int) -> int:
        """Out-degree of ``v`` (== degree for undirected graphs)."""
        return self.indptr[v + 1] - self.indptr[v]

    @property
    def average_degree(self) -> float:
        if self.n == 0:
            return 0.0
        return len(self.nbrs) / self.n if self.directed else 2.0 * self._num_edges / self.n

    @property
    def max_degree(self) -> int:
        return max((self.degree(v) for v in range(self.n)), default=0)

    def neighbors(self, v: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return zip(self.nbrs[lo:hi], self.wts[lo:hi])

    def has_edge(self, u: int, v: int) -> bool:
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return v in self.nbrs[lo:hi]

    def edge_weight(self, u: int, v: int) -> float | None:
        lo, hi = self.indptr[u], self.indptr[u + 1]
        for i in range(lo, hi):
            if self.nbrs[i] == v:
                return self.wts[i]
        return None

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate every edge once (``u <= v`` for undirected graphs)."""
        for u in range(self.n):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for i in range(lo, hi):
                v = self.nbrs[i]
                if self.directed or u < v:
                    yield u, v, self.wts[i]

    def reverse(self) -> "SocialGraph":
        """Graph with every edge reversed (cached; self for undirected)."""
        if not self.directed:
            return self
        if self._reverse is None:
            rev_edges = ((v, u, w) for u, v, w in self.edges())
            self._reverse = SocialGraph.from_edges(self.n, rev_edges, directed=True)
        return self._reverse

    # -- derived structures ------------------------------------------------

    def to_adjacency(self) -> list[dict[int, float]]:
        """Mutable adjacency-dict view (used by CH construction and the
        dynamic-update machinery)."""
        adj: list[dict[int, float]] = [{} for _ in range(self.n)]
        for u in range(self.n):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for i in range(lo, hi):
                adj[u][self.nbrs[i]] = self.wts[i]
        return adj

    def subgraph(self, vertices: Sequence[int]) -> tuple["SocialGraph", dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the new graph (vertices relabelled ``0..len-1``) and the
        old-id -> new-id mapping.  Used by Forest-Fire sampling (Fig 14b).
        """
        mapping = {old: new for new, old in enumerate(vertices)}
        edges = []
        for old_u in vertices:
            new_u = mapping[old_u]
            lo, hi = self.indptr[old_u], self.indptr[old_u + 1]
            for i in range(lo, hi):
                old_v = self.nbrs[i]
                new_v = mapping.get(old_v)
                if new_v is None:
                    continue
                if self.directed or new_u < new_v:
                    edges.append((new_u, new_v, self.wts[i]))
        return SocialGraph.from_edges(len(vertices), edges, self.directed), mapping

    def with_edge_update(
        self, u: int, v: int, weight: float | None
    ) -> "SocialGraph":
        """Copy of the graph with edge ``(u, v)`` set to ``weight`` (new
        or changed) or removed (``weight is None``)."""
        edges = []
        seen = False
        for a, b, w in self.edges():
            if self.directed:
                matches = (a, b) == (u, v)
            else:
                matches = {a, b} == {u, v}
            if matches:
                seen = True
                if weight is not None:
                    edges.append((a, b, weight))
            else:
                edges.append((a, b, w))
        if weight is not None and not seen:
            edges.append((u, v, weight))
        return SocialGraph.from_edges(self.n, edges, self.directed)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"SocialGraph(n={self.n}, edges={self._num_edges}, {kind})"
