"""A* point-to-point search with (landmark) heuristics.

:class:`AStarSearch` mirrors :class:`~repro.graph.traversal.DijkstraIterator`
but orders its heap by ``g + h`` where ``h`` is an admissible,
*consistent* heuristic (the ALT landmark bound).  With a consistent
heuristic, a popped vertex's ``g`` value is its exact distance from the
source — the property the bidirectional engine of Section 5.2 relies on
for its reverse search.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.utils.heaps import MinHeap

INF = math.inf


class AStarSearch:
    """Resumable A* expansion from ``source`` guided by heuristic ``h``.

    ``h(v)`` must lower-bound the remaining distance from ``v`` to the
    (implicit) goal and be consistent.  ``h = None`` degrades to plain
    Dijkstra.

    ``expand_filter`` is consulted when a vertex is settled; returning
    ``False`` suppresses relaxation of its out-edges (the vertex itself
    is still settled and reported).  The bidirectional engine uses this
    for Algorithm 3's line 18 — not expanding reverse-search vertices
    that the forward search has already covered.
    """

    __slots__ = ("graph", "source", "h", "expand_filter", "settled", "parent", "heap", "_best", "_last_fkey")

    def __init__(
        self,
        graph: SocialGraph,
        source: int,
        h: Callable[[int], float] | None = None,
        heap: MinHeap | None = None,
        expand_filter: Callable[[int], bool] | None = None,
    ) -> None:
        if not 0 <= source < graph.n:
            raise ValueError(f"source {source} out of range [0, {graph.n})")
        self.graph = graph
        self.source = source
        self.h = h
        self.expand_filter = expand_filter
        #: vertex -> exact g (distance from source), in settle order
        self.settled: dict[int, float] = {}
        self.parent: dict[int, int] = {source: source}
        self.heap = heap if heap is not None else MinHeap()
        self._best: dict[int, float] = {source: 0.0}
        self._last_fkey = 0.0
        h0 = h(source) if h is not None else 0.0
        self.heap.push((h0, source))

    def next(self) -> tuple[int, float] | None:
        """Settle the next vertex; returns ``(vertex, g)`` or ``None``."""
        heap = self.heap
        settled = self.settled
        best = self._best
        parent = self.parent
        h = self.h
        indptr = self.graph.indptr
        nbrs = self.graph.nbrs
        wts = self.graph.wts
        while heap:
            fkey, v = heap.pop()
            if v in settled:
                continue
            g = best[v]
            settled[v] = g
            self._last_fkey = fkey
            if self.expand_filter is not None and not self.expand_filter(v):
                return v, g
            lo, hi = indptr[v], indptr[v + 1]
            for i in range(lo, hi):
                u = nbrs[i]
                if u in settled:
                    continue
                ng = g + wts[i]
                old = best.get(u)
                if old is None or ng < old:
                    best[u] = ng
                    parent[u] = v
                    hu = h(u) if h is not None else 0.0
                    heap.push((ng + hu, u))
            return v, g
        return None

    @property
    def min_fkey(self) -> float:
        """Smallest key in the open heap — a lower bound on the total
        length of any source-to-goal path through unsettled vertices.
        ``inf`` when the heap is empty."""
        return self.heap.peek_key() if self.heap else INF

    @property
    def exhausted(self) -> bool:
        return not self.heap

    def g(self, v: int) -> float | None:
        """Exact distance from the source if ``v`` is settled."""
        return self.settled.get(v)

    def path_to(self, v: int) -> list[int]:
        """Search-tree path ``source .. v`` for a settled vertex."""
        if v not in self.settled:
            raise KeyError(f"vertex {v} not settled yet")
        path = [v]
        while v != self.source:
            v = self.parent[v]
            path.append(v)
        path.reverse()
        return path


def alt_distance(graph: SocialGraph, source: int, target: int, landmarks=None) -> float:
    """Point-to-point distance via unidirectional A* with the ALT
    heuristic (plain Dijkstra when ``landmarks`` is ``None``)."""
    if source == target:
        return 0.0
    if landmarks is None:
        return DijkstraIterator(graph, source).run_until(target)
    h = landmarks.heuristic_to(target)
    if h(source) == INF:
        return INF
    search = AStarSearch(graph, source, h)
    while True:
        item = search.next()
        if item is None:
            return INF
        if item[0] == target:
            return item[1]
