"""Graph substrate: the weighted social network and its search machinery.

Implements everything the paper relies on in the social domain:

- :mod:`repro.graph.socialgraph` — compact CSR adjacency for weighted
  (un)directed graphs;
- :mod:`repro.graph.traversal` — resumable Dijkstra ("sorted access" on
  social distance) and path utilities;
- :mod:`repro.graph.landmarks` — landmark selection and ALT distance
  tables (Goldberg & Harrelson, the paper's reference [25]);
- :mod:`repro.graph.astar` — A* point-to-point search with landmark
  heuristics;
- :mod:`repro.graph.bidirectional` — the bidirectional distance module
  of Section 5.2 (Algorithm 3), with distance caching and forward-heap
  caching;
- :mod:`repro.graph.ch` — Contraction Hierarchies (the comparator of
  Figure 8, reference [44]);
- :mod:`repro.graph.diameter` — diameter estimation for the social
  normaliser ``P_max``;
- :mod:`repro.graph.dynamics` — incremental shortest-path-tree repair
  for landmark tables under edge updates (Section 5.1 discussion).
"""

from repro.graph.astar import AStarSearch, alt_distance
from repro.graph.bidirectional import BidirectionalDistanceEngine, bidirectional_dijkstra
from repro.graph.ch import ContractionHierarchy
from repro.graph.diameter import double_sweep_diameter
from repro.graph.dynamics import DynamicLandmarkTables
from repro.graph.landmarks import LandmarkIndex, select_landmarks
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import (
    DijkstraIterator,
    dijkstra_distances,
    hop_counts,
    shortest_path,
)

__all__ = [
    "SocialGraph",
    "DijkstraIterator",
    "dijkstra_distances",
    "shortest_path",
    "hop_counts",
    "LandmarkIndex",
    "select_landmarks",
    "AStarSearch",
    "alt_distance",
    "BidirectionalDistanceEngine",
    "bidirectional_dijkstra",
    "ContractionHierarchy",
    "double_sweep_diameter",
    "DynamicLandmarkTables",
]
