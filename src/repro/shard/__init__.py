"""Spatial sharding: scatter-gather SSRQ over partitioned indexes.

One :class:`~repro.core.engine.GeoSocialEngine` per process caps the
reproduction far below the "millions of users" target.  This package
partitions users across N spatial shards — each a member-filtered
engine sharing the full graph, the global location table, the landmark
index, and the normalization — and answers queries by scatter-gather
with shard-level ``MINF`` pruning, returning rankings bit-identical to
the single engine (property-tested in
``tests/test_shard_equivalence.py``).

Layout:

- :mod:`repro.shard.partitioner` — pluggable user → shard assignment
  (regular grid tiling, balanced k-d splits);
- :mod:`repro.shard.bounds` — per-shard pruning envelopes (member
  bounding box + social summary, Theorem 1 lifted to the partition);
- :mod:`repro.shard.engine` — :class:`ShardedGeoSocialEngine`, the
  scatter-gather coordinator with the single-engine API;
- :mod:`repro.shard.journal` — the bounded location-delta journal that
  keeps forked workers coherent across update epochs;
- :mod:`repro.shard.parallel` — :class:`ProcessScatterPool`, the warm
  multi-core backend (pinned shard workers, delta shipping, overlapped
  scatter-merge, read replicas, crash respawn).
"""

from repro.shard.bounds import ShardBounds
from repro.shard.engine import DELEGATED_METHODS, ScatterStats, ShardedGeoSocialEngine
from repro.shard.journal import DeltaJournal, LocationDelta
from repro.shard.parallel import (
    PoolClosedError,
    ProcessScatterPool,
    resolve_scatter_backend,
)
from repro.shard.partitioner import (
    GridPartitioner,
    KDTreePartitioner,
    Partitioner,
    make_partitioner,
)

__all__ = [
    "ShardedGeoSocialEngine",
    "ScatterStats",
    "ShardBounds",
    "ProcessScatterPool",
    "PoolClosedError",
    "DeltaJournal",
    "LocationDelta",
    "resolve_scatter_backend",
    "Partitioner",
    "GridPartitioner",
    "KDTreePartitioner",
    "make_partitioner",
    "DELEGATED_METHODS",
]
