"""Spatial sharding: scatter-gather SSRQ over partitioned indexes.

One :class:`~repro.core.engine.GeoSocialEngine` per process caps the
reproduction far below the "millions of users" target.  This package
partitions users across N spatial shards — each a member-filtered
engine sharing the full graph, the global location table, the landmark
index, and the normalization — and answers queries by scatter-gather
with shard-level ``MINF`` pruning, returning rankings bit-identical to
the single engine (property-tested in
``tests/test_shard_equivalence.py``).

Layout:

- :mod:`repro.shard.partitioner` — pluggable user → shard assignment
  (regular grid tiling, balanced k-d splits);
- :mod:`repro.shard.bounds` — per-shard pruning envelopes (member
  bounding box + social summary, Theorem 1 lifted to the partition);
- :mod:`repro.shard.engine` — :class:`ShardedGeoSocialEngine`, the
  scatter-gather coordinator with the single-engine API.
"""

from repro.shard.bounds import ShardBounds
from repro.shard.engine import DELEGATED_METHODS, ScatterStats, ShardedGeoSocialEngine
from repro.shard.parallel import ProcessScatterPool
from repro.shard.partitioner import (
    GridPartitioner,
    KDTreePartitioner,
    Partitioner,
    make_partitioner,
)

__all__ = [
    "ShardedGeoSocialEngine",
    "ScatterStats",
    "ShardBounds",
    "ProcessScatterPool",
    "Partitioner",
    "GridPartitioner",
    "KDTreePartitioner",
    "make_partitioner",
    "DELEGATED_METHODS",
]
