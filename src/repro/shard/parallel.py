"""Process-backed scatter-gather: shard searches on real cores.

The scatter fan-out of :class:`~repro.shard.ShardedGeoSocialEngine` is
CPU-bound pure Python, so its thread pool only overlaps on GIL-free
builds.  :class:`ProcessScatterPool` is the multi-core execution
backend: it forks worker processes that inherit the fully-built shard
engines copy-on-write (no index serialisation, no per-query state
shipping) and fans per-shard searches of a *batch* out across them.

Scatter protocol per batch (both rounds run in parallel across all
queries and shards, preserving the exactness argument of
:mod:`repro.shard.engine`):

1. **Home round** — every distinct query searches its best-bound (home)
   shard cold, establishing a per-query threshold ``f_k``.
2. **Verify round** — for each query, shards whose ``MINF`` bound does
   not strictly exceed ``f_k`` run warm-started with the home result
   (threshold propagation), usually terminating after a bound check.
3. **Merge** — candidate streams combine through
   :func:`~repro.topk.merge.merge_topk`, reproducing the single-engine
   ranking exactly.

Workers see a *snapshot*: the pool records the engine's update epoch at
fork time and re-forks transparently when location updates have been
applied since — serving-replica semantics, cheap because fork is
copy-on-write.  Requires the ``fork`` start method (POSIX); on
platforms without it, construction raises and callers fall back to the
in-process scatter.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.service.model import QueryRequest
from repro.topk.merge import merge_topk

#: worker-side engine reference, set by the pool initializer (the fork
#: start method passes initargs by memory inheritance, not pickling, so
#: auto-respawned replacement workers re-run the initializer with the
#: same engine and never see a stale or empty global)
_WORKER_ENGINE = None


def _init_worker(engine) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _run_shard_task(task):
    """Worker-side execution of one (shard, query) search."""
    sid, user, k, alpha, method, t, warm = task
    engine = _WORKER_ENGINE._engines[sid]
    initial = None
    if warm is not None:
        initial = TopKBuffer(k)
        for u, score, social, spatial in warm:
            initial.offer(u, score, social, spatial)
    return engine.query(user, k, alpha, method, t=t, initial=initial)


class ProcessScatterPool:
    """Multi-core batch scatter over a sharded engine.

        >>> from repro import gowalla_like
        >>> from repro.shard import ShardedGeoSocialEngine
        >>> from repro.shard.parallel import ProcessScatterPool
        >>> engine = ShardedGeoSocialEngine.from_dataset(
        ...     gowalla_like(n=300, seed=7), n_shards=2)
        >>> a, b = list(engine.located_users())[:2]
        >>> pool = ProcessScatterPool(engine, processes=2)
        >>> results = pool.query_many([a, b], k=5, alpha=0.3)
        >>> [r.users for r in results] == [engine.query(u, k=5).users for u in (a, b)]
        True
        >>> pool.close()

    Parameters
    ----------
    engine:
        A built :class:`~repro.shard.ShardedGeoSocialEngine`.
    processes:
        Worker count (default ``min(cpus, n_shards, 8)``).

    Not thread-safe: one coordinator drives the pool.  Location updates
    applied to ``engine`` between batches are picked up automatically
    (epoch check + re-fork); updates *during* a batch are the caller's
    responsibility to exclude, exactly as with ``engine.query``.
    """

    def __init__(self, engine, processes: int | None = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessScatterPool requires the 'fork' start method "
                "(POSIX); use the engine's in-process scatter instead"
            )
        self.engine = engine
        self.processes = (
            processes
            if processes is not None
            else max(1, min(os.cpu_count() or 1, engine.n_shards, 8))
        )
        self._ctx = multiprocessing.get_context("fork")
        self._pool = None
        self._forked_epoch = -1

    # -- lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        epoch = self.engine.update_epoch
        if self._pool is not None and epoch == self._forked_epoch:
            return self._pool
        self._teardown()
        self._pool = self._ctx.Pool(
            self.processes, initializer=_init_worker, initargs=(self.engine,)
        )
        self._forked_epoch = epoch
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        self._teardown()
        self._forked_epoch = -1

    def __enter__(self) -> "ProcessScatterPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------

    def query_many(
        self,
        requests: "Sequence[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> list[SSRQResult]:
        """Answer a batch with rankings identical to a sequential
        ``engine.query`` loop, fanning shard searches across worker
        processes (duplicate requests are computed once)."""
        reqs = [
            QueryRequest.coerce(item, k=k, alpha=alpha, method=method, t=t)
            for item in requests
        ]
        distinct: dict[QueryRequest, None] = dict.fromkeys(reqs)
        computed = self._execute_distinct(list(distinct))
        return [computed[req] for req in reqs]

    def _execute_distinct(
        self, reqs: "list[QueryRequest]"
    ) -> "dict[QueryRequest, SSRQResult]":
        engine = self.engine
        pool = self._ensure_pool()
        out: dict[QueryRequest, SSRQResult] = {}

        # Plan per query: delegated methods and unlocated users take the
        # inline path (they never scatter); the rest get a sorted
        # candidate-shard list from the pruning bounds.
        plans: list[tuple[QueryRequest, list[tuple[float, int]]]] = []
        for req in reqs:
            candidates = engine._scatter_plan(req.user, req.alpha, req.method)
            if candidates is None:
                out[req] = engine.query(req.user, req.k, req.alpha, req.method, t=req.t)
            else:
                plans.append((req, candidates))

        if not plans:
            return out

        # Round 1: home shards, cold, in parallel.
        home_tasks = [
            (cands[0][1], req.user, req.k, req.alpha, req.method, req.t, None)
            for req, cands in plans
        ]
        homes = pool.map(_run_shard_task, home_tasks)

        # Round 2: surviving shards, warm-started, in parallel.
        verify_tasks = []
        verify_owner: list[int] = []
        merged_buffers: list[TopKBuffer] = []
        stats_list: list[SearchStats] = []
        searched = [1] * len(plans)
        considered = [len(cands) for _, cands in plans]
        for i, ((req, cands), home) in enumerate(zip(plans, homes)):
            merged = merge_topk(req.k, [home.neighbors])
            merged_buffers.append(merged)
            stats = SearchStats()
            stats.merge(home.stats)
            stats_list.append(stats)
            warm = [
                (nb.user, nb.score, nb.social, nb.spatial) for nb in merged.neighbors()
            ]
            for bound, sid in cands[1:]:
                if bound > merged.fk:
                    continue
                verify_tasks.append(
                    (sid, req.user, req.k, req.alpha, req.method, req.t, warm)
                )
                verify_owner.append(i)
        for i, result in zip(verify_owner, pool.map(_run_shard_task, verify_tasks)):
            searched[i] += 1
            merged = merged_buffers[i]
            for nb in result:
                merged.offer(nb.user, nb.score, nb.social, nb.spatial)
            stats_list[i].merge(result.stats)

        for i, (req, cands) in enumerate(plans):
            stats = stats_list[i]
            stats.extra["shards_searched"] = searched[i]
            stats.extra["shards_pruned"] = considered[i] - searched[i]
            out[req] = SSRQResult(
                req.user, req.k, req.alpha, merged_buffers[i].neighbors(), stats
            )
        engine._record_scatter(len(plans), sum(considered), sum(searched))
        return out
