"""Warm process-backed scatter-gather: shard searches on real cores.

The scatter fan-out of :class:`~repro.shard.ShardedGeoSocialEngine` is
CPU-bound pure Python, so its thread pool only overlaps on GIL-free
builds.  :class:`ProcessScatterPool` is the multi-core execution
backend: it forks long-lived worker processes that inherit the
fully-built shard engines copy-on-write (no index serialisation, no
per-query state shipping), pins shard affinity (worker group *g* owns
the shards with ``sid % groups == g``, optionally *replicated* N ways
for read scaling), and fans per-shard searches of a batch out across
them over dedicated pipes.

**Delta shipping (the warm-pool invariant).**  Workers are *not* torn
down when the engine applies location updates.  Every update appends a
compact :class:`~repro.shard.journal.LocationDelta` to the engine's
journal; at the start of each batch the coordinator ships each worker
the journal suffix past its synced epoch down the worker's own task
pipe, and the worker replays it through the same
``_index_insert/_index_remove/_index_move`` primitives the
coordinator's ``move_user`` used (via
``ShardedGeoSocialEngine._replay_delta``), filtered to its pinned
shards.  Because the pipe is FIFO, deltas are always applied before
any task sent after them — that single ordering fact is the
**replica-coherence invariant**: every replica of a shard observes the
same prefix of the update stream as the coordinator did when it
dispatched the task, so replicated results are bit-identical to
unreplicated ones.

**Re-fork cost model.**  Replay costs O(deltas) cheap index operations
and keeps every lazily-built searcher cache warm; a fork costs a
process spawn plus copy-on-write faults and loses those caches.  The
pool therefore re-forks a worker only when replay is provably the
worse deal: the journal suffix was truncated (the worker's epoch fell
off the bounded ring) or it exceeds ``delta_budget`` records.  The
third re-fork trigger is structural: a
:meth:`~repro.service.QueryService.rebuild_engine` swap closes the old
engine (and with it this pool) and the replacement engine forks a
fresh pool from the rebuilt state — which is also how *edge* updates
reach workers: they fold into the graph only at rebuild, so the swap
is their delivery point and no edge replay protocol is needed.

**Overlapped scatter-merge.**  Per-shard candidate buffers stream back
as they complete and fold through the incremental
:class:`~repro.topk.merge.StreamingCombine` (NRA-style strict-``>``
admission), so one query's verify shards merge while another query's
home shard is still searching — no barrier on the slowest shard.
Exactness is unchanged from the in-process scatter: shards report
exact scores, the combine's buffer is order-independent, and a shard
is pruned only when its score lower bound *strictly* exceeds the
current ``f_k``.

**Crash resilience.**  A worker that dies mid-batch is detected via
its process sentinel, its pipe is drained of any already-sent results,
a replacement is forked from the *current* (post-delta) engine state,
and the lost in-flight tasks are re-dispatched warm-started from the
latest merged buffer — the batch result stays bit-identical to an
inline scatter.

Requires the ``fork`` start method (POSIX); on spawn-only platforms
construction raises :class:`RuntimeError` *before* any multiprocessing
context is built, and callers fall back to the in-process scatter.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Sequence

from repro.core.engine import resolve_dispatch
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.service.model import QueryRequest
from repro.shard.journal import LocationDelta
from repro.topk.merge import StreamingCombine
from repro.utils.validation import check_alpha, check_user

#: minimum located users before ``scatter_backend="auto"`` picks the
#: process pool: below this, fork + IPC overhead beats any core win
#: (tiny test engines stay inline; production-scale data goes multicore)
AUTO_MIN_USERS = 2048


class PoolClosedError(RuntimeError):
    """The pool was closed (possibly mid-batch, from another thread)."""


def resolve_scatter_backend(
    requested: str = "auto", *, n_shards: int = 1, located: int = 0
) -> str:
    """Resolve a requested scatter backend name to ``"inline"`` or
    ``"process"``.

    The ``REPRO_SCATTER_BACKEND`` environment variable overrides
    ``requested`` when set (operational escape hatch, mirroring
    ``REPRO_BACKEND`` for the kernels).  ``"auto"`` picks the process
    pool only where it can actually win: ``fork`` available, at least
    two cores, at least two shards, and at least :data:`AUTO_MIN_USERS`
    located users.

        >>> from repro.shard.parallel import resolve_scatter_backend
        >>> resolve_scatter_backend("inline", n_shards=8, located=10**6)
        'inline'
    """
    env = os.environ.get("REPRO_SCATTER_BACKEND", "").strip().lower()
    if env:
        requested = env
    if requested not in {"inline", "process", "auto"}:
        raise ValueError(
            f"unknown scatter backend {requested!r}; "
            "expected 'inline', 'process', or 'auto'"
        )
    if requested != "auto":
        return requested
    if (
        "fork" in multiprocessing.get_all_start_methods()
        and (os.cpu_count() or 1) >= 2
        and n_shards >= 2
        and located >= AUTO_MIN_USERS
    ):
        return "process"
    return "inline"


def _worker_main(conn, parent_end, engine, group: int, groups: int) -> None:
    """Worker process entry point (the pool initializer).

    Forked, so ``engine`` arrives by copy-on-write memory inheritance —
    a respawned replacement re-runs this initializer over the
    coordinator's *current* engine object and therefore starts from
    post-delta state.  The loop serves delta batches and shard tasks in
    pipe order (FIFO — the replica-coherence invariant) until EOF or an
    explicit exit message.
    """
    if parent_end is not None:
        parent_end.close()
    pinned = frozenset(
        sid for sid in range(engine.n_shards) if sid % groups == group
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "task":
            tid, sid, user, k, alpha, method, t, warm = msg[1:]
            start = time.perf_counter()
            try:
                shard = engine._engines[sid]
                initial = None
                if warm is not None:
                    initial = TopKBuffer(k)
                    for u, score, social, spatial in warm:
                        initial.offer(u, score, social, spatial)
                result = shard.query(user, k, alpha, method, t=t, initial=initial)
            except BaseException:
                try:
                    conn.send(("error", tid, traceback.format_exc()))
                except (BrokenPipeError, OSError):
                    break
                continue
            try:
                conn.send(("result", tid, result, time.perf_counter() - start))
            except (BrokenPipeError, OSError):
                break
        elif kind == "deltas":
            for record in msg[1]:
                engine._replay_delta(LocationDelta(*record), pinned)
        elif kind == "ping":
            try:
                conn.send(("pong", msg[1]))
            except (BrokenPipeError, OSError):
                break
        elif kind == "exit":
            break
    try:
        conn.close()
    except OSError:
        pass


class _Worker:
    """One pinned worker process and its pipe."""

    __slots__ = ("conn", "process", "group", "replica", "synced_epoch", "inflight")

    def __init__(self, conn, process, group: int, replica: int, epoch: int) -> None:
        self.conn = conn
        self.process = process
        self.group = group
        self.replica = replica
        #: engine update epoch this worker's state reflects
        self.synced_epoch = epoch
        #: tid -> _Task currently dispatched to this worker
        self.inflight: dict[int, "_Task"] = {}


class _Task:
    """One dispatched (shard, query) search."""

    __slots__ = ("tid", "plan", "sid", "home")

    def __init__(self, tid: int, plan: "_Plan", sid: int, home: bool) -> None:
        self.tid = tid
        self.plan = plan
        self.sid = sid
        self.home = home


class _Plan:
    """Coordinator-side state of one scatter query inside a batch."""

    __slots__ = (
        "user", "k", "alpha", "method", "t", "candidates", "combine",
        "pending", "inflight", "stats", "searched", "considered",
        "worker_time", "t0", "result",
    )

    def __init__(self, user, k, alpha, method, t, candidates) -> None:
        self.user = user
        self.k = k
        self.alpha = alpha
        self.method = method
        self.t = t
        self.candidates = candidates
        self.combine = StreamingCombine(k)
        #: sorted (bound, sid) not yet dispatched (verify wave)
        self.pending: list[tuple[float, int]] = list(candidates[1:])
        self.inflight = 0
        self.stats = SearchStats()
        self.searched = 0
        self.considered = len(candidates)
        self.worker_time = 0.0
        self.t0 = 0.0
        self.result: SSRQResult | None = None


class ProcessScatterPool:
    """Warm multi-core batch scatter over a sharded engine.

        >>> from repro import gowalla_like
        >>> from repro.shard import ShardedGeoSocialEngine
        >>> from repro.shard.parallel import ProcessScatterPool
        >>> engine = ShardedGeoSocialEngine.from_dataset(
        ...     gowalla_like(n=300, seed=7), n_shards=2, scatter_backend="inline")
        >>> a, b = list(engine.located_users())[:2]
        >>> pool = ProcessScatterPool(engine, processes=2)
        >>> results = pool.query_many([a, b], k=5, alpha=0.3)
        >>> [r.users for r in results] == [engine.query(u, k=5).users for u in (a, b)]
        True
        >>> pool.close()
        >>> engine.close()

    Parameters
    ----------
    engine:
        A built :class:`~repro.shard.ShardedGeoSocialEngine`.
    processes:
        Number of pinned worker *groups* (default
        ``min(cpus, n_shards, 8)``); group ``g`` owns the shards with
        ``sid % groups == g``.
    replicas:
        Workers per group (default 1).  Tasks round-robin across a
        group's replicas; delta shipping keeps every replica coherent,
        so read throughput scales without relaxing exactness.
    delta_budget:
        Maximum journal suffix a worker replays before a fresh fork is
        considered cheaper (default 4096; see the module docstring's
        cost model).

    Batches are serialized by an internal lock, so concurrent callers
    are safe; location updates applied to ``engine`` *between* batches
    are picked up by delta shipping, updates *during* a batch are the
    caller's responsibility to exclude, exactly as with
    ``engine.query``.  ``close()`` is idempotent and thread-safe, even
    mid-batch: an in-progress batch fails with
    :class:`PoolClosedError` instead of racing the crash-respawn path.
    """

    def __init__(
        self,
        engine,
        processes: int | None = None,
        *,
        replicas: int = 1,
        delta_budget: int = 4096,
    ) -> None:
        # The documented spawn-only failure mode: raise before any
        # multiprocessing context (and its machinery) is built.
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ProcessScatterPool requires the 'fork' start method "
                "(POSIX); use the engine's in-process scatter instead"
            )
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if delta_budget < 0:
            raise ValueError(f"delta_budget must be >= 0, got {delta_budget}")
        self.engine = engine
        self.processes = (
            processes
            if processes is not None
            else max(1, min(os.cpu_count() or 1, engine.n_shards, 8))
        )
        self.groups = max(1, min(self.processes, engine.n_shards))
        self.replicas = replicas
        self.delta_budget = delta_budget
        self._ctx = multiprocessing.get_context("fork")
        #: (group, replica) -> _Worker
        self._workers: dict[tuple[int, int], _Worker] = {}
        #: per-group round-robin replica cursor
        self._rr = [0] * self.groups
        self._lock = threading.Lock()        # serializes batches
        self._state_lock = threading.Lock()  # worker table + closed flag
        self._closed = False
        self._task_seq = 0
        #: tasks whose dispatch hit a dead worker's pipe; the event
        #: loop replaces the worker and retries them centrally
        self._undispatched: list[_Task] = []
        # lifetime counters (see info())
        self._forks = 0
        self._reforks = 0
        self._cold_refork_rounds = 0
        self._respawns = 0
        self._deltas_shipped = 0
        self._tasks = 0
        self._batches = 0

    # -- lifecycle -----------------------------------------------------

    def _spawn_locked(self, group: int, replica: int) -> _Worker:
        """Fork one pinned worker from the engine's current state
        (caller holds ``_state_lock``)."""
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_end, parent_end, self.engine, group, self.groups),
            daemon=True,
            name=f"ssrq-scatter-g{group}r{replica}",
        )
        process.start()
        child_end.close()
        worker = _Worker(parent_end, process, group, replica, self.engine.update_epoch)
        self._workers[(group, replica)] = worker
        self._forks += 1
        return worker

    def _sync_locked(self, worker: _Worker) -> bool:
        """Ship the journal suffix to one worker; ``False`` means replay
        is unavailable or over budget and the worker must re-fork.

        ``worker.synced_epoch`` only ever advances to the epoch of the
        last record actually shipped.  It must *not* be marked up to
        ``engine.update_epoch`` on an empty suffix: the update path
        bumps the epoch and appends the journal record as two steps
        under the engine's write lock, and this method reads the epoch
        without that lock — marking the worker at an epoch whose record
        it never received would make the in-flight delta invisible to
        every later sync (the suffix query would start past it), leaving
        the replica permanently stale.  A suffix of exactly
        ``delta_budget`` records still ships (the cutoff is strictly
        *over* budget — re-forking at the boundary would throw away a
        replay that was explicitly budgeted for).
        """
        if worker.synced_epoch >= self.engine.update_epoch:
            return True
        journal = getattr(self.engine, "_journal", None)
        records = journal.since(worker.synced_epoch) if journal is not None else None
        if records is None or len(records) > self.delta_budget:
            return False
        if records:
            try:
                worker.conn.send(
                    ("deltas", [
                        (d.epoch, d.user, d.x, d.y, d.old_sid, d.new_sid)
                        for d in records
                    ])
                )
            except (BrokenPipeError, OSError):
                return False  # worker died under us: re-fork it
            self._deltas_shipped += len(records)
            worker.synced_epoch = records[-1].epoch
        return True

    def _ensure_workers(self) -> None:
        """Spawn missing workers and bring every live one coherent with
        the engine (delta shipping, re-forking only over budget)."""
        with self._state_lock:
            if self._closed:
                raise PoolClosedError("ProcessScatterPool is closed")
            reforked = False
            for group in range(self.groups):
                for replica in range(self.replicas):
                    worker = self._workers.get((group, replica))
                    if worker is not None and not worker.process.is_alive():
                        self._retire_locked(worker)
                        worker = None
                        self._respawns += 1
                    if worker is None:
                        self._spawn_locked(group, replica)
                        continue
                    if not self._sync_locked(worker):
                        self._retire_locked(worker)
                        self._spawn_locked(group, replica)
                        self._reforks += 1
                        reforked = True
            if reforked:
                self._cold_refork_rounds += 1

    def _retire_locked(self, worker: _Worker) -> None:
        self._workers.pop((worker.group, worker.replica), None)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)

    def warm_up(self) -> None:
        """Fork (or delta-sync) every worker and round-trip a ping, so
        a subsequent batch pays no spawn latency — benchmark warm legs
        call this before timing."""
        self._ensure_workers()
        with self._state_lock:
            workers = list(self._workers.values())
        for worker in workers:
            worker.conn.send(("ping", worker.replica))
        for worker in workers:
            msg = worker.conn.recv()
            if msg[0] != "pong":
                raise RuntimeError(f"unexpected warm-up reply {msg[0]!r}")

    def close(self) -> None:
        """Terminate the workers (idempotent, thread-safe, allowed
        mid-batch: the batch fails with :class:`PoolClosedError` rather
        than racing a respawn against the teardown)."""
        with self._state_lock:
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            try:
                worker.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ProcessScatterPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def info(self) -> dict:
        """Lifetime pool counters (forks, re-forks, respawns, shipped
        deltas) — the warm-pool benchmark's evidence that updates ride
        the journal instead of killing the pool."""
        with self._state_lock:
            alive = sum(1 for w in self._workers.values() if w.process.is_alive())
            return {
                "processes": self.processes,
                "groups": self.groups,
                "replicas": self.replicas,
                "workers_alive": alive,
                "forks": self._forks,
                "reforks": self._reforks,
                "cold_refork_rounds": self._cold_refork_rounds,
                "respawns": self._respawns,
                "deltas_shipped": self._deltas_shipped,
                "tasks": self._tasks,
                "batches": self._batches,
                "delta_budget": self.delta_budget,
                "closed": self._closed,
            }

    # -- serving -------------------------------------------------------

    def query_one(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> SSRQResult:
        """Answer one SSRQ (``query_many`` of a single request)."""
        return self.query_many([user], k=k, alpha=alpha, method=method, t=t)[0]

    def query_many(
        self,
        requests: "Sequence[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> list[SSRQResult]:
        """Answer a batch with rankings identical to a sequential
        ``engine.query`` loop, fanning shard searches across the warm
        worker processes (duplicate requests are computed once,
        ``method="auto"`` is resolved once per distinct request at the
        coordinator and observed by the planner at merge time)."""
        reqs = [
            QueryRequest.coerce(item, k=k, alpha=alpha, method=method, t=t)
            for item in requests
        ]
        distinct: dict[QueryRequest, None] = dict.fromkeys(reqs)
        computed = self._execute_distinct(list(distinct))
        return [computed[req] for req in reqs]

    def _execute_distinct(
        self, reqs: "list[QueryRequest]"
    ) -> "dict[QueryRequest, SSRQResult]":
        from repro.shard.engine import DELEGATED_METHODS

        engine = self.engine
        out: dict[QueryRequest, SSRQResult] = {}
        plans: list[_Plan] = []
        decisions: list = []
        for req in reqs:
            check_user(req.user, engine.graph.n)
            check_alpha(req.alpha)
            routed, decision = resolve_dispatch(
                engine, req.user, req.k, req.alpha, req.method, req.t
            )
            candidates = (
                None
                if routed in DELEGATED_METHODS
                else engine._scatter_plan(req.user, req.alpha, routed)
            )
            if candidates is None:
                # Delegated method, or an unlocated query user whose
                # spatial searcher must raise exactly like the single
                # engine's.  Call the delegate shard engine directly —
                # never engine.query, which may route back here.
                result = engine._delegate_engine().query(
                    req.user, req.k, req.alpha, routed, t=req.t
                )
                result.method = routed
                if routed in DELEGATED_METHODS:
                    with engine._scatter_lock:
                        engine.scatter.delegated_queries += 1
                if decision is not None:
                    engine.planner.observe(decision, result.stats.elapsed)
                out[req] = result
            else:
                plans.append(
                    _Plan(req.user, req.k, req.alpha, routed, req.t, candidates)
                )
                decisions.append((req, decision))

        if plans:
            self._execute_scatter(plans)
            for plan, (req, decision) in zip(plans, decisions):
                out[req] = plan.result
                if decision is not None:
                    # Satellite fix: the planner now sees process-backed
                    # scatter costs too, not just inline ones — observed
                    # at merge time with the coordinator wall clock.
                    engine.planner.observe(decision, plan.result.stats.elapsed)
            engine._record_scatter(
                len(plans),
                sum(p.considered for p in plans),
                sum(p.searched for p in plans),
            )
        return out

    def scatter_one(
        self, user: int, k: int, alpha: float, method: str, t: int | None
    ) -> SSRQResult:
        """Execute one *already-routed* scatter query (the engine's
        ``_scatter_query`` hook; planner resolution/observation stays
        with the caller)."""
        candidates = self.engine._scatter_plan(user, alpha, method)
        if candidates is None:
            return self.engine._delegate_engine().query(user, k, alpha, method, t=t)
        plan = _Plan(user, k, alpha, method, t, candidates)
        self._execute_scatter([plan])
        self.engine._record_scatter(1, plan.considered, plan.searched)
        return plan.result

    # -- the overlapped event loop -------------------------------------

    def _dispatch(self, task: _Task, warm) -> None:
        group = task.sid % self.groups
        replica = self._rr[group]
        self._rr[group] = (replica + 1) % self.replicas
        worker = self._workers.get((group, replica))
        if worker is None:
            raise PoolClosedError(
                "ProcessScatterPool was closed while a batch was in flight"
            )
        worker.inflight[task.tid] = task
        plan = task.plan
        try:
            worker.conn.send(
                ("task", task.tid, task.sid, plan.user, plan.k, plan.alpha,
                 plan.method, plan.t, warm)
            )
        except (BrokenPipeError, OSError):
            # The worker died between crash detection windows; park the
            # task for the event loop to retry after replacement.
            worker.inflight.pop(task.tid, None)
            self._undispatched.append(task)
            return
        self._tasks += 1

    def _finalize(self, plan: _Plan) -> None:
        stats = plan.stats
        stats.extra["shards_searched"] = plan.searched
        stats.extra["shards_pruned"] = plan.considered - plan.searched
        stats.extra["worker_time"] = plan.worker_time
        stats.elapsed = time.perf_counter() - plan.t0
        plan.result = SSRQResult(
            plan.user, plan.k, plan.alpha, plan.combine.result().neighbors(), stats
        )
        plan.result.method = plan.method

    def _execute_scatter(self, plans: "list[_Plan]") -> None:
        """Run a batch of scatter plans to completion, overlapping
        scatter with merge: results fold as they arrive, each home
        completion immediately fans out that query's still-admissible
        verify shards warm-started from its merged buffer."""
        with self._lock:
            self._ensure_workers()
            self._batches += 1
            self._undispatched.clear()
            table: dict[int, _Task] = {}

            def submit(plan: _Plan, sid: int, home: bool) -> None:
                self._task_seq += 1
                task = _Task(self._task_seq, plan, sid, home)
                table[task.tid] = task
                plan.inflight += 1
                self._dispatch(task, None if home else plan.combine.warm())

            def on_message(worker: _Worker, msg) -> None:
                kind = msg[0]
                if kind == "result":
                    _, tid, result, worker_elapsed = msg
                    task = table.pop(tid, None)
                    worker.inflight.pop(tid, None)
                    if task is None:
                        return  # stale duplicate from a drained crash
                    plan = task.plan
                    plan.searched += 1
                    plan.worker_time += worker_elapsed
                    plan.stats.merge(result.stats)
                    plan.combine.fold(result)
                    if task.home:
                        # Fan out the verify wave: bounds are sorted
                        # ascending and f_k only tightens, so the first
                        # strictly-inadmissible bound prunes the rest.
                        for bound, sid in plan.pending:
                            if not plan.combine.admits(bound):
                                break
                            submit(plan, sid, home=False)
                        plan.pending = []
                    plan.inflight -= 1
                    if plan.inflight == 0 and not plan.pending:
                        self._finalize(plan)
                elif kind == "error":
                    raise RuntimeError(
                        f"shard task failed in scatter worker:\n{msg[2]}"
                    )
                # "pong" and anything else: ignore

            for plan in plans:
                plan.t0 = time.perf_counter()
                if plan.candidates:
                    submit(plan, plan.candidates[0][1], home=True)
                else:
                    self._finalize(plan)

            while table:
                if self._undispatched:
                    # A send hit a dead pipe: replace every dead worker
                    # (recovering their other in-flight tasks too), then
                    # retry the parked dispatches.
                    with self._state_lock:
                        dead = [
                            w for w in self._workers.values()
                            if not w.process.is_alive()
                        ]
                    for worker in dead:
                        self._recover_worker(worker, table, on_message)
                    self._ensure_workers()
                    retry, self._undispatched = self._undispatched, []
                    for task in retry:
                        if task.tid in table:
                            self._dispatch(
                                task,
                                None if task.home and task.plan.combine.folded == 0
                                else task.plan.combine.warm(),
                            )
                    continue
                with self._state_lock:
                    busy = [w for w in self._workers.values() if w.inflight]
                if not busy:
                    # Nothing in flight yet table is nonempty: every
                    # owner died before the tasks ran; re-dispatch.
                    self._recover(table)
                    continue
                waitables = [w.conn for w in busy] + [w.process.sentinel for w in busy]
                by_conn = {w.conn: w for w in busy}
                by_sentinel = {w.process.sentinel: w for w in busy}
                ready = mp_connection.wait(waitables, timeout=5.0)
                crashed: list[_Worker] = []
                for item in ready:
                    worker = by_conn.get(item)
                    if worker is not None:
                        try:
                            msg = worker.conn.recv()
                        except (EOFError, OSError):
                            crashed.append(worker)
                            continue
                        on_message(worker, msg)
                    else:
                        crashed.append(by_sentinel[item])
                for worker in crashed:
                    if worker.inflight:
                        self._recover_worker(worker, table, on_message)
                if not ready:
                    with self._state_lock:
                        dead = [
                            w for w in self._workers.values()
                            if w.inflight and not w.process.is_alive()
                        ]
                    for worker in dead:
                        self._recover_worker(worker, table, on_message)

    def _recover_worker(self, worker: _Worker, table, on_message) -> None:
        """Drain a dead worker's pipe (results it sent before dying are
        still valid), respawn a replacement forked from the current
        post-delta engine state, and re-dispatch what was lost."""
        while True:
            try:
                if not worker.conn.poll(0):
                    break
                msg = worker.conn.recv()
            except Exception:
                break
            on_message(worker, msg)
        orphans = [t for t in worker.inflight.values() if t.tid in table]
        worker.inflight.clear()
        with self._state_lock:
            if self._closed:
                raise PoolClosedError(
                    "ProcessScatterPool was closed while a batch was in flight"
                )
            self._retire_locked(worker)
            self._spawn_locked(worker.group, worker.replica)
            self._respawns += 1
        for task in orphans:
            # Warm-start from the latest merged buffer (tighter than the
            # original dispatch saw — pruning only improves).
            self._dispatch(
                task,
                None if task.home and task.plan.combine.folded == 0
                else task.plan.combine.warm(),
            )

    def _recover(self, table: "dict[int, _Task]") -> None:
        """Re-dispatch tasks whose owners all vanished (rare: every
        owning worker crashed between dispatch and wait)."""
        with self._state_lock:
            if self._closed:
                raise PoolClosedError(
                    "ProcessScatterPool was closed while a batch was in flight"
                )
        self._ensure_workers()
        for task in list(table.values()):
            self._dispatch(
                task,
                None if task.home and task.plan.combine.folded == 0
                else task.plan.combine.warm(),
            )
