"""Spatial partitioners: user → shard assignment by location.

A :class:`Partitioner` is a pure, total function from a coordinate to a
shard id.  Totality matters — the dynamic-location setting moves users
anywhere, including outside the bounding box the partitioner was fitted
on — so every partitioner treats its outermost regions as unbounded
(grid cells clamp, k-d half-planes extend to infinity).

Two concrete families:

- :class:`GridPartitioner` — an ``nx x ny`` regular tiling of the data
  bounding box, the spatial analogue of the single-level SPA grid;
- :class:`KDTreePartitioner` — recursive median splits of the located
  population, yielding balanced shards even under skewed ("urban")
  spatial distributions.

Unlocated users belong to no shard: at ``alpha < 1`` they cannot score
finitely (their spatial distance is infinite), and pure-social queries
bypass the spatial partitioning entirely.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.spatial.point import BBox, LocationTable


class Partitioner(ABC):
    """Assignment of the plane to ``n_shards`` disjoint regions.

        >>> from repro import LocationTable
        >>> from repro.shard import GridPartitioner
        >>> table = LocationTable.from_dict(4, {0: (0.1, 0.1), 1: (0.9, 0.9)})
        >>> part = GridPartitioner.fit(table, 4)
        >>> part.n_shards, part.shard_of(0.1, 0.1) != part.shard_of(0.9, 0.9)
        (4, True)
    """

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """Number of regions (shard ids are ``0 .. n_shards - 1``)."""

    @abstractmethod
    def shard_of(self, x: float, y: float) -> int:
        """The shard owning point ``(x, y)`` (total over the plane)."""

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{type(self).__name__}(n_shards={self.n_shards})"

    @abstractmethod
    def to_config(self) -> dict:
        """JSON-serialisable description from which :func:`from_config`
        reconstructs an identical partitioner — identical ``shard_of``
        on every point of the plane, which is what keeps a restored
        sharded engine's ownership invariant intact."""

    @staticmethod
    def from_config(config: dict) -> "Partitioner":
        """Inverse of :meth:`to_config` (dispatches on ``kind``)."""
        kind = config.get("kind")
        if kind == "grid":
            return GridPartitioner._from_config(config)
        if kind == "kd":
            return KDTreePartitioner._from_config(config)
        raise ValueError(f"unknown partitioner kind {kind!r} in config")


class GridPartitioner(Partitioner):
    """Regular ``nx x ny`` tiling of a bounding box.

    Points outside the fitted box clamp to the border tiles, so border
    regions are conceptually unbounded outward — exactly like the SPA
    grid's border cells.

        >>> from repro.shard import GridPartitioner
        >>> from repro.spatial.point import BBox
        >>> part = GridPartitioner(BBox(0.0, 0.0, 1.0, 1.0), nx=2, ny=2)
        >>> [part.shard_of(x, y) for x, y in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (5.0, 5.0)]]
        [0, 1, 2, 3]
    """

    def __init__(self, bbox: BBox, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
        self.bbox = bbox
        self.nx = nx
        self.ny = ny
        self.cell_w = (bbox.width / nx) or 1.0
        self.cell_h = (bbox.height / ny) or 1.0

    @property
    def n_shards(self) -> int:
        return self.nx * self.ny

    def shard_of(self, x: float, y: float) -> int:
        ix = int((x - self.bbox.minx) / self.cell_w)
        iy = int((y - self.bbox.miny) / self.cell_h)
        if ix < 0:
            ix = 0
        elif ix >= self.nx:
            ix = self.nx - 1
        if iy < 0:
            iy = 0
        elif iy >= self.ny:
            iy = self.ny - 1
        return iy * self.nx + ix

    @classmethod
    def fit(cls, locations: LocationTable, n_shards: int) -> "GridPartitioner":
        """A tiling of the located users' bounding box into exactly
        ``n_shards`` tiles, the longer box side getting the larger
        factor (7 shards over a wide box → 7 columns)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        bbox = locations.bbox()
        small = int(math.isqrt(n_shards))
        while n_shards % small:
            small -= 1
        large = n_shards // small
        if bbox.width >= bbox.height:
            nx, ny = large, small
        else:
            nx, ny = small, large
        return cls(bbox, nx, ny)

    def describe(self) -> str:
        return f"GridPartitioner({self.nx}x{self.ny} over {self.bbox!r})"

    def to_config(self) -> dict:
        return {
            "kind": "grid",
            "bbox": [self.bbox.minx, self.bbox.miny, self.bbox.maxx, self.bbox.maxy],
            "nx": self.nx,
            "ny": self.ny,
        }

    @classmethod
    def _from_config(cls, config: dict) -> "GridPartitioner":
        minx, miny, maxx, maxy = (float(v) for v in config["bbox"])
        return cls(BBox(minx, miny, maxx, maxy), int(config["nx"]), int(config["ny"]))


@dataclass(frozen=True)
class _Split:
    """Internal k-d node: ``axis == 0`` splits on x, ``1`` on y; points
    with coordinate < ``threshold`` descend left."""

    axis: int
    threshold: float
    left: "object"  # _Split | int (leaf shard id)
    right: "object"


class KDTreePartitioner(Partitioner):
    """Balanced binary-space partitioning by recursive median splits.

    Fitting repeatedly splits the most populous region at the median of
    its wider axis until ``n_shards`` regions exist — so any shard
    count is supported, not just powers of two — then numbers leaves in
    a deterministic in-order walk.  Half-planes extend to infinity:
    every point of the plane, including future out-of-box moves, has an
    owner.

        >>> from repro import LocationTable
        >>> from repro.shard import KDTreePartitioner
        >>> table = LocationTable.from_dict(
        ...     4, {0: (0.0, 0.0), 1: (0.1, 0.0), 2: (0.9, 1.0), 3: (1.0, 1.0)})
        >>> part = KDTreePartitioner.fit(table, 2)
        >>> part.shard_of(0.05, 0.0) != part.shard_of(0.95, 1.0)
        True
    """

    def __init__(self, root: "object", n_shards: int) -> None:
        self._root = root
        self._n_shards = n_shards

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, x: float, y: float) -> int:
        node = self._root
        while isinstance(node, _Split):
            coord = x if node.axis == 0 else y
            node = node.left if coord < node.threshold else node.right
        return node

    @classmethod
    def fit(cls, locations: LocationTable, n_shards: int) -> "KDTreePartitioner":
        """Fit to the located users (requires at least one)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        points = [
            (locations.xs[u], locations.ys[u]) for u in locations.located_users()
        ]
        if not points:
            raise ValueError("cannot fit a partitioner with no located users")
        def split_leaf(pts: list[tuple[float, float]]):
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            spread_x = (max(xs) - min(xs)) if xs else 0.0
            spread_y = (max(ys) - min(ys)) if ys else 0.0
            axis = 0 if spread_x >= spread_y else 1
            ordered = sorted(p[axis] for p in pts)
            mid = len(ordered) // 2
            threshold = (ordered[mid - 1] + ordered[mid]) / 2.0 if mid else ordered[0]
            left = [p for p in pts if p[axis] < threshold]
            right = [p for p in pts if p[axis] >= threshold]
            if not left or not right:
                # Degenerate (all coordinates equal on this axis): try the
                # other axis, else accept an empty side — empty shards are
                # legal and simply never searched.
                other = 1 - axis
                ordered_o = sorted(p[other] for p in pts)
                mid_o = len(ordered_o) // 2
                threshold_o = (
                    (ordered_o[mid_o - 1] + ordered_o[mid_o]) / 2.0 if mid_o else ordered_o[0]
                )
                left_o = [p for p in pts if p[other] < threshold_o]
                right_o = [p for p in pts if p[other] >= threshold_o]
                if left_o and right_o:
                    return other, threshold_o, left_o, right_o
            return axis, threshold, left, right

        # A small recursive structure: node = leaf(list) | (axis, thr, l, r)
        def grow(node, remaining: int):
            """Split `node` (a point list) into `remaining` leaves."""
            if remaining <= 1:
                return node
            axis, threshold, left, right = split_leaf(node)
            # Apportion leaf budget by population (at least one each).
            total = len(left) + len(right)
            left_budget = round(remaining * (len(left) / total)) if total else remaining // 2
            left_budget = max(1, min(remaining - 1, left_budget))
            return (
                axis,
                threshold,
                grow(left, left_budget),
                grow(right, remaining - left_budget),
            )

        shape = grow(points, n_shards)

        counter = [0]

        def materialise(node):
            if isinstance(node, tuple):
                axis, threshold, left, right = node
                left_m = materialise(left)
                right_m = materialise(right)
                return _Split(axis, threshold, left_m, right_m)
            leaf_id = counter[0]
            counter[0] += 1
            return leaf_id

        root = materialise(shape)
        if counter[0] != n_shards:
            raise AssertionError(
                f"partitioner produced {counter[0]} leaves, wanted {n_shards}"
            )
        return cls(root, n_shards)

    def describe(self) -> str:
        return f"KDTreePartitioner(n_shards={self._n_shards})"

    def to_config(self) -> dict:
        def encode(node):
            if isinstance(node, _Split):
                return {
                    "axis": node.axis,
                    "threshold": node.threshold,
                    "left": encode(node.left),
                    "right": encode(node.right),
                }
            return node  # leaf shard id

        return {"kind": "kd", "n_shards": self._n_shards, "tree": encode(self._root)}

    @classmethod
    def _from_config(cls, config: dict) -> "KDTreePartitioner":
        def decode(node):
            if isinstance(node, dict):
                return _Split(
                    int(node["axis"]),
                    float(node["threshold"]),
                    decode(node["left"]),
                    decode(node["right"]),
                )
            return int(node)

        return cls(decode(config["tree"]), int(config["n_shards"]))


def make_partitioner(
    locations: LocationTable, n_shards: int, kind: str = "grid"
) -> Partitioner:
    """Fit a partitioner of the requested ``kind`` (``"grid"`` or
    ``"kd"``) to the located users."""
    if kind == "grid":
        return GridPartitioner.fit(locations, n_shards)
    if kind == "kd":
        return KDTreePartitioner.fit(locations, n_shards)
    raise ValueError(f"unknown partitioner kind {kind!r}; choose 'grid' or 'kd'")
