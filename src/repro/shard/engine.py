"""Sharded scatter-gather SSRQ engine.

:class:`ShardedGeoSocialEngine` partitions users across N spatial
shards and answers every query by scatter-gather: per-shard top-k
searches over member-filtered indexes, merged through the
:func:`~repro.topk.merge.merge_topk` combiner, with provably
non-contributing shards pruned by a shard-level ``MINF`` bound
(:mod:`repro.shard.bounds`).

**Why results are identical to one big engine.**  Every shard engine
shares the *full* social graph, the *global* location table, the
landmark index, and the normalization — so any score it reports is the
exact global score.  A shard's spatial indexes cover only its members,
so its local top-k ranks a *superset of its members* (social-stream
methods may also surface a few non-members; duplicates collapse in the
merge).  Any user of the global top-k is a member of exactly one shard
and therefore survives its home shard's local top-k; merging the shard
streams through the same ``(score, user)`` tie-break every single-engine
algorithm uses reproduces the global ranking exactly, including order.
Methods whose distances come from forward Dijkstra streams (SPA, TSA
and variants, SFA, bruteforce) reproduce the single engine's results
*bit-identically*, raw distances included, because a forward Dijkstra
distance depends only on the (unique) shortest path, not the schedule;
the AIS family's bidirectional evaluations sum forward+backward parts
at a schedule-dependent meeting vertex, so its scores may differ from
the single engine's by float associativity (≤ 1 ulp — the same noise
the single engine shows between its own methods) while the rankings
stay identical.

**Why pruning is exact.**  A shard's bound lower-bounds each member's
score (Theorem 1 lifted to the partition); a shard is skipped only when
its bound *strictly* exceeds the current merged ``f_k``, which only
tightens as shards merge — so every skipped member scores strictly
worse than the final k-th answer and could not even win a tie-break.

**Why it is fast.**  Social ties concentrate in geographic cells
(Watts–Dodds–Newman; Herrera-Yagüe et al.), so both score ingredients
are small exactly where the query lives: the home shard (searched
first — its bound is 0) usually fills the top-k, and remote shards
prune.  The survivors run in parallel over
:class:`~repro.utils.concurrency.TaskPool`.

Methods whose candidate stream is purely social (``sfa``, ``sfa-ch``,
``bruteforce``, and everything at ``alpha == 1``) never touch a spatial
index; they are delegated to a single shard engine, whose shared
graph + global table make the answer globally exact.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.backend import Kernels, resolve_backend
from repro.core.engine import (
    AUTO,
    GeoSocialEngine,
    _close_cached_services,
    _service_backed_query_many,
    resolve_dispatch,
    route_method,
)
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult
from repro.core.stats import SearchStats
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.shard.bounds import ShardBounds
from repro.shard.journal import DeltaJournal, LocationDelta
from repro.shard.partitioner import Partitioner, make_partitioner
from repro.social.cache import DEFAULT_SOCIAL_CACHE_BYTES, SocialColumnCache
from repro.social.scan import dense_scan
from repro.spatial.point import LocationTable
from repro.topk.merge import merge_topk
from repro.utils.concurrency import ReadWriteLock, TaskPool
from repro.utils.validation import check_alpha, check_budget, check_k, check_user

if TYPE_CHECKING:
    from repro.plan.planner import AdaptivePlanner
    from repro.service.model import QueryRequest

INF = math.inf

#: methods answered by one shard engine (no spatial index involved:
#: the shared graph and global location table make them globally exact;
#: "approx" scores global columnar sketches, so it never scatters)
DELEGATED_METHODS = frozenset({"sfa", "sfa-ch", "bruteforce", "approx"})

#: scatter methods eligible for the coordinator's column-scan bypass:
#: forward-deterministic, so a cached full social column answers the
#: whole query in one dense scan that is bit-identical to the merged
#: scatter result (delegated FD methods — sfa, bruteforce — consult the
#: shared cache inside the delegate shard engine instead)
_COLUMN_SCAN_METHODS = frozenset({"spa", "tsa", "tsa-plain", "tsa-qc"})


@dataclass
class ScatterStats:
    """Cumulative scatter-gather counters of one sharded engine.

        >>> from repro.shard.engine import ScatterStats
        >>> stats = ScatterStats(scatter_queries=2, shards_considered=8, shards_searched=3)
        >>> stats.shards_pruned, round(stats.pruned_fraction, 3)
        (5, 0.833)
    """

    #: scatter-gather queries answered (delegated ones excluded)
    scatter_queries: int = 0
    #: queries answered by a single delegated shard engine
    delegated_queries: int = 0
    #: nonempty shards that were candidates across all scatter queries
    shards_considered: int = 0
    #: per-shard searches actually executed
    shards_searched: int = 0
    #: scatter-eligible queries answered at the coordinator by one
    #: dense scan over a cached social column (no shard was searched)
    column_scans: int = 0

    @property
    def shards_pruned(self) -> int:
        return self.shards_considered - self.shards_searched

    @property
    def pruned_fraction(self) -> float:
        """Fraction of *non-home* candidate shards skipped by the bound
        (the home shard is always searched)."""
        prunable = self.shards_considered - self.scatter_queries
        return self.shards_pruned / prunable if prunable > 0 else 0.0

    def snapshot(self) -> dict:
        return {
            "scatter_queries": self.scatter_queries,
            "delegated_queries": self.delegated_queries,
            "shards_considered": self.shards_considered,
            "shards_searched": self.shards_searched,
            "shards_pruned": self.shards_pruned,
            "pruned_fraction": self.pruned_fraction,
            "column_scans": self.column_scans,
        }


class ShardedGeoSocialEngine:
    """Spatially partitioned SSRQ engine with the single-engine API.

        >>> from repro import gowalla_like
        >>> from repro.shard import ShardedGeoSocialEngine
        >>> dataset = gowalla_like(n=300, seed=7)
        >>> sharded = ShardedGeoSocialEngine.from_dataset(dataset, n_shards=4)
        >>> result = sharded.query(user=0, k=5, alpha=0.3, method="ais")
        >>> result.users == sharded.query(0, 5, 0.3, method="bruteforce").users
        True

    Drop-in for :class:`~repro.core.engine.GeoSocialEngine` wherever the
    service layer is concerned: same ``query``/``query_many``/update
    methods, same ``rw_lock``/listener contracts, bit-identical
    rankings.

    Parameters
    ----------
    graph, locations:
        The social graph and the *global* user location table (shared
        by every shard engine; at least one located user is required).
    n_shards:
        Number of spatial partitions (ignored when ``partitioner`` is
        given).
    partitioner:
        A pre-fitted :class:`~repro.shard.partitioner.Partitioner`, or
        ``None`` to fit one of ``partitioner_kind`` to the data.
    partitioner_kind:
        ``"grid"`` (regular tiling, default) or ``"kd"`` (balanced
        median splits).
    max_workers:
        Worker-pool width for the parallel scatter phase (default:
        ``min(4, cpus, n_shards)``; ``1`` scatters sequentially with
        progressive pruning).
    shard_s:
        Grid fanout of each shard's indexes (default: ``s / sqrt(N)``,
        keeping per-cell population comparable to the single engine's;
        results never depend on it, only search cost does).
    num_landmarks, landmark_strategy, s, seed, normalization, default_t:
        As on :class:`~repro.core.engine.GeoSocialEngine`; landmarks
        and normalization are computed once and shared by every shard.
    landmarks:
        Optional pre-built landmark index to share (rebuilt from the
        graph when omitted).
    backend:
        Candidate-evaluation backend (see
        :func:`repro.backend.resolve_backend`), resolved **once** here
        and propagated to every shard engine — a sharded deployment
        never mixes backends, and :meth:`with_graph` rebuilds (hence
        :meth:`~repro.service.QueryService.rebuild_engine`) preserve
        the resolved choice.
    scatter_backend:
        Scatter *execution* backend: ``"inline"`` (threads in this
        process), ``"process"`` (the warm
        :class:`~repro.shard.parallel.ProcessScatterPool` of pinned,
        delta-synced fork workers — the production path on real
        cores), or ``"auto"`` (default: process where it can win —
        ``fork`` available, ≥2 cores, ≥2 shards, and at least
        :data:`~repro.shard.parallel.AUTO_MIN_USERS` located users —
        inline otherwise).  Overridable via the
        ``REPRO_SCATTER_BACKEND`` environment variable.  Results are
        bit-identical either way.
    replicas:
        Worker processes per shard group under the process backend
        (read replicas, round-robin dispatch, delta-stream coherence).
    journal_capacity:
        Bounded length of the location-delta journal that keeps warm
        workers coherent; a worker whose epoch falls off the ring
        re-forks instead of replaying.
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        *,
        n_shards: int = 4,
        partitioner: Partitioner | None = None,
        partitioner_kind: str = "grid",
        max_workers: int | None = None,
        num_landmarks: int = 8,
        landmark_strategy: str = "farthest",
        s: int = 10,
        shard_s: int | None = None,
        seed: int = 0,
        normalization: Normalization | None = None,
        default_t: int = 500,
        landmarks: LandmarkIndex | None = None,
        backend: "str | Kernels" = "auto",
        planner: "AdaptivePlanner | None" = None,
        scatter_backend: str = "auto",
        replicas: int = 1,
        journal_capacity: int = 8192,
        social_cache_bytes: int | None = None,
        social_cache: "SocialColumnCache | None" = None,
        _shard_indexes: dict | None = None,
    ) -> None:
        if len(locations) != graph.n:
            raise ValueError(
                f"location table covers {len(locations)} users but the graph "
                f"has {graph.n} vertices"
            )
        if locations.n_located < 1:
            raise ValueError(
                "spatial sharding requires at least one located user "
                "(there is nothing to partition otherwise)"
            )
        self.graph = graph
        self.locations = locations
        self.s = s
        self.seed = seed
        self.default_t = default_t
        self.landmark_strategy = landmark_strategy
        self.partitioner_kind = partitioner_kind
        #: kernels + resolved backend name, shared by every shard engine
        self.kernels = resolve_backend(backend)
        self.backend = self.kernels.name
        #: ONE social column cache shared by every shard engine: a
        #: column is a whole-graph object (shards share the full social
        #: graph), so whichever shard pays for an expansion, every other
        #: shard — and the coordinator's scatter bypass — reuses it
        if social_cache is not None:
            self.social_cache: "SocialColumnCache | None" = social_cache
        else:
            budget = (
                DEFAULT_SOCIAL_CACHE_BYTES
                if social_cache_bytes is None
                else social_cache_bytes
            )
            self.social_cache = (
                SocialColumnCache(graph.n, self.kernels, budget) if budget > 0 else None
            )
        self.landmarks = (
            landmarks
            if landmarks is not None
            else LandmarkIndex.build(graph, num_landmarks, landmark_strategy, seed)
        )
        self.normalization = (
            normalization
            if normalization is not None
            else Normalization.estimate(graph, locations, seed=seed)
        )
        self.partitioner = (
            partitioner
            if partitioner is not None
            else make_partitioner(locations, n_shards, partitioner_kind)
        )
        # Per-shard grid fanout: a shard covers ~1/N of the users, so a
        # full-size s² x s² leaf grid per shard would multiply index
        # cells per user by N.  Scaling s by 1/sqrt(N) keeps per-cell
        # population comparable to the single engine's (results never
        # depend on s — only search cost does).
        self.shard_s = (
            shard_s
            if shard_s is not None
            else max(2, round(s / math.sqrt(self.partitioner.n_shards)))
        )
        self.max_workers = (
            max_workers
            if max_workers is not None
            else max(1, min(4, os.cpu_count() or 1, self.partitioner.n_shards))
        )

        #: shared ``ais-cache`` neighbour lists: they depend only on the
        #: (shared) graph, so every shard engine reuses one store
        #: instead of re-running the truncated Dijkstras per shard;
        #: guarded by one shared build lock installed on every shard
        self._neighbor_caches: dict = {}
        self._build_lock = threading.RLock()
        #: the method="auto" resolver — one per *sharded* engine, so a
        #: query is resolved exactly once and every shard searches the
        #: same concrete method (scatter-gather merges identical-method
        #: partials); carried across with_graph rebuilds
        self._planner: "AdaptivePlanner | None" = planner
        #: restored per-shard indexes (``sid -> (grid, aggregate)``),
        #: consumed by ``_build_shard`` on the snapshot warm-start path
        self._restored_indexes: dict = _shard_indexes or {}
        #: located user -> owning shard id
        self._owner: dict[int, int] = {}
        #: shard id -> member-filtered engine (built lazily for shards
        #: that start empty and gain members later)
        self._engines: dict[int, GeoSocialEngine] = {}
        self._bounds: dict[int, ShardBounds] = {}
        members: dict[int, set[int]] = {}
        xs, ys = locations.xs, locations.ys
        for user in locations.located_users():
            sid = self.partitioner.shard_of(xs[user], ys[user])
            self._owner[user] = sid
            members.setdefault(sid, set()).add(user)
        for sid, users in sorted(members.items()):
            self._build_shard(sid, users)

        self.rw_lock = ReadWriteLock()
        self.scatter = ScatterStats()
        self._scatter_lock = threading.Lock()
        #: bumped by every location update; process-scatter pools use it
        #: to detect stale forked snapshots and delta-sync (or re-fork)
        self.update_epoch = 0
        #: replayable log of applied location updates — what keeps the
        #: warm process pool coherent without re-forking (delta shipping)
        self._journal = DeltaJournal(journal_capacity)
        #: requested scatter backend ("inline" | "process" | "auto",
        #: env-overridable via REPRO_SCATTER_BACKEND) and its resolution
        from repro.shard.parallel import resolve_scatter_backend

        self.scatter_backend = scatter_backend
        self.replicas = replicas
        self._scatter_backend_resolved = resolve_scatter_backend(
            scatter_backend,
            n_shards=self.partitioner.n_shards,
            located=locations.n_located,
        )
        self._scatter_pool = None
        self._location_listeners: list[Callable[[int, float | None, float | None], None]] = []
        self._pool = TaskPool(self.max_workers, thread_name_prefix="ssrq-shard")
        self._services: dict[int | None, object] = {}

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "ShardedGeoSocialEngine":
        """Build from any object exposing ``.graph`` and ``.locations``."""
        return cls(dataset.graph, dataset.locations, **kwargs)

    # -- shard construction --------------------------------------------

    def _build_shard(self, sid: int, users: set[int]) -> GeoSocialEngine:
        grid = aggregate = None
        restored = self._restored_indexes.pop(sid, None)
        if restored is not None:
            grid, aggregate = restored
            if set(grid._cell_of_user) != users:
                # Ownership is always derivable (owner ==
                # partitioner.shard_of(current location)); a restored
                # index disagreeing with that computation means the
                # snapshot's columns are mutually inconsistent.
                raise ValueError(
                    f"restored shard {sid} indexes {len(grid)} members, "
                    f"the partitioner assigns {len(users)}"
                )
        engine = GeoSocialEngine(
            self.graph,
            self.locations,
            landmark_strategy=self.landmark_strategy,
            s=self.shard_s,
            seed=self.seed,
            normalization=self.normalization,
            default_t=self.default_t,
            landmarks=self.landmarks,
            index_users=users,
            backend=self.kernels,
            grid=grid,
            aggregate=aggregate,
            # every shard consults (and feeds) the coordinator's one
            # shared column cache; 0 stops a disabled coordinator's
            # shards from building private ones
            social_cache=self.social_cache,
            social_cache_bytes=0,
        )
        # The t-nearest social lists depend only on the shared graph:
        # point every shard at one store so ais-cache scatter does not
        # redo the same truncated Dijkstra per searched shard.  The
        # build lock must be shared too — per-engine locks over one
        # dict would let two shards race a first use and memoize
        # searchers bound to duplicate, divergent cache objects.
        engine._caches = self._neighbor_caches
        engine._build_lock = self._build_lock
        bounds = ShardBounds(self.landmarks.m)
        # list(), not sorted(): the bbox/min-max reductions are
        # order-independent, so sorting would be pure overhead here
        bounds.refresh_columnar(self.kernels, self.landmarks, self.locations, list(users))
        self._engines[sid] = engine
        self._bounds[sid] = bounds
        return engine

    # -- query dispatch ------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    def shard_of_user(self, user: int) -> int | None:
        """The shard owning ``user`` (``None`` while unlocated)."""
        return self._owner.get(user)

    def envelope_mindist(self, sid: int, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to shard ``sid``'s member envelope
        (its widen-only pruning bbox): 0 inside, ``inf`` for an empty
        or unmaterialised shard.

        This is the shard-aware delta-routing primitive: the stream
        layer (:mod:`repro.stream`) skips a whole group of standing
        queries when an update lands farther from their shard's
        envelope than any of them can reach — only shards whose pruning
        envelopes intersect the update fan out.  The envelope always
        contains the shard's current members (moves widen it in place),
        so the bound is sound even between
        :meth:`refresh_bounds` calls.
        """
        bounds = self._bounds.get(sid)
        if bounds is None or bounds.count <= 0:
            return INF
        return bounds.spatial_lower_bound(x, y)

    def shard_sizes(self) -> dict[int, int]:
        """Member counts per materialised shard."""
        return {sid: b.count for sid, b in sorted(self._bounds.items())}

    def _delegate_engine(self) -> GeoSocialEngine:
        """A deterministic shard engine for globally-exact delegated
        methods (first materialised shard; the shared graph and global
        table make any of them equivalent)."""
        return self._engines[min(self._engines)]

    @property
    def planner(self) -> "AdaptivePlanner":
        """The ``method="auto"`` resolver (one per sharded engine; see
        :attr:`GeoSocialEngine.planner`)."""
        if self._planner is None:
            from repro.plan.planner import AdaptivePlanner

            with self._build_lock:
                if self._planner is None:
                    self._planner = AdaptivePlanner(seed=self.seed)
        return self._planner

    @planner.setter
    def planner(self, planner: "AdaptivePlanner") -> None:
        self._planner = planner

    @property
    def sketch(self):
        """The shared social-distance sketch (lazily built by the
        delegate shard engine over the shared graph, landmarks, and
        kernels, so it is globally exact — the planner's budget gate
        consults it at the coordinator, where ``"approx"`` resolves)."""
        return self._delegate_engine().sketch

    def resolve_method(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = AUTO,
        t: int | None = None,
        budget: float | None = None,
    ) -> str:
        """The concrete method one query dispatches to (same contract
        as :meth:`GeoSocialEngine.resolve_method`): resolved **once**
        here at the coordinator, then propagated to every shard, so
        scatter-gather always merges identical-method partials."""
        return resolve_dispatch(self, user, k, alpha, method, t, budget=budget)[0]

    def query(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        budget: float | None = None,
    ) -> SSRQResult:
        """Answer one SSRQ with rankings bit-identical to
        :meth:`GeoSocialEngine.query` on the same data.

        ``method="auto"`` is resolved exactly once here (one planner
        decision per query, fed back with the whole scatter-gather wall
        time), and the concrete resolution is what every searched shard
        executes.  ``budget`` is likewise resolved once at the
        coordinator — an ``"approx"`` resolution takes the delegated
        path below (global sketch, never scattered), so shards never
        make their own exact-vs-approx choice."""
        check_user(user, self.graph.n)
        check_k(k)
        check_alpha(alpha)
        check_budget(budget)
        routed, decision = resolve_dispatch(self, user, k, alpha, method, t, budget=budget)
        if routed in DELEGATED_METHODS:
            result = self._delegate_engine().query(user, k, alpha, routed, t=t)
            with self._scatter_lock:
                self.scatter.delegated_queries += 1
        else:
            result = self._column_scan_query(user, k, alpha, routed)
            if result is None:
                result = self._scatter_query(user, k, alpha, routed, t)
        result.method = routed
        if decision is not None:
            self.planner.observe(decision, result.stats.elapsed)
        return result

    def _column_scan_query(
        self, user: int, k: int, alpha: float, method: str
    ) -> "SSRQResult | None":
        """Answer a scatter-eligible query from a cached full social
        column without touching any shard, or ``None`` to scatter.

        Sound only when the method is forward-deterministic (a dense
        scan over the exact column selects the same ``(score, id)``-
        minimal set the merged scatter enumeration would), the ranking
        actually uses the social term (at ``alpha == 0`` the searcher's
        ``Neighbor`` fields follow the all-``inf`` social convention a
        real column would violate), and the query user is located (an
        unlocated one must raise the spatial searcher's exact error on
        the normal path)."""
        cache = self.social_cache
        if cache is None or method not in _COLUMN_SCAN_METHODS:
            return None
        rank = RankingFunction(alpha, self.normalization)
        if not rank.needs_social or self.locations.get(user) is None:
            return None
        start = time.perf_counter()
        column = cache.peek_full(user)
        if column is None:
            return None
        stats = SearchStats()
        neighbors, finite = dense_scan(
            self.kernels, self.graph.n, rank, column, self.locations, user, k
        )
        stats.candidates_scored = finite
        stats.extra["social_column_hits"] = 1
        stats.extra["column_scan"] = 1
        stats.elapsed = time.perf_counter() - start
        with self._scatter_lock:
            self.scatter.column_scans += 1
        return SSRQResult(user, k, alpha, neighbors, stats)

    def _scatter_plan(
        self, user: int, alpha: float, method: str
    ) -> "list[tuple[float, int]] | None":
        """The sorted ``(bound, shard)`` candidate list for a scatter
        query, or ``None`` when the query takes an inline path
        (delegated method, or an unlocated query user whose spatial
        searcher must raise exactly like the single engine's)."""
        routed = route_method(method, alpha)
        if routed in DELEGATED_METHODS:
            return None
        location = self.locations.get(user)
        if location is None:
            return None
        qx, qy = location
        rank = RankingFunction(alpha, self.normalization)
        query_vector = self.landmarks.vector(user) if rank.needs_social else None
        candidates: list[tuple[float, int]] = []
        for sid, bounds in self._bounds.items():
            if bounds.count <= 0:
                continue
            candidates.append(
                (bounds.score_lower_bound(rank, qx, qy, query_vector), sid)
            )
        candidates.sort()
        return candidates

    def _process_pool(self):
        """The lazily-forked warm worker pool, or ``None`` when the
        resolved scatter backend is in-process.  An explicit
        ``scatter_backend="process"`` on a platform without ``fork``
        degrades to the inline scatter with a warning rather than
        failing queries."""
        if self._scatter_backend_resolved != "process":
            return None
        pool = self._scatter_pool
        if pool is not None:
            return pool
        with self._build_lock:
            if self._scatter_pool is None and self._scatter_backend_resolved == "process":
                from repro.shard.parallel import ProcessScatterPool

                try:
                    self._scatter_pool = ProcessScatterPool(
                        self, replicas=self.replicas
                    )
                except (RuntimeError, OSError) as exc:
                    import warnings

                    warnings.warn(
                        f"process scatter backend unavailable ({exc}); "
                        "falling back to the in-process scatter",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self._scatter_backend_resolved = "inline"
            return self._scatter_pool

    def _record_scatter(self, queries: int, considered: int, searched: int) -> None:
        with self._scatter_lock:
            self.scatter.scatter_queries += queries
            self.scatter.shards_considered += considered
            self.scatter.shards_searched += searched

    def _scatter_query(
        self, user: int, k: int, alpha: float, method: str, t: int | None
    ) -> SSRQResult:
        pool = self._process_pool()
        if pool is not None:
            from repro.shard.parallel import PoolClosedError

            try:
                return pool.scatter_one(user, k, alpha, method, t)
            except PoolClosedError:
                # Closed under us (engine close / rebuild swap): the
                # in-process scatter below still answers correctly.
                pass
        start = time.perf_counter()
        candidates = self._scatter_plan(user, alpha, method)
        if candidates is None:
            # Unlocated query user: mirror the single engine exactly —
            # its spatial searcher raises; let a shard's do so.
            return self._delegate_engine().query(user, k, alpha, method, t=t)

        stats = SearchStats()

        def run(sid: int, warm: "SSRQResult | None" = None) -> SSRQResult:
            # Threshold propagation: the merged interim result (copied —
            # searches mutate their buffer) warm-starts this shard's
            # f_k, so a shard that cannot contribute terminates after a
            # bound check instead of re-deriving a full local top-k.
            initial = warm.copy() if warm is not None else None
            return self._engines[sid].query(user, k, alpha, method, t=t, initial=initial)

        considered = len(candidates)
        searched = 0
        merged = merge_topk(k, [])
        if candidates and (
            self.max_workers == 1 or len(candidates) <= 2 or self._pool.closed
        ):
            # Sequential scatter: progressive pruning along the sorted
            # bound order (f_k only tightens, bounds only grow, so the
            # first strict excess prunes every later shard too), each
            # search warm-started from the merged result so far.
            for bound, sid in candidates:
                if bound > merged.fk:
                    break
                result = run(sid, merged if searched else None)
                searched += 1
                for nb in result:
                    merged.offer(nb.user, nb.score, nb.social, nb.spatial)
                stats.merge(result.stats)
        elif candidates:
            # Two-phase parallel scatter: the best-bound (home) shard
            # establishes f_k, the surviving remainder fans out over the
            # worker pool, each worker warm-started from the home result.
            home = run(candidates[0][1])
            searched += 1
            for nb in home:
                merged.offer(nb.user, nb.score, nb.social, nb.spatial)
            stats.merge(home.stats)
            survivors = [sid for bound, sid in candidates[1:] if not bound > merged.fk]
            warm = merged
            for result in self._pool.map(lambda sid: run(sid, warm), survivors):
                searched += 1
                for nb in result:
                    merged.offer(nb.user, nb.score, nb.social, nb.spatial)
                stats.merge(result.stats)

        stats.extra["shards_searched"] = searched
        stats.extra["shards_pruned"] = considered - searched
        stats.elapsed = time.perf_counter() - start
        self._record_scatter(1, considered, searched)
        return SSRQResult(user, k, alpha, merged.neighbors(), stats)

    def query_many(
        self,
        requests: "Iterable[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        max_workers: int | None = None,
        budget: float | None = None,
    ) -> list[SSRQResult]:
        """Service-backed batch execution, identical in contract to
        :meth:`GeoSocialEngine.query_many` (results in request order,
        rankings equal to a sequential :meth:`query` loop)."""
        return _service_backed_query_many(
            self, requests, k, alpha, method, t, max_workers, budget=budget
        )

    def scatter_info(self) -> dict:
        """Cumulative scatter statistics snapshot."""
        with self._scatter_lock:
            return self.scatter.snapshot()

    def scatter_backend_info(self) -> dict:
        """Execution-backend introspection: the resolved scatter
        backend, the delta journal's state, and — once the warm pool
        has forked — its lifetime counters (forks, re-forks, respawns,
        shipped deltas)."""
        info = {
            "requested": self.scatter_backend,
            "resolved": self._scatter_backend_resolved,
            "replicas": self.replicas,
            "journal": {
                "capacity": self._journal.capacity,
                "appended": self._journal.appended,
                "latest_epoch": self._journal.latest_epoch,
            },
        }
        pool = self._scatter_pool
        if pool is not None:
            info["pool"] = pool.info()
        return info

    # -- dynamic locations ---------------------------------------------

    def add_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Subscribe ``listener(user, x, y)`` to every location update
        (same contract as the single engine's hook; the service layer's
        cache invalidation plugs in here unchanged)."""
        self._location_listeners.append(listener)

    def remove_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Unsubscribe a location listener (no-op if absent)."""
        try:
            self._location_listeners.remove(listener)
        except ValueError:
            pass

    def move_user(self, user: int, x: float, y: float) -> None:
        """Process a location update, routing membership across shards.

        A move within the owning shard's region updates that shard's
        indexes in place; a *boundary crossing* removes the user from
        the old shard's grid and aggregate index and inserts them into
        the new owner's (building it on first use), all under this
        engine's exclusive lock and with the shared location table
        written exactly once.  Location listeners fire identically to
        the single engine, so service-layer caches invalidate the same
        entries either way.
        """
        check_user(user, self.graph.n)
        with self.rw_lock.write_locked():
            had_location = self.locations.has_location(user)
            self.locations.set(user, x, y)
            new_sid = self.partitioner.shard_of(x, y)
            old_sid = self._owner.get(user)
            if had_location and old_sid == new_sid:
                self._engines[old_sid]._index_move(user, x, y)
                self._bounds[old_sid].update_member(x, y)
            else:
                if had_location and old_sid is not None:
                    self._engines[old_sid]._index_remove(user)
                    self._bounds[old_sid].remove_member()
                engine = self._engines.get(new_sid)
                if engine is None:
                    self._build_shard(new_sid, {user})
                else:
                    engine._index_insert(user, x, y)
                    self._bounds[new_sid].add_member(x, y, self.landmarks.vector(user))
                self._owner[user] = new_sid
            self.update_epoch += 1
            self._journal.append(
                LocationDelta(self.update_epoch, user, x, y, old_sid, new_sid)
            )
            # Snapshot: listeners may detach concurrently (see the
            # single engine's move_user).
            for listener in list(self._location_listeners):
                listener(user, x, y)

    def forget_location(self, user: int) -> None:
        """Mark a user's location as unknown and de-index them from the
        owning shard (exclusively, like :meth:`move_user`)."""
        check_user(user, self.graph.n)
        with self.rw_lock.write_locked():
            if not self.locations.has_location(user):
                return
            old_sid = self._owner.pop(user)
            self._engines[old_sid]._index_remove(user)
            self._bounds[old_sid].remove_member()
            self.locations.clear(user)
            self.update_epoch += 1
            self._journal.append(
                LocationDelta(self.update_epoch, user, None, None, old_sid, None)
            )
            for listener in list(self._location_listeners):
                listener(user, None, None)

    def _replay_delta(self, delta: LocationDelta, pinned=None) -> None:
        """Apply one journal record to this engine copy (worker-side).

        Forked scatter workers call this to catch a copy-on-write
        engine snapshot up with the coordinator: the *global* state a
        search can observe for any user — the shared location table and
        the ownership map — is always applied, while per-shard index
        maintenance is restricted to ``pinned`` shards (the worker's
        affinity group; ``None`` pins everything).  Records must be
        replayed in journal order; each transition then mirrors what
        :meth:`move_user`/:meth:`forget_location` did on the
        coordinator, so a pinned shard's indexes end up bit-identical
        to the coordinator's.  Runs lock-free: workers are
        single-threaded and their engine copy is private.
        """
        user = delta.user
        if delta.x is None:
            if self.locations.has_location(user):
                self.locations.clear(user)
            self._owner.pop(user, None)
            if delta.old_sid is not None and (pinned is None or delta.old_sid in pinned):
                engine = self._engines.get(delta.old_sid)
                if engine is not None:
                    engine._index_remove(user)
                    self._bounds[delta.old_sid].remove_member()
        else:
            x, y = delta.x, delta.y
            self.locations.set(user, x, y)
            old_sid, new_sid = delta.old_sid, delta.new_sid
            self._owner[user] = new_sid
            if old_sid == new_sid and old_sid is not None:
                if pinned is None or new_sid in pinned:
                    self._engines[new_sid]._index_move(user, x, y)
                    self._bounds[new_sid].update_member(x, y)
            else:
                if old_sid is not None and (pinned is None or old_sid in pinned):
                    engine = self._engines.get(old_sid)
                    if engine is not None:
                        engine._index_remove(user)
                        self._bounds[old_sid].remove_member()
                if pinned is None or new_sid in pinned:
                    engine = self._engines.get(new_sid)
                    if engine is None:
                        self._build_shard(new_sid, {user})
                    else:
                        engine._index_insert(user, x, y)
                        self._bounds[new_sid].add_member(
                            x, y, self.landmarks.vector(user)
                        )
        self.update_epoch = delta.epoch

    def refresh_bounds(self) -> None:
        """Recompute every shard's pruning envelope exactly (tightens
        widen-only bounds after sustained churn; exclusively).

        Bulk math: one bbox reduction over the coordinate columns and
        one min/max reduction over the landmark matrix per shard — no
        per-user re-scan (a regression test pins this)."""
        with self.rw_lock.write_locked():
            for sid, engine in self._engines.items():
                members = list(engine.index_users or ())
                self._bounds[sid].refresh_columnar(
                    self.kernels, self.landmarks, self.locations, members
                )

    # -- rebuild -------------------------------------------------------

    def with_graph(self, graph: SocialGraph, **overrides) -> "ShardedGeoSocialEngine":
        """A fresh sharded engine over ``graph`` with this engine's
        parameters (see :meth:`GeoSocialEngine.with_graph`).  The
        partitioner *instance* is reused — its regions are static, so a
        custom or pre-fitted partitioner (and the shard layout) survive
        the rebuild; per-shard fanout (``shard_s``) is preserved too."""
        kwargs = dict(
            partitioner=self.partitioner,
            partitioner_kind=self.partitioner_kind,
            max_workers=self.max_workers,
            num_landmarks=self.landmarks.m,
            landmark_strategy=self.landmark_strategy,
            s=self.s,
            shard_s=self.shard_s,
            seed=self.seed,
            normalization=self.normalization,
            default_t=self.default_t,
            # resolved Kernels instance (see GeoSocialEngine.with_graph)
            backend=self.kernels,
            # live planner: learned costs keep steering method="auto"
            planner=self._planner,
            # requested (not resolved) scatter backend: the rebuilt
            # engine re-resolves against its own data size/cores and
            # forks a fresh pool — the rebuild swap IS the re-fork
            # point of the delta-shipping cost model
            scatter_backend=self.scatter_backend,
            replicas=self.replicas,
            journal_capacity=self._journal.capacity,
            # only the byte budget crosses the rebuild, never the cache
            # instance: the new engine's columns must come from the new
            # graph's expansions exclusively
            social_cache_bytes=(
                self.social_cache.max_bytes if self.social_cache is not None else 0
            ),
        )
        kwargs.update(overrides)
        return type(self)(graph, self.locations, **kwargs)

    # -- persistence ---------------------------------------------------

    def save(self, path) -> "Path":
        """Write a crash-consistent columnar snapshot of the sharded
        engine (global columns once, per-shard grid arrays, the fitted
        partitioner in the manifest) under the shared read lock — same
        protocol as :meth:`GeoSocialEngine.save`.  Returns the snapshot
        directory."""
        from repro.store import save_engine

        with self.rw_lock.read_locked():
            return save_engine(self, path)

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True) -> "ShardedGeoSocialEngine":
        """Warm-start a sharded engine from a snapshot directory written
        by :meth:`save`: shared columns load once (memory-mapped with
        ``mmap=True``), each shard adopts its persisted indexes, and the
        partitioner is rebuilt exactly from the manifest so the
        ownership invariant carries over bit-for-bit."""
        from repro.store import load_engine

        engine = load_engine(path, mmap=mmap, verify=verify)
        if not isinstance(engine, cls):
            raise TypeError(
                f"snapshot at {path} holds a {type(engine).__name__}, "
                f"not a {cls.__name__}; use that class's load()"
            )
        return engine

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down the scatter pool and any batch services.

        Queries keep working — scatter falls back to the sequential
        path once the pool is gone — so closing the swapped-out engine
        after :meth:`~repro.service.QueryService.rebuild_engine` (which
        calls this automatically) never breaks a straggling holder."""
        pool = self._scatter_pool
        self._scatter_pool = None
        self._scatter_backend_resolved = "inline"
        if pool is not None:
            pool.close()
        self._pool.close()
        _close_cached_services(self)

    # -- introspection -------------------------------------------------

    def located_users(self) -> Sequence[int]:
        return list(self.locations.located_users())

    def __repr__(self) -> str:
        sizes = self.shard_sizes()
        return (
            f"ShardedGeoSocialEngine(n={self.graph.n}, shards={self.n_shards}, "
            f"materialised={len(self._engines)}, members={sum(sizes.values())}, "
            f"workers={self.max_workers}, backend={self.backend!r})"
        )
