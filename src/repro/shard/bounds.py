"""Per-shard pruning bounds: a shard-level MINF.

Each shard maintains the same two ingredients the AIS index keeps per
cell (:mod:`repro.index.bounds`), lifted to the whole partition:

- spatial: the bounding box of the shard's members, giving
  ``ď(u_q, S)`` via the box ``mindist``;
- social: a :class:`~repro.index.summaries.SocialSummary` over the
  members' landmark-distance vectors, giving ``p̌(v_q, S)`` via
  Lemma 2's group extension of the landmark triangle inequality.

Their α-combination (Theorem 1's ``MINF``) lower-bounds the score of
every member, so a shard whose bound strictly exceeds the merged
threshold ``f_k`` provably cannot contribute and is skipped whole.

Maintenance is *widen-only*: inserting a member widens the box and the
summary in O(M); removing one leaves them unchanged.  A stale-but-wide
bound is still admissible (the true member envelope only shrinks), it
is merely less tight — :meth:`ShardBounds.refresh` recomputes exactly
after heavy churn.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.ranking import RankingFunction
from repro.index.bounds import minf, social_lower_bound
from repro.index.summaries import SocialSummary

INF = math.inf


class ShardBounds:
    """Widen-only member envelope (bbox + social summary) of one shard.

        >>> from repro.shard.bounds import ShardBounds
        >>> bounds = ShardBounds(m=2)
        >>> bounds.add_member(0.1, 0.2, (1.0, 3.0))
        >>> bounds.add_member(0.4, 0.3, (2.0, 5.0))
        >>> bounds.count, round(bounds.spatial_lower_bound(0.4, 0.7), 6)
        (2, 0.4)
        >>> bounds.social_bound((6.0, 6.0))   # tightest landmark: 6 - 2
        4.0
    """

    __slots__ = ("summary", "minx", "miny", "maxx", "maxy", "count")

    def __init__(self, m: int) -> None:
        self.summary = SocialSummary(m)
        self.minx = INF
        self.miny = INF
        self.maxx = -INF
        self.maxy = -INF
        self.count = 0

    # -- maintenance ---------------------------------------------------

    def add_member(self, x: float, y: float, vector: Sequence[float]) -> None:
        """Account a new member at ``(x, y)`` with landmark distances
        ``vector`` (O(M))."""
        self.count += 1
        self._widen_box(x, y)
        self.summary.widen(vector)

    def update_member(self, x: float, y: float) -> None:
        """Account an existing member's move (widens the box only; the
        landmark vector is location-independent)."""
        self._widen_box(x, y)

    def remove_member(self) -> None:
        """Account a member leaving.  The envelope is *not* shrunk —
        wider-than-true bounds stay admissible — only the population
        count drops (an empty shard is skipped outright)."""
        self.count -= 1

    def _widen_box(self, x: float, y: float) -> None:
        if x < self.minx:
            self.minx = x
        if x > self.maxx:
            self.maxx = x
        if y < self.miny:
            self.miny = y
        if y > self.maxy:
            self.maxy = y

    def refresh(self, members: Iterable[tuple[float, float, Sequence[float]]]) -> None:
        """Recompute the envelope exactly from ``(x, y, vector)``
        triples (tightens bounds after sustained churn)."""
        m = len(self.summary.m_check)
        self.summary = SocialSummary(m)
        self.minx = self.miny = INF
        self.maxx = self.maxy = -INF
        self.count = 0
        for x, y, vector in members:
            self.add_member(x, y, vector)

    def refresh_columnar(self, kernels, landmarks, locations, ids) -> None:
        """Columnar :meth:`refresh`: recompute the envelope for members
        ``ids`` in two bulk kernel reductions over the coordinate
        columns and the landmark matrix — no per-user scan, no
        per-user landmark-vector tuples."""
        if not hasattr(ids, "__getitem__"):  # sets/generators -> indexable
            ids = list(ids)
        xs, ys = locations.columns()
        m = len(self.summary.m_check)
        self.count = len(ids)
        envelope = kernels.nanbbox(xs, ys, ids) if self.count else None
        if envelope is None:
            self.minx = self.miny = INF
            self.maxx = self.maxy = -INF
        else:
            self.minx, self.miny, self.maxx, self.maxy = envelope
        summary = SocialSummary(m)
        if self.count:
            summary.m_check, summary.m_hat = kernels.summary_minmax(landmarks, ids)
        self.summary = summary

    # -- bounds --------------------------------------------------------

    def spatial_lower_bound(self, qx: float, qy: float) -> float:
        """``ď(u_q, S)``: minimum distance from the query point to the
        member envelope (0 when inside; ``inf`` for an empty shard)."""
        if self.count <= 0 or self.minx == INF:
            return INF
        dx = max(self.minx - qx, 0.0, qx - self.maxx)
        dy = max(self.miny - qy, 0.0, qy - self.maxy)
        if dx == 0.0 and dy == 0.0:
            return 0.0
        # sqrt(dx²+dy²), the repo-wide Euclidean primitive (never hypot,
        # which can land 1 ulp above it and over-prune a boundary tie).
        return math.sqrt(dx * dx + dy * dy)

    def social_bound(self, query_vector: Sequence[float]) -> float:
        """``p̌(v_q, S)``: Lemma 2 over the member summary."""
        if self.count <= 0 or self.summary.empty:
            return INF
        return social_lower_bound(query_vector, self.summary.m_check, self.summary.m_hat)

    def score_lower_bound(
        self,
        rank: RankingFunction,
        qx: float,
        qy: float,
        query_vector: Sequence[float] | None,
    ) -> float:
        """Theorem 1's ``MINF`` for the whole shard: a valid lower bound
        on the score of every member under ranking ``rank``.

        ``query_vector is None`` (pure spatial, ``alpha == 0``) skips
        the social ingredient — its weight is zero anyway.
        """
        social = (
            self.social_bound(query_vector) if query_vector is not None else 0.0
        )
        spatial = self.spatial_lower_bound(qx, qy)
        return minf(rank, social, spatial)
