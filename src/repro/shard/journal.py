"""Location-delta journal: the warm-pool coherence log.

Every location update applied through
:class:`~repro.shard.ShardedGeoSocialEngine` appends one compact
:class:`LocationDelta` record here (inside the engine's exclusive
lock, after the epoch bump).  Long-lived scatter workers —
:class:`~repro.shard.ProcessScatterPool` replicas forked at some past
epoch — catch up by *replaying* the suffix of this journal instead of
being torn down and re-forked: the coordinator ships
``journal.since(worker_epoch)`` down the worker's task pipe, and the
worker folds each record through the same index primitives
(``_index_insert`` / ``_index_remove`` / ``_index_move``) the
coordinator's own ``move_user`` used, filtered to the shards the
worker is pinned to.

Each record carries the shard routing (``old_sid``/``new_sid``)
pre-computed at append time, so replaying requires no partitioner or
ownership lookup on the worker — application is O(1) dict/grid work
per record per worker.

The journal is a bounded ring: when a worker's epoch has fallen off
the tail, :meth:`DeltaJournal.since` returns ``None`` and the caller
must re-fork (the re-fork cost model: replay costs O(deltas) cheap
index ops but keeps warm searcher caches; fork costs a process spawn
plus copy-on-write faults and loses every lazily-built searcher, so
replay wins until the suffix grows past a budget — see
``ProcessScatterPool``).

    >>> from repro.shard.journal import DeltaJournal, LocationDelta
    >>> journal = DeltaJournal(capacity=2)
    >>> journal.append(LocationDelta(1, 7, 0.1, 0.2, None, 0))
    >>> journal.append(LocationDelta(2, 8, None, None, 1, None))
    >>> [d.user for d in journal.since(1)]
    [8]
    >>> journal.append(LocationDelta(3, 9, 0.5, 0.5, 0, 0))
    >>> journal.since(0) is None        # epoch 1 fell off the ring
    True
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class LocationDelta:
    """One applied location update, in replayable form.

    ``x is None`` encodes a forgotten location (``forget_location``);
    otherwise the record is a move/insert.  ``old_sid``/``new_sid``
    are the owning shards before/after the update (``None`` when the
    user was/became unlocated), computed by the coordinator so workers
    replay by label instead of re-partitioning.
    """

    #: the engine's ``update_epoch`` value *after* this update applied
    epoch: int
    user: int
    x: float | None
    y: float | None
    old_sid: int | None
    new_sid: int | None


class DeltaJournal:
    """Bounded, thread-safe log of :class:`LocationDelta` records.

    Appends happen under the engine's exclusive lock (one writer), but
    reads (:meth:`since`) come from pool coordinators on arbitrary
    threads, so the journal takes its own small lock around the ring.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[LocationDelta] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: total records ever appended (monotonic, survives truncation)
        self.appended = 0

    def append(self, delta: LocationDelta) -> None:
        with self._lock:
            self._ring.append(delta)
            self.appended += 1

    @property
    def latest_epoch(self) -> int:
        """Epoch of the newest record (0 when empty)."""
        with self._lock:
            return self._ring[-1].epoch if self._ring else 0

    def since(self, epoch: int) -> "list[LocationDelta] | None":
        """Every record with ``delta.epoch > epoch`` in apply order, or
        ``None`` when records that old have been truncated off the ring
        (the caller's snapshot is unrecoverably stale — re-fork)."""
        with self._lock:
            if not self._ring or self._ring[-1].epoch <= epoch:
                # Nothing newer.  A caller at (or past) the newest
                # recorded epoch is coherent even if older records
                # were truncated.
                return []
            if self._ring[0].epoch > epoch + 1:
                return None  # the suffix starting at epoch+1 is gone
            return [d for d in self._ring if d.epoch > epoch]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        with self._lock:
            lo = self._ring[0].epoch if self._ring else 0
            hi = self._ring[-1].epoch if self._ring else 0
        return f"DeltaJournal(capacity={self.capacity}, epochs=[{lo}, {hi}], appended={self.appended})"
