"""Replay-then-continue adapter over a parked :class:`DijkstraIterator`.

SFA's enumeration loop and TSA's candidate admission both assume the
social stream yields *every* settled vertex through :meth:`next`, in
settle order, exactly once — and TSA additionally keys admission on
``u not in social.settled`` at the moment a spatial pop arrives.  A
parked iterator checked out of the
:class:`~repro.social.cache.SocialColumnCache` violates both: its
already-settled prefix would never be re-produced, and its ``settled``
map is "from the future" relative to a cold run.

:class:`ReplayedDijkstra` restores the cold-run contract.  It re-yields
the parked prefix from the inner iterator's insertion-ordered
``settled`` dict (Dijkstra settle order is deterministic here: the
``MinHeap`` orders by ``(distance, vertex)`` tuples, so distance ties
break toward smaller ids), maintaining a *shadow* ``settled`` map that
grows exactly as a cold iterator's would; once the prefix is drained it
advances the inner iterator live, mirroring new settles into the
shadow.  Distances are the parked run's exact values — Dijkstra
distances are schedule-independent — so the replayed stream is
bit-identical to a cold expansion, only cheaper: replay is a list walk,
not a heap churn.

SPA needs none of this: it only calls :meth:`DijkstraIterator.run_until`,
which consults ``settled`` before advancing, so a parked iterator is
resumed *directly* — that is the pure "resume the prior expansion"
win.
"""

from __future__ import annotations

from repro.graph.traversal import DijkstraIterator

__all__ = ["ReplayedDijkstra"]


class ReplayedDijkstra:
    """A parked Dijkstra expansion presented as if freshly started.

        >>> from repro import SocialGraph
        >>> from repro.graph.traversal import DijkstraIterator
        >>> from repro.social import ReplayedDijkstra
        >>> g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        >>> parked = DijkstraIterator(g, 0)
        >>> parked.next()           # settles the source ...
        (0, 0.0)
        >>> parked.next()           # ... and one neighbour, then parks
        (1, 1.0)
        >>> replay = ReplayedDijkstra(parked)
        >>> [replay.next() for _ in range(3)]   # prefix replayed, then live
        [(0, 0.0), (1, 1.0), (2, 2.0)]
        >>> replay.exhausted
        True
    """

    __slots__ = ("inner", "settled", "_prefix", "_pos", "_last_distance")

    def __init__(self, inner: DijkstraIterator) -> None:
        self.inner = inner
        #: shadow settle map — grows exactly like a cold iterator's
        self.settled: dict[int, float] = {}
        self._prefix = list(inner.settled.items())
        self._pos = 0
        self._last_distance = 0.0

    # -- pass-throughs the searchers touch ------------------------------

    @property
    def graph(self):
        return self.inner.graph

    @property
    def source(self) -> int:
        return self.inner.source

    @property
    def heap(self):
        """The *inner* heap (callers diff ``heap.pops`` around their run,
        so replayed vertices — no heap traffic — cost zero pops)."""
        return self.inner.heap

    @property
    def last_distance(self) -> float:
        return self._last_distance

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._prefix) and self.inner.exhausted

    # -- the stream ------------------------------------------------------

    def next(self) -> tuple[int, float] | None:
        """The next ``(vertex, distance)`` a cold expansion would settle:
        first the parked prefix (replayed for free), then live settles
        advancing the inner iterator."""
        if self._pos < len(self._prefix):
            v, d = self._prefix[self._pos]
            self._pos += 1
        else:
            item = self.inner.next()
            if item is None:
                return None
            v, d = item
        self.settled[v] = d
        self._last_distance = d
        return v, d

    def run_to_completion(self) -> dict[int, float]:
        """Drain the stream; returns the (complete) inner settle map."""
        while self.next() is not None:
            pass
        return self.inner.settled
