"""Fused same-user batch scoring for ``query_many``.

A batch often carries several *distinct* requests from one hot query
user — different ``k``, different ``alpha`` — that today each pay for
their own social expansion.  All of them are functions of the same two
columns (the user's social distances and the distances to the user's
location), so :func:`fused_variants` materialises the social column
once (through the :class:`~repro.social.cache.SocialColumnCache`, so a
second batch pays nothing at all), derives the spatial column once, and
answers every ``(k, alpha)`` variant via the
:meth:`~repro.backend.base.Kernels.blend_topk_multi` kernel — one
columnar blend + top-k pass per variant over shared inputs.

Exactness: each variant's pass is exactly the
:func:`~repro.social.scan.dense_scan` computation (same ``blend``, same
query-user exclusion, same ``(score, id)`` top-k), so every fused
answer is bit-identical to what ``engine.query`` returns for that
request — the differential suite pins this per variant, including the
``Neighbor`` field conventions at the α endpoints.
"""

from __future__ import annotations

import math
import time

from repro.core.ranking import RankingFunction
from repro.core.result import Neighbor, SSRQResult
from repro.core.stats import SearchStats
from repro.social.scan import materialize_column
from repro.utils.validation import check_user

INF = math.inf
_NAN = math.nan

__all__ = ["fused_variants"]


def fused_variants(engine, user: int, variants) -> list[SSRQResult]:
    """Answer ``variants`` — ``[(k, alpha, method), ...]`` for one query
    ``user`` — from a single column materialisation.

    Callers guarantee every ``method`` is forward-deterministic and, for
    any variant with ``alpha < 1``, that ``user`` is located (the
    batching layer checks; unlocated users keep the per-query path and
    its exact error behaviour).
    """
    check_user(user, engine.graph.n)
    kernels = engine.kernels
    start = time.perf_counter()

    ranks = [RankingFunction(alpha, engine.normalization) for _k, alpha, _m in variants]
    needs_social = any(r.needs_social for r in ranks)
    needs_spatial = any(r.needs_spatial for r in ranks)

    social_col = materialize_column(engine, user) if needs_social else None
    spatial_col = None
    if needs_spatial:
        location = engine.locations.get(user)
        qx, qy = location if location is not None else (_NAN, _NAN)
        xs, ys = engine.locations.columns()
        spatial_col = kernels.euclidean_to_point(xs, ys, qx, qy)

    requests = [(k, rank.w_social, rank.w_spatial) for (k, _a, _m), rank in zip(variants, ranks)]
    picks = kernels.blend_topk_multi(requests, social_col, spatial_col, exclude=user)

    results = []
    group = len(variants)
    share = (time.perf_counter() - start) / group
    for (k, alpha, method), rank, top in zip(variants, ranks, picks):
        # A term the ranking does not need reads inf — the same field
        # convention every searcher follows at the alpha endpoints.
        neighbors = [
            Neighbor(
                u,
                s,
                float(social_col[u]) if rank.needs_social else INF,
                float(spatial_col[u]) if rank.needs_spatial else INF,
            )
            for u, s in top
        ]
        stats = SearchStats()
        stats.candidates_scored = len(neighbors)
        stats.extra["fused_group"] = group
        stats.elapsed = share
        results.append(SSRQResult(user, k, alpha, neighbors, stats, method=method))
    return results
