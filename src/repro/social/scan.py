"""Columnar SSRQ evaluation off a materialised social column.

:func:`dense_scan` is the scoring tail of
:class:`~repro.core.bruteforce.BruteForceSearch`, factored out so every
consumer of a cached column — a full-column hit inside SFA/SPA/TSA, the
sharded coordinator's scatter bypass, the fused ``query_many`` path —
scores through literally the same kernel calls as bruteforce.  That is
what makes the cache's exactness invariant a *structural* property
rather than a per-call-site proof: a dense ``blend`` +
``top_k_by_score`` over exact columns selects, for any ``(k, α)``, the
same ``(score, id)``-minimal set every forward-deterministic method
enumerates (all of them terminate on strict bound excess and tie-break
toward smaller ids), with the same ``Neighbor`` field conventions
(a term the ranking does not need reads ``inf``).

:func:`materialize_column` is the one producer: cache-first (full hit →
no traversal; parked partial → resume to exhaustion), expanding from
scratch only on a true miss, and always parking the finished column
back for the next query.
"""

from __future__ import annotations

import math

from repro.core.ranking import RankingFunction
from repro.core.result import Neighbor
from repro.graph.traversal import DijkstraIterator

INF = math.inf
_NAN = math.nan

__all__ = ["dense_scan", "materialize_column"]


def dense_scan(
    kernels,
    n: int,
    rank: RankingFunction,
    social_column,
    locations,
    query_user: int,
    k: int,
    initial=None,
) -> tuple[list[Neighbor], int]:
    """Score every user against ``social_column`` in one columnar pass.

    ``social_column`` must follow the bruteforce convention: exact
    distances with ``inf`` for unreachable users, or all-``inf`` when
    ``rank.needs_social`` is false.  The spatial column is derived here
    the same way bruteforce derives it (a NaN query point — irrelevant
    term or unlocated query user — makes the kernel emit ``inf``
    everywhere).  Returns ``(neighbors, finite)`` where ``finite`` is
    the number of finitely-scored users (the scan's evaluation count).
    """
    location = locations.get(query_user) if rank.needs_spatial else None
    qx, qy = location if location is not None else (_NAN, _NAN)
    xs, ys = locations.columns()
    d = kernels.euclidean_to_point(xs, ys, qx, qy)

    scores = kernels.blend(rank.w_social, rank.w_spatial, social_column, d)
    scores[query_user] = INF  # never report the query user
    top = kernels.top_k_by_score(scores, range(n), k)
    neighbors = [
        Neighbor(int(u), float(scores[u]), float(social_column[u]), float(d[u]))
        for u in top
    ]
    if initial is not None:
        for nb in neighbors:
            initial.offer(nb.user, nb.score, nb.social, nb.spatial)
        neighbors = initial.neighbors()
    return neighbors, kernels.count_finite(scores)


def materialize_column(engine, user: int):
    """The dense social-distance column from ``user``, produced through
    the engine's :class:`~repro.social.cache.SocialColumnCache` when one
    is attached: a full hit returns without traversal, a parked partial
    resumes from its settled radius, and whatever was expanded is parked
    back as a full column for the next query from ``user``."""
    kernels = engine.kernels
    n = engine.graph.n
    cache = getattr(engine, "social_cache", None)
    it = None
    if cache is not None:
        kind, payload = cache.acquire(user)
        if kind == "full":
            return payload
        if kind == "partial":
            it = payload
    if it is None:
        it = DijkstraIterator(engine.graph, user)
    it.run_to_completion()
    column = kernels.dense_from_dict(n, it.settled, INF)
    if cache is not None:
        cache.store_full(user, column)
    return column
