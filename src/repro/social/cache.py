"""Byte-bounded, epoch-safe cache of per-query-user social-distance
columns.

Every forward-deterministic query path — bruteforce, SFA/SPA/TSA,
stream repairs, fused batches — derives the same object first: the
social distances from the query user.  Those distances are a pure
function of the (immutable-per-engine) social graph, so once one query
has paid for an expansion, every later query from the same user can
reuse it **exactly**:

- a *full* column (the query ran the expansion to exhaustion, or a
  resumed one finished it) answers any later query with one columnar
  scan — no traversal at all;
- a *partial* column parks the early-terminated
  :class:`~repro.graph.traversal.DijkstraIterator` with its settled
  radius, so the next query *resumes* the expansion instead of
  restarting it from the source.

**Why edge-epoch invalidation only.**  A social column depends on
nothing but the graph's edges.  Location moves — the overwhelming
majority of updates under the paper's workload model — can therefore
never stale a column, and the cache ignores them entirely; that is what
keeps hit rates high under mixed read/update traffic.  Edge updates
accumulate in the service layer's companion tables (the engine's CSR
graph never mutates in place), so within one engine's lifetime every
cached column stays exact; the service still calls
:meth:`SocialColumnCache.invalidate_all` on every edge update —
mirroring the result cache's conservative contract — and an engine
rebuild (:meth:`~repro.service.QueryService.rebuild_engine`) starts
from a fresh, empty cache by construction.

**Why bytes, not entries.**  A dense column is ``8·n`` bytes — ~8 MB
per column on a 1M-user graph — so an entry-counted LRU would be
unbounded in the dimension that actually matters.  Entries are
byte-accounted (columns exactly, parked iterators by a documented
per-settled-vertex estimate) and evicted LRU-first until the budget
holds.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.graph.traversal import DijkstraIterator

INF = math.inf

__all__ = [
    "DEFAULT_SOCIAL_CACHE_BYTES",
    "SocialCacheStats",
    "SocialColumnCache",
]

#: default byte budget: ~4 dense columns on a 1M-user graph, thousands
#: on bench-scale ones — conservative against the engine's own footprint
DEFAULT_SOCIAL_CACHE_BYTES = 32 * 1024 * 1024

#: a dense column stores one float64 per user
_COLUMN_ENTRY_BYTES = 8

#: accounting estimate per settled vertex of a parked iterator: the
#: ``settled``/``parent``/``_best`` dict slots plus the amortised heap
#: tuple (an estimate — Python dict internals vary by version — but a
#: deliberate *over*-estimate, so partials never starve full columns)
_PARTIAL_ENTRY_BYTES = 96


@dataclass
class SocialCacheStats:
    """Lifetime counters of one :class:`SocialColumnCache`.

        >>> from repro.social import SocialCacheStats
        >>> stats = SocialCacheStats(hits=3, misses=1)
        >>> stats.snapshot()["hits"]
        3
    """

    #: lookups answered by a fully materialised column
    hits: int = 0
    #: lookups that checked out a parked partial expansion to resume
    resumes: int = 0
    #: lookups that found neither (the query expands from scratch)
    misses: int = 0
    #: partial columns completed and promoted to full on check-in
    promotions: int = 0
    #: entries dropped by the byte-budget LRU
    evictions: int = 0
    #: full invalidations (edge-epoch bumps)
    invalidations: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "resumes": self.resumes,
            "misses": self.misses,
            "promotions": self.promotions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class _Full:
    __slots__ = ("column", "bytes")

    def __init__(self, column, nbytes: int) -> None:
        self.column = column
        self.bytes = nbytes


class _Partial:
    __slots__ = ("iterator", "bytes")

    def __init__(self, iterator: DijkstraIterator, nbytes: int) -> None:
        self.iterator = iterator
        self.bytes = nbytes


class SocialColumnCache:
    """Byte-bounded LRU of social-distance columns, keyed by query user.

        >>> from repro import SocialGraph
        >>> from repro.backend import PythonKernels
        >>> from repro.graph.traversal import DijkstraIterator
        >>> from repro.social import SocialColumnCache
        >>> g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        >>> cache = SocialColumnCache(3, PythonKernels())
        >>> cache.acquire(0)
        (None, None)
        >>> it = DijkstraIterator(g, 0)
        >>> _ = it.run_to_completion()
        >>> cache.checkin(0, it)      # exhausted: promoted to a column
        >>> kind, column = cache.acquire(0)
        >>> kind, list(column)
        ('full', [0.0, 1.0, 2.0])

    Thread-safe: every operation holds one internal lock, so concurrent
    queries under the engine's shared read lock never observe a
    half-updated entry.  A *partial* entry is checked out exclusively
    (removed on :meth:`acquire`), so only one search ever advances a
    parked iterator; :meth:`checkin` resolves races by keeping the
    expansion with the larger settled radius.
    """

    def __init__(self, n: int, kernels, max_bytes: int = DEFAULT_SOCIAL_CACHE_BYTES) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.n = n
        self.kernels = kernels
        self.max_bytes = max_bytes
        self.stats = SocialCacheStats()
        self._entries: "OrderedDict[int, _Full | _Partial]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    # -- introspection -------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def contains_full(self, user: int) -> bool:
        """Whether a fully materialised column for ``user`` is cached —
        O(1), no statistics, no LRU touch (the planner's warm-vs-cold
        feature probe, which must never perturb what it observes)."""
        return isinstance(self._entries.get(user), _Full)

    def info(self) -> dict:
        """State + lifetime counters as one plain dict (stable keys)."""
        with self._lock:
            columns = sum(1 for e in self._entries.values() if isinstance(e, _Full))
            payload = {
                "entries": len(self._entries),
                "columns": columns,
                "partials": len(self._entries) - columns,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }
            payload.update(self.stats.snapshot())
            return payload

    # -- lookup --------------------------------------------------------

    def acquire(self, user: int):
        """``("full", column)``, ``("partial", iterator)``, or
        ``(None, None)`` for ``user``.

        A full column is shared (callers must treat it as read-only); a
        partial expansion is **checked out** — removed from the cache so
        exactly one search advances it — and should come back via
        :meth:`checkin` whether or not it was advanced."""
        with self._lock:
            if not self.max_bytes:
                return None, None
            entry = self._entries.get(user)
            if entry is None:
                self.stats.misses += 1
                return None, None
            if isinstance(entry, _Full):
                self._entries.move_to_end(user)
                self.stats.hits += 1
                return "full", entry.column
            del self._entries[user]
            self._bytes -= entry.bytes
            self.stats.resumes += 1
            return "partial", entry.iterator

    def peek_full(self, user: int):
        """The full column for ``user`` if one is cached (records a
        hit), else ``None`` — *without* recording a miss: peek callers
        (stream repairs, the sharded coordinator's scatter bypass) have
        their own fallback path and are probing, not demanding."""
        with self._lock:
            entry = self._entries.get(user)
            if isinstance(entry, _Full):
                self._entries.move_to_end(user)
                self.stats.hits += 1
                return entry.column
            return None

    # -- store ---------------------------------------------------------

    def store_full(self, user: int, column) -> None:
        """Cache a fully materialised column for ``user`` (replaces any
        existing entry; no-op when it cannot fit the budget at all)."""
        nbytes = self.n * _COLUMN_ENTRY_BYTES
        with self._lock:
            if not self.max_bytes or nbytes > self.max_bytes:
                return
            self._evict_user_locked(user)
            self._entries[user] = _Full(column, nbytes)
            self._bytes += nbytes
            self._shrink_locked()

    def checkin(self, user: int, iterator: DijkstraIterator) -> None:
        """Park ``iterator`` (typically just checked out and advanced)
        as ``user``'s partial column.  An exhausted iterator is
        *promoted*: its settled map is marshalled into a dense column
        once, and every later query scans instead of traversing.  If a
        concurrent search raced a fresh entry in, the expansion with
        the larger settled radius wins (both are exact — distances are
        schedule-independent — so either is correct; the larger one
        simply resumes further along)."""
        if not self.max_bytes:
            return
        if iterator.exhausted:
            column = self.kernels.dense_from_dict(self.n, iterator.settled, INF)
            with self._lock:
                self.stats.promotions += 1
            self.store_full(user, column)
            return
        nbytes = max(1, len(iterator.settled)) * _PARTIAL_ENTRY_BYTES
        with self._lock:
            if nbytes > self.max_bytes:
                return
            existing = self._entries.get(user)
            if isinstance(existing, _Full):
                return  # a finished column supersedes any partial radius
            if isinstance(existing, _Partial) and len(existing.iterator.settled) >= len(
                iterator.settled
            ):
                self._entries.move_to_end(user)
                return
            self._evict_user_locked(user)
            self._entries[user] = _Partial(iterator, nbytes)
            self._bytes += nbytes
            self._shrink_locked()

    # -- invalidation / sizing ----------------------------------------

    def invalidate_all(self) -> None:
        """Drop every entry (the edge-epoch bump: a social-edge update
        may change any distance from any source)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.stats.invalidations += 1

    def resize(self, max_bytes: int) -> None:
        """Change the byte budget in place (the searchers hold this
        instance by reference, so the service-layer knob resizes the
        live cache rather than rebuilding engines); shrinking evicts
        LRU-first immediately, ``0`` empties and disables."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        with self._lock:
            self.max_bytes = max_bytes
            self._shrink_locked()

    # -- internals (caller holds the lock) -----------------------------

    def _evict_user_locked(self, user: int) -> None:
        entry = self._entries.pop(user, None)
        if entry is not None:
            self._bytes -= entry.bytes

    def _shrink_locked(self) -> None:
        while self._entries and self._bytes > self.max_bytes:
            _, entry = self._entries.popitem(last=False)
            self._bytes -= entry.bytes
            self.stats.evictions += 1
