"""Cross-query social-distance reuse.

Social-distance columns are pure functions of the (immutable-per-
engine) social graph, so they are cacheable across queries with *zero*
accuracy cost: :class:`SocialColumnCache` memoizes full dense columns
and parks partially-expanded :class:`~repro.graph.traversal.
DijkstraIterator` states per query user, invalidated only when social
edges change — location moves never touch it.  See
:mod:`repro.social.cache` for the epoch argument, :mod:`repro.social.
resume` for the replay contract that keeps resumed streams
bit-identical to cold ones, and :mod:`repro.social.scan` /
:mod:`repro.social.fused` for the shared columnar scoring paths.
"""

from repro.social.cache import (
    DEFAULT_SOCIAL_CACHE_BYTES,
    SocialCacheStats,
    SocialColumnCache,
)
from repro.social.fused import fused_variants
from repro.social.resume import ReplayedDijkstra
from repro.social.scan import dense_scan, materialize_column

__all__ = [
    "DEFAULT_SOCIAL_CACHE_BYTES",
    "ReplayedDijkstra",
    "SocialCacheStats",
    "SocialColumnCache",
    "dense_scan",
    "fused_variants",
    "materialize_column",
]
