"""The aggregate index of Section 5.1: a multi-level spatial grid whose
cells carry *social summaries* — per-landmark min/max distance vectors
(``m̌``/``m̂``) over the users they contain — enabling the combined
lower bound ``MINF`` that drives the AIS branch-and-bound search.
"""

from repro.index.aggregate import AggregateIndex
from repro.index.bounds import minf, social_lower_bound
from repro.index.summaries import SocialSummary

__all__ = ["AggregateIndex", "SocialSummary", "minf", "social_lower_bound"]
