"""The AIS aggregate index (paper Section 5.1).

A two-level regular grid over user locations (every internal node parent
to ``s x s`` leaf cells) where each nonempty node carries a
:class:`~repro.index.summaries.SocialSummary` — per-landmark min/max
graph-distance vectors over the users below it.  Together with a cell's
spatial extent this yields ``MINF``, a lower bound on the ranking score
of every user in the cell (Theorem 1), enabling the unified
branch-and-bound search of :class:`~repro.core.ais.AggregateIndexSearch`.

Location updates follow the paper's protocol: deletion from the old
leaf, insertion into the new one; summaries shrink by recomputation when
a boundary-defining member leaves, widen in O(M) on insertion, and
changes propagate recursively to parent nodes.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.graph.landmarks import LandmarkIndex
from repro.index.summaries import SocialSummary
from repro.spatial.multigrid import MultiLevelGrid
from repro.spatial.point import BBox, LocationTable

INF = math.inf


class AggregateIndex:
    """Multi-level grid with social summaries.

        >>> from repro import AggregateIndex, SocialGraph, LocationTable
        >>> from repro.graph.landmarks import LandmarkIndex
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> index = AggregateIndex.build(loc, LandmarkIndex.build(g, 2, "degree", 0), s=2)
        >>> len(list(index.tops()))   # occupied top-level cells
        2
    """

    def __init__(
        self,
        multigrid: MultiLevelGrid,
        landmarks: LandmarkIndex,
        locations: LocationTable,
    ) -> None:
        self.grid = multigrid
        self.landmarks = landmarks
        self.locations = locations
        self.leaf_summaries: dict[tuple[int, int], SocialSummary] = {}
        self.top_summaries: dict[tuple[int, int], SocialSummary] = {}
        self._rebuild_summaries()

    @classmethod
    def build(
        cls,
        locations: LocationTable,
        landmarks: LandmarkIndex,
        s: int = 10,
        users: Iterable[int] | None = None,
    ) -> "AggregateIndex":
        """Index every located user at grid fanout ``s`` (leaf
        resolution ``s² x s²``).  With ``users``, only that subset is
        indexed — the member-filtered form a spatial shard's engine
        builds, where the location table stays global but the index
        covers one partition."""
        return cls(MultiLevelGrid.build(locations, s, users), landmarks, locations)

    def _rebuild_summaries(self) -> None:
        m = self.landmarks.m
        vector = self.landmarks.vector
        self.leaf_summaries = {}
        for leaf, users in self.grid.leaf_grid.cells.items():
            self.leaf_summaries[leaf] = SocialSummary.of_vectors(
                m, (vector(u) for u in users)
            )
        self.top_summaries = {}
        for leaf, summary in self.leaf_summaries.items():
            top = self.grid.parent_of(leaf)
            parent = self.top_summaries.get(top)
            if parent is None:
                parent = SocialSummary(m)
                self.top_summaries[top] = parent
            parent.widen(summary.m_check)
            parent.widen(summary.m_hat)

    # -- search-facing accessors ----------------------------------------

    @property
    def s(self) -> int:
        return self.grid.s

    def tops(self) -> Iterator[tuple[tuple[int, int], SocialSummary, BBox]]:
        """Nonempty top-level nodes with summaries and extents."""
        for top in self.grid.nonempty_tops():
            yield top, self.top_summaries[top], self.grid.top_bbox(top)

    def children(
        self, top: tuple[int, int]
    ) -> Iterator[tuple[tuple[int, int], SocialSummary, BBox]]:
        """Nonempty leaf children of ``top``."""
        for leaf in self.grid.children_of(top):
            yield leaf, self.leaf_summaries[leaf], self.grid.leaf_bbox(leaf)

    def users_in(self, leaf: tuple[int, int]) -> list[int]:
        return self.grid.users_in_leaf(leaf)

    def user_ids(self, leaf: tuple[int, int]):
        """Leaf membership as a cached contiguous id-array — the
        columnar form the batched AIS leaf expansion feeds to
        :mod:`repro.backend` kernels."""
        return self.grid.ids_in_leaf(leaf)

    def spatial_mindist(self, bbox: BBox, node: tuple[int, int], is_top: bool, x: float, y: float) -> float:
        """Lower bound on the distance from ``(x, y)`` to any user under
        the node.  Border nodes are unbounded outward (clamped users may
        physically lie outside their cell after updates), so for an
        out-of-box query point they bound at 0."""
        if not self.grid.bbox.contains(x, y):
            res = self.grid.s if is_top else self.grid.s * self.grid.s
            ix, iy = node
            if ix == 0 or iy == 0 or ix == res - 1 or iy == res - 1:
                return 0.0
        return bbox.mindist(x, y)

    def __len__(self) -> int:
        return len(self.grid)

    def __contains__(self, user: int) -> bool:
        return user in self.grid

    # -- maintenance -------------------------------------------------------

    def insert_user(self, user: int, x: float, y: float) -> None:
        """Index a (newly located) user at ``(x, y)``.

        The caller is responsible for having updated the location table
        first (the index reads member coordinates on recomputation).
        """
        leaf = self.grid.insert(user, x, y)
        self._widen(leaf, self.landmarks.vector(user))

    def remove_user(self, user: int) -> None:
        """De-index a user (e.g. their location became unknown)."""
        leaf = self.grid.leaf_of_user(user)
        if leaf is None:
            raise KeyError(f"user {user} is not indexed")
        self.grid.remove(user)
        self._shrink(leaf, self.landmarks.vector(user))

    def move_user(self, user: int, x: float, y: float) -> None:
        """Relocate an indexed user (paper's update protocol: deletion
        from the old cell + insertion into the new one; an intra-cell
        move touches no summaries)."""
        old_leaf = self.grid.leaf_of_user(user)
        if old_leaf is None:
            self.insert_user(user, x, y)
            return
        new_leaf = self.grid.leaf_of(x, y)
        if new_leaf == old_leaf:
            return  # footnote 2: same cell, no maintenance needed
        vector = self.landmarks.vector(user)
        self.grid.remove(user)
        self._shrink(old_leaf, vector)
        relanded = self.grid.insert(user, x, y)
        self._widen(relanded, vector)

    # -- summary maintenance helpers ------------------------------------

    def _widen(self, leaf: tuple[int, int], vector: tuple[float, ...]) -> None:
        summary = self.leaf_summaries.get(leaf)
        if summary is None:
            summary = SocialSummary(self.landmarks.m)
            self.leaf_summaries[leaf] = summary
        if not summary.widen(vector):
            return
        top = self.grid.parent_of(leaf)
        parent = self.top_summaries.get(top)
        if parent is None:
            parent = SocialSummary(self.landmarks.m)
            self.top_summaries[top] = parent
        parent.widen(vector)

    def _shrink(self, leaf: tuple[int, int], vector: tuple[float, ...]) -> None:
        summary = self.leaf_summaries[leaf]
        members = self.grid.users_in_leaf(leaf)
        if not members:
            del self.leaf_summaries[leaf]
        elif summary.touches(vector):
            lm_vector = self.landmarks.vector
            summary.replace_from(lm_vector(u) for u in members)
        else:
            # The departing vector defined no bound: nothing changes here
            # or above.
            return
        self._shrink_parent(leaf, vector)

    def _shrink_parent(self, leaf: tuple[int, int], vector: tuple[float, ...]) -> None:
        top = self.grid.parent_of(leaf)
        parent = self.top_summaries.get(top)
        if parent is None:
            return
        children = [
            self.leaf_summaries[child]
            for child in self.grid.children_of(top)
            if child in self.leaf_summaries
        ]
        if not children:
            del self.top_summaries[top]
            return
        if parent.touches(vector):
            parent.replace_from(
                vec for child in children for vec in (child.m_check, child.m_hat)
            )
