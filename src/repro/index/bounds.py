"""Lower bounds for the AIS branch-and-bound search (Section 5.1).

Two ingredients per index cell ``C``:

- spatial: ``ď(u_q, C)`` — minimum Euclidean distance from the query
  point to the cell rectangle (:meth:`repro.spatial.point.BBox.mindist`);
- social: ``p̌(v_q, C)`` — Lemma 2's extension of the landmark triangle
  inequality from single vertices to *groups* of vertices, using the
  cell's min/max landmark-distance vectors.

Their ``α``-combination is Theorem 1's ``MINF``, a valid lower bound on
the score of every user under ``C``.

Infinite landmark distances (vertices disconnected from a landmark) are
handled without NaN and keep every bound valid; see the case analysis
in :func:`social_lower_bound`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.ranking import RankingFunction

INF = math.inf


def social_lower_bound(
    query_vector: Sequence[float],
    m_check: Sequence[float],
    m_hat: Sequence[float],
) -> float:
    """Lemma 2: lower bound on ``p(v_q, v_i)`` for every vertex ``v_i``
    summarised by ``(m̌, m̂)``.

    For the ``j``-th landmark with query distance ``m_qj``::

        m_qj < m̌[j]  ->  bound m̌[j] − m_qj
        m_qj > m̂[j]  ->  bound m_qj − m̂[j]
        otherwise    ->  no information from this landmark

    Infinity cases (``inf`` encodes disconnection): when ``m_qj`` is
    finite but ``m̌[j] = inf``, every summarised vertex is disconnected
    from landmark ``j`` while the query reaches it — so they are
    disconnected from the query and the bound ``inf`` is exact.  The
    symmetric case (``m_qj = inf``, ``m̂[j]`` finite) is analogous.  When
    both sides are infinite the landmark is simply uninformative (the
    comparisons are false and contribute 0).
    """
    best = 0.0
    for j, mqj in enumerate(query_vector):
        lo = m_check[j]
        if mqj < lo:
            bound = lo - mqj
        else:
            hi = m_hat[j]
            if mqj > hi:
                bound = mqj - hi
            else:
                continue
        if bound > best:
            best = bound
            if best == INF:
                return INF
    return best


def social_lower_bound_vertex(
    query_vector: Sequence[float], vertex_vector: Sequence[float]
) -> float:
    """Per-vertex landmark lower bound ``p̌(v_q, v_i)`` (the degenerate
    cell with ``m̌ = m̂ = m_i``), used when leaf cells push individual
    users into the AIS heap."""
    best = 0.0
    for j, mqj in enumerate(query_vector):
        mij = vertex_vector[j]
        if mqj == mij:
            continue
        if mqj == INF or mij == INF:
            return INF
        diff = mqj - mij if mqj > mij else mij - mqj
        if diff > best:
            best = diff
    return best


def minf(
    rank: RankingFunction,
    social_bound: float,
    spatial_bound: float,
) -> float:
    """Theorem 1: ``MINF = α·p̌ + (1−α)·ď`` (normalised, weighted)."""
    return rank.social_part(social_bound) + rank.spatial_part(spatial_bound)
