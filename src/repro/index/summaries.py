"""Per-cell social summaries: the ``(m̌, m̂)`` vector pairs.

A summary over a set of vertices keeps, per landmark ``j``, the minimum
(``m̌[j]``) and maximum (``m̂[j]``) landmark distance among its members
(paper Section 5.1).  Summaries compose: a parent node's summary is the
component-wise min/max over its children's, which is how leaf summaries
propagate upward and how location updates ripple through the index.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

INF = math.inf


class SocialSummary:
    """Mutable min/max landmark-distance vectors for one index node."""

    __slots__ = ("m_check", "m_hat")

    def __init__(self, m: int) -> None:
        #: per-landmark minimum distance over members (inf when empty)
        self.m_check = [INF] * m
        #: per-landmark maximum distance over members (-inf when empty)
        self.m_hat = [-INF] * m

    @property
    def empty(self) -> bool:
        return self.m_hat[0] == -INF if self.m_hat else True

    @classmethod
    def of_vectors(cls, m: int, vectors: Iterable[Sequence[float]]) -> "SocialSummary":
        summary = cls(m)
        for vector in vectors:
            summary.widen(vector)
        return summary

    def widen(self, vector: Sequence[float]) -> bool:
        """Account for a new member vector; returns ``True`` if either
        bound vector changed (meaning parents may need widening too)."""
        changed = False
        m_check, m_hat = self.m_check, self.m_hat
        for j, value in enumerate(vector):
            if value < m_check[j]:
                m_check[j] = value
                changed = True
            if value > m_hat[j]:
                m_hat[j] = value
                changed = True
        return changed

    def touches(self, vector: Sequence[float]) -> bool:
        """Whether a member with this vector defines any min/max
        component — i.e. whether removing it may shrink the summary."""
        m_check, m_hat = self.m_check, self.m_hat
        for j, value in enumerate(vector):
            if value == m_check[j] or value == m_hat[j]:
                return True
        return False

    def replace_from(self, vectors: Iterable[Sequence[float]]) -> None:
        """Recompute both bound vectors from scratch over ``vectors``."""
        m = len(self.m_check)
        self.m_check = [INF] * m
        self.m_hat = [-INF] * m
        for vector in vectors:
            self.widen(vector)

    def as_tuple(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        return tuple(self.m_check), tuple(self.m_hat)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialSummary):
            return NotImplemented
        return self.m_check == other.m_check and self.m_hat == other.m_hat

    def __repr__(self) -> str:
        return f"SocialSummary(m_check={self.m_check}, m_hat={self.m_hat})"
