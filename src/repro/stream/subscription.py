"""The standing-query handle and the stream-maintenance counters.

A :class:`Subscription` is owned by a
:class:`~repro.stream.registry.SubscriptionRegistry`: the registry
mutates its pending-delta state under its own lock, applies repairs
and recomputes on read, and keeps the per-subscription counters that
let operators see *why* maintenance is cheap (how many updates were
proven irrelevant versus repaired versus recomputed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ranking import RankingFunction
from repro.stream.conditions import REPAIRABLE_METHODS, entry_radius

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import SSRQResult
    from repro.graph.traversal import DijkstraIterator

INF = math.inf


class Subscription:
    """One registered standing query ``(user, k, α, method, t)``.

    Created by :meth:`SubscriptionRegistry.subscribe
    <repro.stream.registry.SubscriptionRegistry.subscribe>`; treat it
    as an opaque handle plus read-only introspection.  ``method`` is
    stored pre-routed (endpoint α values route exactly like
    :meth:`~repro.core.engine.GeoSocialEngine.query` does), and
    ``repairable`` says whether single-candidate repair applies (see
    :data:`~repro.stream.conditions.REPAIRABLE_METHODS`).

        >>> from repro import GeoSocialEngine, QueryService, gowalla_like
        >>> from repro.stream import SubscriptionRegistry
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> registry = SubscriptionRegistry(QueryService(engine, cache_size=0))
        >>> sub = registry.subscribe(user=8, k=5, alpha=0.3, method="tsa")
        >>> sub.user, sub.k, sub.repairable, sub.active
        (8, 5, True, True)
        >>> len(registry.result(sub).users)
        5
    """

    __slots__ = (
        "user",
        "k",
        "alpha",
        "method",
        "t",
        "rank",
        "repairable",
        "result",
        "member_ids",
        "suspended",
        "error",
        "group",
        "pending",
        "recompute_pending",
        "noops",
        "repairs",
        "recomputes",
        "_dijkstra",
    )

    def __init__(
        self,
        user: int,
        k: int,
        alpha: float,
        method: str,
        t: int | None,
        rank: RankingFunction,
    ) -> None:
        self.user = user
        self.k = k
        self.alpha = alpha
        self.method = method
        self.t = t
        self.rank = rank
        self.repairable = method in REPAIRABLE_METHODS
        #: the maintained answer (``None`` while suspended)
        self.result: "SSRQResult | None" = None
        #: current result membership (kept in lockstep with ``result``)
        self.member_ids: frozenset = frozenset()
        #: True while the query user has no location and the query's
        #: α needs one — a fresh query would raise; so does reading
        self.suspended = False
        self.error: str | None = None
        #: delta-routing group key (owning shard id, or ``None``)
        self.group: int | None = None
        #: users whose moves await application — ids only: the repair
        #: pass reads their *current* positions from the location table
        self.pending: set[int] = set()
        self.recompute_pending = False
        self.noops = 0
        self.repairs = 0
        self.recomputes = 0
        self._dijkstra: "DijkstraIterator | None" = None

    # -- introspection -------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the subscription currently holds a servable result."""
        return not self.suspended

    @property
    def dirty(self) -> bool:
        """Whether un-applied deltas are queued (the next read applies
        them)."""
        return self.recompute_pending or bool(self.pending)

    def members(self) -> frozenset:
        """Current result membership (empty while suspended)."""
        return self.member_ids

    def entry_reach(self) -> float:
        """Spatial radius beyond which no mover can enter this top-k
        (``inf`` while the buffer has an open slot; ``0`` when
        locations cannot matter)."""
        if self.alpha == 1.0 or self.rank.w_spatial == 0.0:
            return 0.0
        if self.suspended or self.recompute_pending or self.result is None:
            return 0.0  # already marked / nothing maintained: no screen needed
        if len(self.result.neighbors) < self.k:
            return INF
        return entry_radius(self.result.fk, self.rank.w_spatial)

    def __repr__(self) -> str:
        state = "suspended" if self.suspended else ("dirty" if self.dirty else "clean")
        return (
            f"Subscription(user={self.user}, k={self.k}, alpha={self.alpha}, "
            f"method={self.method!r}, {state})"
        )


@dataclass
class StreamStats:
    """Lifetime counters of one :class:`SubscriptionRegistry`.

        >>> from repro.stream import StreamStats
        >>> stats = StreamStats(noops=8, repair_marks=1, recompute_marks=1)
        >>> stats.snapshot()["noops"]
        8
        >>> round(stats.maintained_fraction, 2)
        0.9
    """

    #: subscriptions ever registered / currently registered
    subscribed: int = 0
    active: int = 0
    #: location / edge updates observed by the listeners
    location_updates: int = 0
    edge_updates: int = 0
    #: per-(update, subscription) classifications
    noops: int = 0
    repair_marks: int = 0
    recompute_marks: int = 0
    #: repair / recompute passes actually executed at read time
    repairs_applied: int = 0
    recomputes_applied: int = 0
    #: exact social-distance evaluations paid by repairs
    entrant_evaluations: int = 0
    #: whole subscription groups skipped by the shard-aware router
    group_skips: int = 0
    #: engine swaps detected (rebuild_engine): everything recomputed
    engine_swaps: int = 0
    #: subscriptions currently suspended (query user unlocated)
    suspended: int = 0

    @property
    def maintained_fraction(self) -> float:
        """Fraction of per-subscription classifications that avoided a
        full recompute (``0.0`` before any classification)."""
        total = self.noops + self.repair_marks + self.recompute_marks
        return (self.noops + self.repair_marks) / total if total else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view (stable keys, handy for logging)."""
        return {
            "subscribed": self.subscribed,
            "active": self.active,
            "location_updates": self.location_updates,
            "edge_updates": self.edge_updates,
            "noops": self.noops,
            "repair_marks": self.repair_marks,
            "recompute_marks": self.recompute_marks,
            "repairs_applied": self.repairs_applied,
            "recomputes_applied": self.recomputes_applied,
            "entrant_evaluations": self.entrant_evaluations,
            "group_skips": self.group_skips,
            "engine_swaps": self.engine_swaps,
            "suspended": self.suspended,
            "maintained_fraction": self.maintained_fraction,
        }
