"""The NO-OP / REPAIR / RECOMPUTE decision rule for one update.

A standing top-k result ``R`` for query ``(q, k, α)`` changes under a
location update of user ``m`` in exactly three ways, and each is
detectable from ``R`` alone (the per-update *safe-condition* screen):

NO-OP
    The update provably cannot change ``R``.  Pure-social queries
    (``α = 1``) never see locations; and a mover outside ``R`` cannot
    enter it when even the spatial part of its new score already
    exceeds the threshold ``θ = f_k``: scores are
    ``f = α·p/P_max + (1−α)·d/D_max`` with ``p ≥ 0``, so
    ``(1−α)/D_max · d(q, m_new) > θ`` proves ``m`` out (the exact
    screening bound of
    :meth:`repro.service.cache.ResultCache.invalidate_location_update`,
    floating-point association mirrored).

REPAIR
    The update can change ``R``, but the new ``R`` is a function of the
    old one plus a *single candidate re-score*:

    - ``m ∈ R``: the move changed only ``m``'s spatial term — its
      social distance is location-independent and already stored on the
      :class:`~repro.core.result.Neighbor`.  If the re-scored key
      ``(f′, m)`` still does not exceed the old k-th key
      ``(f_k, id_k)``, every user outside ``R`` still scores strictly
      worse than the new k-th, so re-sorting ``R`` with ``m``'s new
      score *is* the fresh answer.  If it does exceed it, ``m`` may
      drop out and the old (k+1)-th — unknown — may return: RECOMPUTE.
    - ``m ∉ R`` and the screen cannot prove it out: score ``m`` exactly
      and offer it; it either displaces the current k-th or changes
      nothing.  (With ``|R| < k`` every located user is a candidate —
      the buffer has an open slot.)

RECOMPUTE
    The previous result carries no usable information: the *query
    user* moved (every spatial term changed), a member lost its
    location (it leaves, and the old (k+1)-th is unknown), or a member
    re-score escalated as above.

Safety argument (why REPAIR is exact): a fresh query's ranking differs
from ``R`` only in the scores of users whose location changed.  Every
non-moved non-member had key ``> (f_k, id_k)`` when ``R`` was exact —
that is precisely the top-k property — and repairs never raise the
k-th key above its old value, so those users remain out after the
repair; the moved users are re-scored with the engine's own primitives
(stored social distance, ``sqrt(dx²+dy²)`` spatial, the
:class:`~repro.core.ranking.RankingFunction` float association), so
admitted scores are bit-identical to what the search would have
produced.  The rule is therefore *exact*, not heuristic — the
differential suite (``tests/test_stream_equivalence.py``) pins
maintained ≡ fresh over randomized interleavings.

Repairs reuse stored social distances, so they are only offered for
methods whose social distances are schedule-independent (forward
Dijkstra values — :data:`REPAIRABLE_METHODS`).  The AIS family's
bidirectional evaluations may legitimately differ by float association
(≤ 1 ulp, see :mod:`repro.shard.engine`), so AIS subscriptions skip
REPAIR and fall through to RECOMPUTE — NO-OP screening, the common
case, still applies.
"""

from __future__ import annotations

import math
from typing import Container

from repro.core.engine import FORWARD_DETERMINISTIC_METHODS

INF = math.inf
_sqrt = math.sqrt

#: update classifications
NOOP = "noop"
REPAIR = "repair"
RECOMPUTE = "recompute"

#: the methods single-candidate repair applies to: exactly the ones
#: whose per-neighbor social distances are schedule-independent
#: forward-Dijkstra values, so a stored distance is bit-identical to
#: what a fresh search would recompute (a *core* property — see
#: :data:`repro.core.engine.FORWARD_DETERMINISTIC_METHODS`).  The AIS
#: family and the CH-backed methods evaluate bidirectionally
#: (association may differ by 1 ulp between schedules) and are not
#: repaired.
REPAIRABLE_METHODS = FORWARD_DETERMINISTIC_METHODS


def entry_lower_bound(
    w_spatial: float, qx: float, qy: float, x: float, y: float
) -> float:
    """Spatial lower bound on the mover's new score as the engine would
    compute it: ``fl(w_spatial · sqrt(dx² + dy²))``.

    Mirrors :class:`~repro.core.ranking.RankingFunction`'s association
    exactly (``w_spatial`` is pre-divided by ``D_max``), so comparing
    it against ``f_k`` with ``>`` is a sound NO-OP proof: the engine's
    score ``fl(w_social·p + w_spatial·d)`` is never below
    ``fl(w_spatial·d)`` for non-negative parts.

        >>> from repro.stream.conditions import entry_lower_bound
        >>> entry_lower_bound(0.5, 0.0, 0.0, 3.0, 4.0)
        2.5
    """
    dx = qx - x
    dy = qy - y
    return w_spatial * _sqrt(dx * dx + dy * dy)


def entry_radius(fk: float, w_spatial: float) -> float:
    """The spatial *reach* of a standing query: the distance beyond
    which no mover can enter its top-k.

    Conservatively inflated (relative ``1e-9`` + absolute ``1e-12``,
    far beyond 1-ulp rounding of the division) so that
    ``d > entry_radius(fk, w)`` implies ``fl(w·d) > fk`` — the
    per-subscription screen — for *any* ``d`` at least that far away.
    Used by the shard-aware delta router to skip whole groups of
    subscriptions in O(1).

        >>> from repro.stream.conditions import entry_radius
        >>> entry_radius(1.0, 0.5) >= 2.0
        True
        >>> entry_radius(float("inf"), 0.5)
        inf
        >>> entry_radius(1.0, 0.0)
        inf
    """
    if w_spatial <= 0.0 or fk == INF:
        return INF
    return (fk * (1.0 + 1e-9) + 1e-12) / w_spatial


def classify_location_update(
    mover: int,
    x: float | None,
    y: float | None,
    *,
    query_user: int,
    alpha: float,
    w_spatial: float,
    members: Container[int],
    size: int,
    k: int,
    fk: float,
    query_xy: tuple[float, float] | None,
) -> str:
    """Classify one location update against one standing query.

    ``members``/``size``/``fk`` describe the current result ``R``
    (``fk`` is the k-th score, ``inf`` while ``size < k``);
    ``query_xy`` is the query user's current position (``None`` when
    unlocated).  ``x is None`` encodes a forgotten location.

        >>> from repro.stream.conditions import classify_location_update
        >>> classify_location_update(
        ...     9, 5.0, 5.0, query_user=0, alpha=0.3, w_spatial=0.7,
        ...     members=frozenset({1, 2}), size=2, k=2, fk=0.4,
        ...     query_xy=(0.0, 0.0))
        'noop'
        >>> classify_location_update(
        ...     1, 0.1, 0.1, query_user=0, alpha=0.3, w_spatial=0.7,
        ...     members=frozenset({1, 2}), size=2, k=2, fk=0.4,
        ...     query_xy=(0.0, 0.0))
        'repair'
        >>> classify_location_update(
        ...     0, 0.9, 0.9, query_user=0, alpha=0.3, w_spatial=0.7,
        ...     members=frozenset({1, 2}), size=2, k=2, fk=0.4,
        ...     query_xy=(0.0, 0.0))
        'recompute'
    """
    if alpha == 1.0 or w_spatial == 0.0:
        return NOOP  # pure social: locations never matter
    if mover == query_user:
        return RECOMPUTE  # every spatial term changed (or q vanished)
    if x is None or y is None:
        # A forgotten location can only push the mover's score to inf:
        # a member drops out (old (k+1)-th unknown), a non-member
        # changes nothing.
        return RECOMPUTE if mover in members else NOOP
    if mover in members:
        return REPAIR  # single-candidate re-score (may escalate)
    if size < k:
        return REPAIR  # open slot: any located user may join
    if query_xy is None:
        return RECOMPUTE  # cannot screen without the query point
    lower = entry_lower_bound(w_spatial, query_xy[0], query_xy[1], x, y)
    # `>` (not `>=`): at equality the mover could still enter on the
    # smaller-id tie-break (same rule as the cache's screen).
    if lower > fk:
        return NOOP
    return REPAIR
