"""The subscription registry: standing queries kept current across the
update stream.

:class:`SubscriptionRegistry` sits on top of a
:class:`~repro.service.QueryService` and its engine (single or
sharded — both expose the same listener/lock surface):

- **ingest** — it subscribes to the engine's location-listener hook
  (and the service's edge-update stream), so every update applied
  through *any* path is observed inside the update's write lock;
- **classify** — each (update, subscription) pair is screened with the
  NO-OP / REPAIR / RECOMPUTE rule of :mod:`repro.stream.conditions`:
  O(1) per subscription, no queries, no social distances;
- **route** — subscriptions are grouped by the *owning shard of their
  query user*; a group whose shard envelope (the widen-only
  :class:`~repro.shard.bounds.ShardBounds` bbox, which always contains
  its members) lies farther from the update than the group's
  :meth:`~repro.stream.subscription.Subscription.entry_reach` is
  skipped whole — on a sharded engine an update fans out only to
  shards whose pruning envelopes intersect it;
- **apply** — classifications only *mark*; the marked work is applied
  in one batched pass per subscription at read time (or via
  :meth:`SubscriptionRegistry.flush`), so a burst of moves costs one
  repair pass, not one per move.  Repairs re-score exactly the moved
  users — stored social distances, one
  :meth:`~repro.backend.base.Kernels.euclidean_to_point` call for the
  spatial column, a :class:`~repro.core.result.TopKBuffer` rebuild —
  and escalate to a recompute the moment the safe condition fails.

Reads are *linearizable with updates*: :meth:`SubscriptionRegistry.result`
applies pending work under the engine's read lock before returning, so
no stale result survives its invalidating update.

    >>> from repro import GeoSocialEngine, QueryService, gowalla_like
    >>> from repro.stream import SubscriptionRegistry
    >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
    >>> service = QueryService(engine, cache_size=64)
    >>> registry = SubscriptionRegistry(service)
    >>> sub = registry.subscribe(user=8, k=5, alpha=0.3, method="tsa")
    >>> registry.result(sub).users == engine.query(8, 5, 0.3, "tsa").users
    True
    >>> service.move_user(42, 0.9, 0.9)
    >>> registry.result(sub).users == engine.query(8, 5, 0.3, "tsa").users
    True
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Iterator

from repro.core.engine import AUTO, METHODS
from repro.core.ranking import RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.traversal import DijkstraIterator
from repro.service.model import QueryRequest
from repro.stream.conditions import (
    NOOP,
    RECOMPUTE,
    REPAIR,
    classify_location_update,
)
from repro.stream.subscription import StreamStats, Subscription
from repro.utils.validation import check_user

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import QueryService

INF = math.inf


class _Group:
    """Subscriptions routed together (same owning shard of their query
    users), with a cached conservative entry radius."""

    __slots__ = ("sid", "subs", "radius", "dirty")

    def __init__(self, sid: int | None) -> None:
        self.sid = sid
        self.subs: set[Subscription] = set()
        self.radius = INF
        self.dirty = True

    def refresh_radius(self) -> None:
        self.radius = max(
            (sub.entry_reach() for sub in self.subs), default=0.0
        )
        self.dirty = False


class SubscriptionRegistry:
    """Continuous top-k subscriptions over a query service.

        >>> from repro import GeoSocialEngine, QueryService, gowalla_like
        >>> from repro.stream import SubscriptionRegistry
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> registry = SubscriptionRegistry(QueryService(engine, cache_size=0))
        >>> sub = registry.subscribe(user=8, k=5, alpha=0.3, method="spa")
        >>> engine.move_user(8, 0.5, 0.5)     # query user moved: recompute
        >>> registry.result(sub).users == engine.query(8, 5, 0.3, "spa").users
        True
        >>> registry.stats.recompute_marks
        1

    Parameters
    ----------
    service:
        The serving layer whose engine's update stream to follow.  The
        registry detects :meth:`~repro.service.QueryService.rebuild_engine`
        swaps on the next read and recomputes every subscription
        against the new engine.
    pending_limit:
        Per-subscription cap on buffered repair deltas; beyond it a
        repair pass would approach recompute cost, so the registry
        escalates (a recompute also resets the buffer).
    """

    def __init__(self, service: "QueryService", *, pending_limit: int = 64) -> None:
        if pending_limit < 1:
            raise ValueError(f"pending_limit must be >= 1, got {pending_limit}")
        self.service = service
        self.pending_limit = pending_limit
        self.stats = StreamStats()
        self._lock = threading.Lock()
        self._subs: set[Subscription] = set()
        self._by_query_user: dict[int, set[Subscription]] = {}
        self._by_member: dict[int, set[Subscription]] = {}
        self._groups: dict[int | None, _Group] = {}
        self._engine = service.engine
        self._closed = False
        self._engine.add_location_listener(self._on_location_update)
        service.add_edge_update_listener(self._on_edge_update)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Detach from the engine and the edge stream; further serving
        calls raise.  Idempotent.

        Taken under the registry lock so it cannot interleave with
        :meth:`_ensure_current_engine`'s listener re-attachment — a
        closed registry must never end up wired to a freshly swapped-in
        engine."""
        with self._lock:
            self._closed = True
            self._engine.remove_location_listener(self._on_location_update)
        self.service.remove_edge_update_listener(self._on_edge_update)

    def __enter__(self) -> "SubscriptionRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("SubscriptionRegistry is closed")

    def __len__(self) -> int:
        return len(self._subs)

    def __iter__(self) -> Iterator[Subscription]:
        return iter(list(self._subs))

    # -- engine currency ----------------------------------------------

    def _ensure_current_engine(self) -> None:
        """Detect a :meth:`~repro.service.QueryService.rebuild_engine`
        swap: re-attach the listener to the new engine and mark every
        subscription for recompute (updates between the swap and this
        detection were applied to indexes we never observed)."""
        if self.service.engine is not self._engine:
            with self._lock:
                new_engine = self.service.engine
                if new_engine is not self._engine and not self._closed:
                    self._engine.remove_location_listener(self._on_location_update)
                    new_engine.add_location_listener(self._on_location_update)
                    self._engine = new_engine
                    for sub in self._subs:
                        sub.recompute_pending = True
                        sub.pending.clear()
                        sub._dijkstra = None
                        sub.rank = RankingFunction(sub.alpha, new_engine.normalization)
                    for group in self._groups.values():
                        group.dirty = True
                    self.stats.engine_swaps += 1

    def _read_locked_engine(self):
        """Acquire the read side of the current engine's lock (retrying
        across a concurrent engine swap, like the service does)."""
        while True:
            self._ensure_current_engine()
            engine = self._engine
            engine.rw_lock.acquire_read()
            if self._engine is engine and self.service.engine is engine:
                return engine
            engine.rw_lock.release_read()

    # -- registration --------------------------------------------------

    def subscribe(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> Subscription:
        """Register a standing query and compute its initial result.

        A query user without a known location (and ``alpha < 1``)
        yields a *suspended* subscription — exactly the queries a fresh
        ``engine.query`` would reject — that resumes automatically once
        the user reports a location.

        ``method="auto"`` is resolved **once**, here, through the
        engine's adaptive planner: the subscription stores the concrete
        resolution, every maintenance recompute re-runs that same
        method, and repairability is classified off it (the planner's
        default candidates are forward-deterministic, so auto
        subscriptions repair in place).
        """
        self._check_open()
        request = QueryRequest.coerce(user, k=k, alpha=alpha, method=method, t=t)
        # Validate everything *before* registering, so a bad request
        # cannot leave a half-registered subscription behind (coerce
        # checks k/alpha; user and method are engine-level checks).
        if request.method != AUTO and request.method not in METHODS:
            raise ValueError(
                f"unknown method {request.method!r}; choose from {METHODS}"
            )
        if request.method == AUTO:
            # One-time planner calibration *before* taking the read
            # lock (each probe acquires the read side itself, so a
            # pending update never queues behind the whole pass).
            self.service._precalibrate_planner()
        engine = self._read_locked_engine()
        try:
            check_user(request.user, engine.graph.n)
            routed = engine.resolve_method(
                request.user, request.k, request.alpha, request.method, request.t
            )
            rank = RankingFunction(request.alpha, engine.normalization)
            sub = Subscription(
                request.user, request.k, request.alpha, routed, request.t, rank
            )
            with self._lock:
                self._subs.add(sub)
                self._by_query_user.setdefault(sub.user, set()).add(sub)
                self.stats.subscribed += 1
                self.stats.active += 1
                self._recompute_locked(sub, engine)
            return sub
        finally:
            engine.rw_lock.release_read()

    def unsubscribe(self, sub: Subscription) -> None:
        """Deregister (no-op if already removed)."""
        with self._lock:
            if sub not in self._subs:
                return
            self._subs.discard(sub)
            self._deindex_members_locked(sub)
            subs = self._by_query_user.get(sub.user)
            if subs is not None:
                subs.discard(sub)
                if not subs:
                    del self._by_query_user[sub.user]
            self._ungroup_locked(sub)
            if sub.suspended:
                self.stats.suspended -= 1
            self.stats.active -= 1

    # -- serving -------------------------------------------------------

    def result(self, sub: Subscription) -> SSRQResult:
        """The subscription's current result, with every pending delta
        applied first (so it equals a fresh ``engine.query`` at this
        instant).  Raises ``ValueError`` — like the fresh query would —
        while the query user has no known location, and ``KeyError``
        for an unregistered subscription."""
        self._check_open()
        if sub not in self._subs:
            raise KeyError("subscription is not registered here")
        engine = self._read_locked_engine()
        try:
            with self._lock:
                if sub.dirty:
                    self._refresh_locked(sub, engine)
                if sub.suspended:
                    raise ValueError(sub.error or "subscription is suspended")
                assert sub.result is not None
                return sub.result
        finally:
            engine.rw_lock.release_read()

    def results(self) -> dict[Subscription, SSRQResult | None]:
        """Flush everything and return each subscription's current
        result (``None`` for suspended ones)."""
        self.flush()
        with self._lock:
            return {sub: sub.result for sub in self._subs}

    def flush(self) -> dict:
        """Apply all pending deltas in one pass per dirty subscription;
        returns ``{"repaired": r, "recomputed": c}`` for this pass."""
        self._check_open()
        engine = self._read_locked_engine()
        try:
            with self._lock:
                repaired = recomputed = 0
                for sub in self._subs:
                    if not sub.dirty:
                        continue
                    kind = self._refresh_locked(sub, engine)
                    if kind == REPAIR:
                        repaired += 1
                    elif kind == RECOMPUTE:
                        recomputed += 1
                return {"repaired": repaired, "recomputed": recomputed}
        finally:
            engine.rw_lock.release_read()

    # -- classification (fires inside the update's write lock) ---------

    def _on_location_update(self, user: int, x: float | None, y: float | None) -> None:
        with self._lock:
            self.stats.location_updates += 1
            handled: set[Subscription] = set()
            for sub in self._by_query_user.get(user, ()):
                handled.add(sub)
                self._classify_locked(sub, user, x, y)
            for sub in list(self._by_member.get(user, ())):
                if sub not in handled:
                    handled.add(sub)
                    self._classify_locked(sub, user, x, y)
            if x is None or y is None:
                return  # a forgotten location cannot create entrants
            # Entrant fan-out, shard-aware: a group is skipped whole
            # when the update lies beyond every member subscription's
            # entry reach from the group's shard envelope.
            mindist_fn = getattr(self._engine, "envelope_mindist", None)
            for group in self._groups.values():
                if group.dirty:
                    group.refresh_radius()
                if (
                    mindist_fn is not None
                    and group.sid is not None
                    and mindist_fn(group.sid, x, y) > group.radius
                ):
                    self.stats.group_skips += 1
                    continue
                for sub in group.subs:
                    if sub not in handled:
                        self._classify_locked(sub, user, x, y)

    def _classify_locked(
        self, sub: Subscription, user: int, x: float | None, y: float | None
    ) -> None:
        if sub.recompute_pending:
            return  # already marked as strongly as possible
        if sub.suspended or sub.result is None:
            # A suspended query resumes (or keeps failing) only through
            # its own query user.
            if user == sub.user:
                self._mark_recompute_locked(sub)
            else:
                sub.noops += 1
                self.stats.noops += 1
            return
        result = sub.result
        kind = classify_location_update(
            user,
            x,
            y,
            query_user=sub.user,
            alpha=sub.alpha,
            w_spatial=sub.rank.w_spatial,
            members=sub.member_ids,
            size=len(result.neighbors),
            k=sub.k,
            fk=result.fk,
            query_xy=self._engine.locations.get(sub.user),
        )
        if kind == NOOP:
            # The mover is provably out *at its current position*; a
            # queued earlier mark (it is not a member) is obsolete.
            sub.pending.discard(user)
            sub.noops += 1
            self.stats.noops += 1
        elif kind == REPAIR and sub.repairable:
            sub.pending.add(user)
            self.stats.repair_marks += 1
            if len(sub.pending) > self.pending_limit:
                self._mark_recompute_locked(sub)
        else:
            self._mark_recompute_locked(sub)

    def _mark_recompute_locked(self, sub: Subscription) -> None:
        sub.recompute_pending = True
        sub.pending.clear()
        self.stats.recompute_marks += 1
        group = self._groups.get(sub.group)
        if group is not None:
            group.dirty = True

    def _on_edge_update(self, u: int, v: int, weight: float | None) -> None:
        with self._lock:
            self.stats.edge_updates += 1
            tables = getattr(self.service, "_dynamics", None)
            live = tables is not None and tables.landmarks is self._engine.landmarks
            if not live:
                # Companion-table model (the service default): the
                # served engine's graph is unchanged until
                # rebuild_engine — which swaps the engine and triggers
                # a full recompute — so standing results stay exact.
                return
            # Live-attached tables mutate the served landmark rows in
            # place; be conservative, like the cache's epoch flush.
            for sub in self._subs:
                if sub.alpha > 0.0 and not sub.recompute_pending:
                    self._mark_recompute_locked(sub)

    # -- application (read lock + registry lock held) -------------------

    def _refresh_locked(self, sub: Subscription, engine) -> str:
        """Bring ``sub`` current: one batched repair pass, or a
        recompute when marked/escalated.  Returns the kind applied."""
        if sub.recompute_pending or sub.result is None:
            return self._recompute_locked(sub, engine)
        if not sub.pending:
            return NOOP
        if self._repair_locked(sub, engine):
            return REPAIR
        return self._recompute_locked(sub, engine)

    def _repair_locked(self, sub: Subscription, engine) -> bool:
        """Apply the pending moves to ``sub.result`` exactly; ``False``
        escalates (a moved member may have dropped out)."""
        pending, sub.pending = sub.pending, set()
        result = sub.result
        assert result is not None
        rank = sub.rank
        query_xy = engine.locations.get(sub.user)
        if query_xy is None:
            return False  # should have been marked via the query user
        qx, qy = query_xy
        neighbors = result.neighbors
        member_ids = sub.member_ids
        full = len(neighbors) >= sub.k
        if full:
            worst = neighbors[-1]
            kth_key = (worst.score, worst.user)
        ids = sorted(pending)
        xs, ys = engine.locations.columns()
        distances = engine.kernels.euclidean_to_point(xs, ys, qx, qy, ids)
        dist_of = {user: float(d) for user, d in zip(ids, distances)}
        moved: dict[int, float] = {}
        entrants: list[int] = []
        for user in ids:
            if user in member_ids:
                d = dist_of[user]
                # The move changed only the spatial term: the social
                # distance is location-independent and already stored.
                new_score = rank.score(self._stored_social(result, user), d)
                if new_score != new_score or new_score == INF:
                    return False  # location vanished mid-flight: escalate
                if full and (new_score, user) > kth_key:
                    return False  # may drop below the unknown (k+1)-th
                moved[user] = new_score
            else:
                entrants.append(user)
        buffer = TopKBuffer(sub.k)
        for nb in neighbors:
            score = moved.get(nb.user)
            if score is None:
                buffer.offer(nb.user, nb.score, nb.social, nb.spatial)
            else:
                buffer.offer(nb.user, score, nb.social, dist_of[nb.user])
        needs_social = rank.needs_social
        for user in entrants:
            d = dist_of[user]
            if d == INF:
                continue  # unlocated (or the position was since forgotten)
            p = (
                self._social_distance_locked(sub, engine, user)
                if needs_social
                else INF
            )
            buffer.offer(user, rank.score(p, d), p, d)
        stats = SearchStats()
        stats.extra["maintained"] = "repair"
        stats.extra["deltas_applied"] = len(ids)
        self._install_result_locked(
            sub,
            SSRQResult(
                sub.user, sub.k, sub.alpha, buffer.neighbors(), stats, method=sub.method
            ),
        )
        sub.repairs += 1
        self.stats.repairs_applied += 1
        return True

    @staticmethod
    def _stored_social(result: SSRQResult, user: int) -> float:
        for nb in result.neighbors:
            if nb.user == user:
                return nb.social
        raise KeyError(user)  # pragma: no cover - member_ids guarantees presence

    def _social_distance_locked(self, sub: Subscription, engine, user: int) -> float:
        """Exact social distance ``p(q, user)`` as every forward-stream
        method computes it.  A full column in the engine's
        :class:`~repro.social.cache.SocialColumnCache` answers without
        any traversal (the column holds exactly the distances
        ``run_until`` would settle, ``inf`` included); otherwise the
        resumable per-subscription Dijkstra is kept across repairs —
        the graph only changes on engine swaps, which drop it."""
        self.stats.entrant_evaluations += 1
        cache = getattr(engine, "social_cache", None)
        if cache is not None:
            column = cache.peek_full(sub.user)
            if column is not None:
                return float(column[user])
        it = sub._dijkstra
        if it is None or it.graph is not engine.graph:
            it = sub._dijkstra = DijkstraIterator(engine.graph, sub.user)
        return it.run_until(user)

    def _recompute_locked(self, sub: Subscription, engine) -> str:
        sub.pending.clear()
        sub.recompute_pending = False
        was_suspended = sub.suspended
        try:
            result = engine.query(sub.user, sub.k, sub.alpha, sub.method, t=sub.t)
        except ValueError as err:
            if "no known location" not in str(err):
                raise
            self._deindex_members_locked(sub)
            self._ungroup_locked(sub)
            sub.result = None
            sub.member_ids = frozenset()
            sub.suspended = True
            sub.error = str(err)
            sub._dijkstra = None
            if not was_suspended:
                self.stats.suspended += 1
        else:
            sub.suspended = False
            sub.error = None
            self._install_result_locked(sub, result)
            self._regroup_locked(sub)
            if was_suspended:
                self.stats.suspended -= 1
        sub.recomputes += 1
        self.stats.recomputes_applied += 1
        return RECOMPUTE

    # -- index / group maintenance (registry lock held) -----------------

    def _install_result_locked(self, sub: Subscription, result: SSRQResult) -> None:
        self._deindex_members_locked(sub)
        sub.result = result
        sub.member_ids = frozenset(nb.user for nb in result.neighbors)
        for user in sub.member_ids:
            self._by_member.setdefault(user, set()).add(sub)
        group = self._groups.get(sub.group)
        if group is not None:
            group.dirty = True

    def _deindex_members_locked(self, sub: Subscription) -> None:
        for user in sub.member_ids:
            subs = self._by_member.get(user)
            if subs is not None:
                subs.discard(sub)
                if not subs:
                    del self._by_member[user]

    def _group_key(self, sub: Subscription) -> int | None:
        shard_of_user = getattr(self._engine, "shard_of_user", None)
        if shard_of_user is None:
            return None
        return shard_of_user(sub.user)

    def _regroup_locked(self, sub: Subscription) -> None:
        key = self._group_key(sub)
        group = self._groups.get(key)
        if group is not None and sub in group.subs:
            group.dirty = True
            return
        self._ungroup_locked(sub)
        if group is None:
            group = self._groups[key] = _Group(key)
        group.subs.add(sub)
        sub.group = key
        group.dirty = True

    def _ungroup_locked(self, sub: Subscription) -> None:
        group = self._groups.get(sub.group)
        if group is not None and sub in group.subs:
            group.subs.discard(sub)
            group.dirty = True
            if not group.subs:
                del self._groups[sub.group]

    # -- introspection -------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"SubscriptionRegistry(subscriptions={len(self._subs)}, "
            f"updates={self.stats.location_updates}, "
            f"noops={self.stats.noops}, repairs={self.stats.repairs_applied}, "
            f"recomputes={self.stats.recomputes_applied})"
        )
