"""Continuous top-k subscriptions: incremental result maintenance
over the update stream.

One-shot SSRQ engines answer a query and forget it.  Production
traffic repeats the *same* standing queries — "keep my top-k
companions current" — while locations move constantly, and recomputing
every standing query on every update wastes almost all of its work:
most updates provably cannot change a given result, and most of the
rest can be repaired from the previous answer far cheaper than
recomputed.

This package provides that maintenance layer:

- :class:`SubscriptionRegistry` — clients register standing queries
  ``(user, k, α, method)`` against a :class:`~repro.service.QueryService`;
  the registry hooks the engine's location-listener stream (and the
  service's edge-update stream) and keeps every subscription's
  :class:`~repro.core.result.SSRQResult` equal to what a fresh
  ``engine.query`` would return *right now*;
- :mod:`repro.stream.conditions` — the NO-OP / REPAIR / RECOMPUTE
  decision rule (the per-update safe-condition screen), shared with the
  repair-aware :class:`~repro.service.cache.ResultCache`;
- :class:`Subscription` / :class:`StreamStats` — the standing-query
  handle and the maintenance counters.

Quickstart::

    from repro import GeoSocialEngine, QueryService, gowalla_like
    from repro.stream import SubscriptionRegistry

    engine = GeoSocialEngine.from_dataset(gowalla_like(n=2000, seed=7))
    service = QueryService(engine, cache_size=1024)
    registry = SubscriptionRegistry(service)
    sub = registry.subscribe(user=8, k=10, alpha=0.3, method="tsa")
    service.move_user(42, 0.3, 0.7)       # classified NO-OP/REPAIR/RECOMPUTE
    print(registry.result(sub).users)     # current, without a full recompute
    print(registry.stats.snapshot())
"""

from repro.stream.conditions import (
    NOOP,
    RECOMPUTE,
    REPAIR,
    REPAIRABLE_METHODS,
    classify_location_update,
    entry_lower_bound,
    entry_radius,
)
from repro.stream.registry import SubscriptionRegistry
from repro.stream.subscription import StreamStats, Subscription

__all__ = [
    "SubscriptionRegistry",
    "Subscription",
    "StreamStats",
    "REPAIRABLE_METHODS",
    "NOOP",
    "REPAIR",
    "RECOMPUTE",
    "classify_location_update",
    "entry_lower_bound",
    "entry_radius",
]
