"""Delta serialization for standing-query results.

The server's ``/subscribe`` stream sends one full ``snapshot`` event
when a subscription opens (or resumes) and then only *deltas*: what
entered, what left, and which surviving members changed score or rank.
This module owns that diff — it is pure data-plane code (two
:class:`~repro.core.result.SSRQResult` values in, one plain dict out),
so the wire format is testable without a socket and reusable by any
transport.

    >>> from repro import Neighbor, SSRQResult
    >>> from repro.stream.deltas import diff_results
    >>> old = SSRQResult(0, 2, 0.3, [Neighbor(1, 0.1, 0.2, 0.0),
    ...                              Neighbor(2, 0.2, 0.3, 0.1)])
    >>> new = SSRQResult(0, 2, 0.3, [Neighbor(1, 0.1, 0.2, 0.0),
    ...                              Neighbor(3, 0.15, 0.1, 0.2)])
    >>> delta = diff_results(old, new)
    >>> [nb["user"] for nb in delta["entered"]], delta["left"]
    ([3], [2])
    >>> diff_results(new, new) is None
    True
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.service.model import neighbor_payload, result_payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import SSRQResult

__all__ = ["diff_results", "subscription_payload"]


def diff_results(old: "SSRQResult | None", new: "SSRQResult") -> "dict | None":
    """The change from ``old`` to ``new``, or ``None`` when nothing
    observable changed (same members, same scores, same order).

    The delta names three member sets:

    - ``entered`` — full neighbour records newly in the top-k;
    - ``left`` — ids that dropped out;
    - ``moved`` — surviving members whose record (score, raw distances
      or rank position) changed.

    ``size`` and ``fk`` (the k-th score) ride along so a consumer can
    sanity-check its reconstructed state against the source.
    """
    if old is None:
        return None
    old_rank = {nb.user: (i, nb) for i, nb in enumerate(old.neighbors)}
    new_rank = {nb.user: (i, nb) for i, nb in enumerate(new.neighbors)}
    entered = [nb for nb in new.neighbors if nb.user not in old_rank]
    left = sorted(user for user in old_rank if user not in new_rank)
    moved = []
    for user, (i, nb) in new_rank.items():
        prior = old_rank.get(user)
        if prior is None:
            continue
        j, prev = prior
        if i != j or (prev.score, prev.social, prev.spatial) != (
            nb.score,
            nb.social,
            nb.spatial,
        ):
            moved.append((i, nb))
    if not entered and not left and not moved:
        return None
    return {
        "entered": [neighbor_payload(nb) for nb in entered],
        "left": left,
        "moved": [dict(neighbor_payload(nb), rank=i) for i, nb in sorted(moved)],
        "size": len(new.neighbors),
        "fk": new.fk,
    }


def subscription_payload(sub) -> dict:
    """A :class:`~repro.stream.subscription.Subscription`'s full state
    (the stream's ``snapshot``/``suspended`` event body)."""
    payload = {
        "user": sub.user,
        "k": sub.k,
        "alpha": sub.alpha,
        "method": sub.method,
        "suspended": sub.suspended,
        "noops": sub.noops,
        "repairs": sub.repairs,
        "recomputes": sub.recomputes,
    }
    if sub.suspended:
        payload["error"] = sub.error
        payload["result"] = None
    else:
        payload["result"] = result_payload(sub.result) if sub.result is not None else None
    return payload
