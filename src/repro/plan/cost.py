"""Online per-(feature-bucket, method) cost estimates.

The model keeps exponentially-weighted running means of observed query
cost at three resolutions, coarse to fine:

1. **global** per method — seeded by the calibration pass, always
   available after it;
2. **alpha-marginal** per ``(alpha_bucket, method)`` — the dominant
   crossover axis of the paper's evaluation (Figures 7 and 9), so a
   handful of observations already separate social-heavy from
   spatial-heavy regimes;
3. **full bucket** per ``(bucket, method)`` — specializes as real
   traffic repeats a regime (Zipf workloads concentrate mass on few
   buckets, so the fine level converges quickly exactly where it
   matters).

:meth:`CostModel.estimate` answers from the finest level that has data;
:meth:`CostModel.observe` updates all three.  All operations take the
model's lock, so engine worker pools can feed observations
concurrently.
"""

from __future__ import annotations

import threading

from repro.plan.features import FeatureBucket

#: floor applied to every observed cost.  Coarse clocks (Windows'
#: ~15 ms ``perf_counter`` granularity, patched timers in tests) can
#: report an elapsed time of exactly 0.0; folding that in verbatim
#: would drive a method's EWMA to a value no real observation can ever
#: beat, freezing ``min()`` on it forever.  One nanosecond is far below
#: any real query cost, so flooring never changes a meaningful ranking.
_MIN_COST = 1e-9


class _Ewma:
    """Exponentially-weighted mean with an observation count."""

    __slots__ = ("value", "count")

    def __init__(self) -> None:
        self.value = 0.0
        self.count = 0

    def update(self, x: float, decay: float) -> None:
        self.count += 1
        if self.count == 1:
            self.value = x
        else:
            self.value += decay * (x - self.value)


class CostModel:
    """Running cost estimates feeding the adaptive planner.

        >>> from repro.plan import CostModel
        >>> model = CostModel()
        >>> bucket = (1, 2, 3, 0)
        >>> model.observe(bucket, "sfa", 0.5)
        >>> model.observe(bucket, "spa", 0.1)
        >>> model.estimate(bucket, "spa") < model.estimate(bucket, "sfa")
        True
        >>> model.estimate((0, 0, 0, 0), "spa")  # falls back to coarser levels
        0.1
        >>> model.estimate(bucket, "tsa") is None
        True

    Parameters
    ----------
    decay:
        EWMA step toward each new observation (``0 < decay <= 1``);
        higher values adapt faster to drifting workloads.
    """

    def __init__(self, decay: float = 0.25) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self._lock = threading.Lock()
        self._bucket: dict[tuple, _Ewma] = {}
        self._alpha: dict[tuple, _Ewma] = {}
        self._global: dict[str, _Ewma] = {}
        self._bucket_counts: dict[FeatureBucket, int] = {}

    @staticmethod
    def _alpha_key(bucket: FeatureBucket, method: str) -> tuple:
        return (bucket[1], method)

    def observe(self, bucket: FeatureBucket, method: str, cost: float) -> None:
        """Fold one measured query cost into all three levels.

        Costs are floored to :data:`_MIN_COST` so a zero-elapsed
        measurement cannot produce an unbeatable 0.0 estimate.
        """
        cost = max(float(cost), _MIN_COST)
        decay = self.decay
        with self._lock:
            for table, key in (
                (self._bucket, (bucket, method)),
                (self._alpha, self._alpha_key(bucket, method)),
                (self._global, method),
            ):
                cell = table.get(key)
                if cell is None:
                    cell = table[key] = _Ewma()
                cell.update(cost, decay)
            self._bucket_counts[bucket] = self._bucket_counts.get(bucket, 0) + 1

    def estimate(self, bucket: FeatureBucket, method: str) -> float | None:
        """Best-resolution cost estimate, or ``None`` while the method
        is entirely unobserved (the planner then explores it first)."""
        with self._lock:
            cell = (
                self._bucket.get((bucket, method))
                or self._alpha.get(self._alpha_key(bucket, method))
                or self._global.get(method)
            )
            return cell.value if cell is not None else None

    def observations(self, bucket: FeatureBucket) -> int:
        """Total observations recorded against ``bucket`` across all
        methods (drives the planner's decaying exploration rate)."""
        with self._lock:
            return self._bucket_counts.get(bucket, 0)

    def snapshot(self) -> dict:
        """A plain-dict view of every level (for logs and benchmarks)."""
        with self._lock:
            return {
                "global": {m: (c.value, c.count) for m, c in self._global.items()},
                "alpha": {
                    f"a{a}:{m}": (c.value, c.count)
                    for (a, m), c in sorted(self._alpha.items())
                },
                "buckets": {
                    f"{b}:{m}": (c.value, c.count)
                    for (b, m), c in sorted(self._bucket.items())
                },
            }
