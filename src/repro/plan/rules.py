"""Static method-routing rules (the planner's rule layer).

Two kinds of request resolve without consulting any cost model:

- **endpoint degeneration** — at ``alpha == 0`` an SSRQ is a pure
  spatial query and at ``alpha == 1`` a pure social one, so the
  requested method *must* be replaced by the one whose candidate stream
  is complete there (the routing the engine has always applied; the
  tables live here now so the planner, the engines, the service, and
  the stream layer all consult one source);
- **explicit methods** — a concrete method name passes through
  :func:`route_method` unchanged away from the endpoints.

``method="auto"`` (:data:`AUTO`) is the only request the adaptive
planner (:mod:`repro.plan.planner`) decides: at the endpoints it takes
the same static route as everything else, in the interior it picks by
estimated cost.

This module is import-light on purpose (no :mod:`repro.core` imports):
``repro.core.engine`` re-exports :func:`route_method` from here, so the
rule tables cannot create an import cycle.
"""

from __future__ import annotations

#: the sentinel method name resolved per query by the adaptive planner
AUTO = "auto"

#: at ``alpha == 0`` the social term is gated off: social-first
#: variants route to the spatial-first searcher over the same distance
#: module (CH-backed stays CH-backed)
ALPHA0_ROUTE = {
    "sfa": "spa",
    "tsa": "spa",
    "tsa-plain": "spa",
    "tsa-qc": "spa",
    "sfa-ch": "spa-ch",
    "tsa-ch": "spa-ch",
    "ais-cache": "spa",
    # a pure spatial query has no social term to approximate: the
    # sketch answer degenerates to SPA's exact one, so route there
    "approx": "spa",
}

#: at ``alpha == 1`` the spatial index is useless *and insufficient*:
#: users without a location are legitimate pure-social answers but are
#: absent from the grid/aggregate index, so every index-based method
#: routes to SFA (whose Dijkstra stream reaches them all)
ALPHA1_ROUTE = {
    "spa": "sfa",
    "tsa": "sfa",
    "tsa-plain": "sfa",
    "tsa-qc": "sfa",
    "spa-ch": "sfa-ch",
    "tsa-ch": "sfa-ch",
    "ais": "sfa",
    "ais-minus": "sfa",
    "ais-bid": "sfa",
    "ais-nosummary": "sfa",
    "ais-cache": "sfa",
}


def route_method(method: str, alpha: float) -> str:
    """The concrete method actually dispatched at preference ``alpha``.

    At the endpoints the requested method degenerates: ``alpha == 0``
    is a pure spatial query (social-first variants route to SPA) and
    ``alpha == 1`` a pure social one (index-based variants route to
    SFA, whose Dijkstra stream also reaches users without a location).
    Every dispatch path — ``GeoSocialEngine.query``, the sharded
    engine, the service layer's cache keys, and the stream layer's
    subscriptions — applies this same routing, so behavior at the
    endpoints is identical everywhere.

        >>> from repro.plan import route_method
        >>> route_method("tsa", 0.0), route_method("ais", 1.0)
        ('spa', 'sfa')
        >>> route_method("tsa", 0.3)
        'tsa'
    """
    if alpha == 0.0:
        return ALPHA0_ROUTE.get(method, method)
    if alpha == 1.0:
        return ALPHA1_ROUTE.get(method, method)
    return method


def static_choice(alpha: float) -> str | None:
    """The forced ``auto`` resolution at the preference endpoints, or
    ``None`` in the interior (where the cost model decides).

        >>> from repro.plan.rules import static_choice
        >>> static_choice(0.0), static_choice(1.0), static_choice(0.5)
        ('spa', 'sfa', None)
    """
    if alpha == 0.0:
        return "spa"
    if alpha == 1.0:
        return "sfa"
    return None
