"""Cheap per-query features and their discretization.

The planner's cost estimates are keyed by a small discrete
*feature bucket*; everything extracted here is O(1) per query:

- ``k`` — result size (larger ``k`` favors index/twofold methods over
  pure streams, Figure 8);
- ``alpha`` — the social/spatial preference (the dominant crossover
  axis of Figures 7 and 9: SFA wins social-heavy queries, SPA
  spatial-heavy ones);
- ``degree`` — the query user's out-degree in the social graph (a
  high-degree hub makes the social stream expand fast and cheap, the
  searchability effect of Watts–Dodds–Newman);
- ``cell_density`` — the population of the query user's spatial index
  cell relative to the average nonempty cell (dense urban cells make
  the spatial stream productive; sparse ones make it pop empty rings);
- ``fanout`` — the number of nonempty shards a scatter query could fan
  out across (1 on a single engine).  Scatter-gather pays a per-shard
  coordination cost but parallelises across cores, so the same method
  has genuinely different cost curves at different fan-outs — keying
  the cost model on it lets ``method="auto"`` learn when scatter is
  worth it instead of averaging one-shard and eight-shard economics
  into a single estimate;
- ``budget`` — the query's accuracy budget (``None``/``0`` = exact
  required).  Budgeted and exact traffic have different candidate sets
  (only budgeted buckets may resolve to the sketch fast path), so
  mixing them under one bucket would let approx's cheap observations
  poison the estimates exact queries rely on;
- ``social_hit`` — whether the engine's
  :class:`~repro.social.cache.SocialColumnCache` holds a full column
  for the query user.  A warm column collapses every
  forward-deterministic method to one dense scan (microseconds) while
  AIS-family methods ignore the cache entirely — the same query is in
  genuinely different cost regimes warm vs cold, so the planner must
  not average them (probed via
  :meth:`~repro.social.cache.SocialColumnCache.contains_full`, which
  touches no statistics and no LRU order — observation must not
  perturb the observed).

Extraction is duck-typed over both engine kinds: a single
:class:`~repro.core.engine.GeoSocialEngine` exposes its grid directly,
a :class:`~repro.shard.ShardedGeoSocialEngine` is probed through the
query user's owning shard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: ``(k_bucket, alpha_bucket, degree_bucket, density_bucket,
#: fanout_bucket, budget_bucket, social_hit)`` — each new dimension is
#: appended last so positional consumers of the older dimensions (the
#: cost model's alpha-marginal keys on ``bucket[1]``) stay valid
FeatureBucket = tuple

_K_EDGES = (10, 20, 40)
_ALPHA_EDGES = (0.25, 0.5, 0.75)
_DENSITY_EDGES = (0.5, 2.0, 8.0)
_FANOUT_EDGES = (1, 2, 4)
#: bucket 0 is exactly the exact-required regime (``budget <= 0``)
_BUDGET_EDGES = (0.0, 0.02, 0.2)
_MAX_DEGREE_BUCKET = 6


def _bucketize(value: float, edges: tuple) -> int:
    for i, edge in enumerate(edges):
        if value <= edge:
            return i
    return len(edges)


@dataclass(frozen=True)
class QueryFeatures:
    """The planner's per-query feature vector.

        >>> from repro.plan import QueryFeatures
        >>> QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5).bucket()
        (2, 1, 3, 1, 0, 0, 0)
        >>> QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5,
        ...               fanout=4).bucket()
        (2, 1, 3, 1, 2, 0, 0)
        >>> QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5,
        ...               budget=0.05).bucket()
        (2, 1, 3, 1, 0, 2, 0)
        >>> QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5,
        ...               social_hit=True).bucket()
        (2, 1, 3, 1, 0, 0, 1)
    """

    k: int
    alpha: float
    degree: int
    #: query-cell population / average nonempty-cell population
    #: (0.0 when the query user is unlocated or the grid is empty)
    cell_density: float
    #: nonempty shards a scatter could fan out across (1 = unsharded)
    fanout: int = 1
    #: per-query accuracy budget (``None`` ≡ ``0.0`` ≡ exact required)
    budget: float | None = None
    #: a full social column for the query user is cached (warm regime)
    social_hit: bool = False

    def bucket(self) -> FeatureBucket:
        """Discretize into the cost model's key (small, stable arity)."""
        return (
            _bucketize(self.k, _K_EDGES),
            _bucketize(self.alpha, _ALPHA_EDGES),
            min(int(math.log2(self.degree + 1)), _MAX_DEGREE_BUCKET),
            _bucketize(self.cell_density, _DENSITY_EDGES),
            _bucketize(self.fanout, _FANOUT_EDGES),
            _bucketize(self.budget if self.budget is not None else 0.0, _BUDGET_EDGES),
            int(self.social_hit),
        )


def _grid_for(engine, user: int):
    """The spatial grid covering ``user`` on either engine kind."""
    grid = getattr(engine, "grid", None)
    if grid is not None:
        return grid
    # Sharded engine: probe the owning shard's member-filtered grid.
    shard_of_user = getattr(engine, "shard_of_user", None)
    engines = getattr(engine, "_engines", None)
    if shard_of_user is None or not engines:
        return None
    sid = shard_of_user(user)
    shard = engines.get(sid) if sid is not None else None
    return shard.grid if shard is not None else None


def local_cell_density(engine, user: int) -> float:
    """Population of the query user's grid cell relative to the average
    nonempty cell (``0.0`` for unlocated users / empty grids)."""
    location = engine.locations.get(user)
    if location is None:
        return 0.0
    grid = _grid_for(engine, user)
    if grid is None:
        return 0.0
    indexed = len(grid)
    nonempty = len(grid.cells)
    if indexed == 0 or nonempty == 0:
        return 0.0
    population = len(grid.users_in(*grid.cell_of(*location)))
    return population * nonempty / indexed


def scatter_fanout(engine) -> int:
    """Number of nonempty shards a scatter query fans out across
    (``1`` on a single engine — there is nothing to scatter)."""
    bounds = getattr(engine, "_bounds", None)
    if not bounds:
        return 1
    return max(1, sum(1 for b in bounds.values() if b.count > 0))


def extract_features(
    engine, user: int, k: int, alpha: float, budget: float | None = None
) -> QueryFeatures:
    """O(1) feature extraction against either engine kind (never
    raises for unlocated users — the searcher surfaces that error)."""
    cache = getattr(engine, "social_cache", None)
    return QueryFeatures(
        k=k,
        alpha=alpha,
        degree=engine.graph.degree(user),
        cell_density=local_cell_density(engine, user),
        fanout=scatter_fanout(engine),
        budget=budget,
        social_hit=cache.contains_full(user) if cache is not None else False,
    )
