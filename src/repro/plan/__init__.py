"""plan — cost-based adaptive method selection (``method="auto"``).

The paper's evaluation shows no SSRQ processing method dominates; this
package turns the repo's library of interchangeable, rank-identical
algorithms into a self-tuning engine:

- :mod:`repro.plan.rules` — the static endpoint routing every dispatch
  path shares (``route_method``), plus the ``auto`` sentinel;
- :mod:`repro.plan.features` — cheap per-query features (``k``,
  ``alpha``, query-user degree, index cell density) and their buckets;
- :mod:`repro.plan.cost` — per-bucket running cost estimates with
  coarse-to-fine fallback;
- :mod:`repro.plan.planner` — the :class:`AdaptivePlanner` resolving
  ``auto`` per query (static rules → features → epsilon-greedy over
  learned costs, seeded by a calibration pass).

Both engine kinds own a lazily-built planner (``engine.planner``) and
expose ``engine.resolve_method(...)``; the service layer keys its
result cache on the *resolved* method and feeds measured latencies
back, and the stream layer resolves subscriptions once at subscribe
time.
"""

from repro.plan.cost import CostModel
from repro.plan.features import (
    FeatureBucket,
    QueryFeatures,
    extract_features,
    scatter_fanout,
)
from repro.plan.planner import (
    DEFAULT_CANDIDATES,
    AdaptivePlanner,
    PlanDecision,
    PlannerStats,
)
from repro.plan.rules import AUTO, route_method, static_choice

__all__ = [
    "AUTO",
    "AdaptivePlanner",
    "CostModel",
    "DEFAULT_CANDIDATES",
    "FeatureBucket",
    "PlanDecision",
    "PlannerStats",
    "QueryFeatures",
    "extract_features",
    "route_method",
    "scatter_fanout",
    "static_choice",
]
