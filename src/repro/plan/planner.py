"""The cost-based adaptive query planner behind ``method="auto"``.

The ICDE-2016 evaluation shows no processing method dominates: the
winner flips with ``k``, ``alpha``, the query user's degree, and the
dataset's nature (Figures 7–10, reproduced by this repo's benches).
Since PR 2 made every method return bit-identical rankings, *method
selection is a pure performance decision* — exactly the setting for a
cost-based planner with online feedback.

Resolution layers, cheapest first:

1. **static rules** (:mod:`repro.plan.rules`) — the endpoint
   degenerations every dispatch path already applied (``alpha == 0`` →
   SPA, ``alpha == 1`` → SFA) now live here;
2. **per-query features** (:mod:`repro.plan.features`) — ``k``,
   ``alpha``, the query user's social degree, and the index cell
   density at their location, discretized into a small bucket;
3. **online feedback** (:mod:`repro.plan.cost`) — per-bucket running
   cost estimates updated from every executed ``auto`` query's
   measured wall time, seeded by a one-time calibration pass and
   explored epsilon-greedily (the rate decays per bucket as evidence
   accumulates, so steady-state traffic pays almost no exploration
   tax).

**Exactness.**  Every candidate method implements Definition 1 with the
shared deterministic tie-break (smaller id wins), so whatever the
planner picks, the returned ranking is identical — the differential
suite (``tests/test_plan_equivalence.py``) pins ``auto`` ≡
``bruteforce`` bit-for-bit, ids *and* scores.  The default candidate
set is restricted to the forward-deterministic families
(:data:`DEFAULT_CANDIDATES` ⊆
:data:`repro.core.engine.FORWARD_DETERMINISTIC_METHODS`), so resolved
``auto`` queries also stay repairable in the service cache and the
stream registry, and their stored scores are schedule-independent.
Pass ``candidates=(..., "ais")`` to trade that bit-exactness guarantee
(AIS scores are schedule-dependent up to 1 ulp; rankings stay
identical) for AIS's raw speed on huge instances.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.plan.cost import CostModel
from repro.plan.features import FeatureBucket, extract_features
from repro.plan.rules import AUTO, route_method, static_choice

_TINY = 1e-300  # matches repro.core.ranking's division guard

#: forward-deterministic searcher families the planner picks among by
#: default: one per cost regime (social stream, spatial stream, twofold
#: interleave, twofold with Quick Combine probing)
DEFAULT_CANDIDATES = ("sfa", "spa", "tsa", "tsa-qc")

#: (k, alpha) probe grid of the calibration pass — one alpha per
#: interior alpha bucket, so the alpha-marginal cost level starts
#: populated across the whole crossover axis
CALIBRATION_ALPHAS = (0.125, 0.375, 0.625, 0.875)
CALIBRATION_K = 10


@dataclass(frozen=True)
class PlanDecision:
    """One method resolution: what runs, and why.

        >>> from repro.plan import PlanDecision
        >>> PlanDecision(method="spa", requested="auto", bucket=None, auto=True).method
        'spa'
    """

    #: the concrete method to execute
    method: str
    #: the method the caller asked for (``"auto"`` or a concrete name)
    requested: str
    #: the feature bucket consulted (``None`` for static resolutions)
    bucket: FeatureBucket | None
    #: whether the adaptive planner was consulted at all
    auto: bool
    #: whether this resolution was an epsilon-greedy exploration
    explored: bool = False


@dataclass
class PlannerStats:
    """Lifetime counters of one :class:`AdaptivePlanner`.

        >>> from repro.plan import PlannerStats
        >>> stats = PlannerStats(auto_resolutions=4, explorations=1)
        >>> stats.snapshot()["explorations"]
        1
    """

    #: ``auto`` requests resolved (static endpoint routes included)
    auto_resolutions: int = 0
    #: ``auto`` requests resolved by the endpoint rules alone
    static_routes: int = 0
    #: epsilon-greedy explorations among the auto resolutions
    explorations: int = 0
    #: cost observations folded into the model
    observations: int = 0
    #: queries spent by the calibration pass
    calibration_queries: int = 0
    #: resolved-method counts over auto requests
    per_method: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "auto_resolutions": self.auto_resolutions,
            "static_routes": self.static_routes,
            "explorations": self.explorations,
            "observations": self.observations,
            "calibration_queries": self.calibration_queries,
            "per_method": dict(self.per_method),
        }


class AdaptivePlanner:
    """Resolves ``method="auto"`` per query and learns from feedback.

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> result = engine.query(user=8, k=5, alpha=0.3, method="auto")
        >>> result.method in engine.planner.candidates
        True
        >>> result.users == engine.query(8, 5, 0.3, method="bruteforce").users
        True

    Parameters
    ----------
    candidates:
        Concrete methods ``auto`` may resolve to in the interior of the
        alpha range (see the module docstring for why the default set
        is forward-deterministic).
    epsilon:
        Base exploration rate; the effective rate for a bucket decays
        as ``epsilon / sqrt(1 + observations(bucket))``.
    decay:
        EWMA step of the underlying :class:`~repro.plan.cost.CostModel`.
    seed:
        Exploration RNG seed (engines seed it from their own ``seed``,
        so a rebuilt engine explores reproducibly).
    calibrate:
        Run the one-time calibration pass lazily before the first
        cost-based resolution (pass ``False`` to start cold and learn
        from live traffic only).
    calibration_users:
        Probe users per (method, alpha) calibration point.
    """

    def __init__(
        self,
        *,
        candidates: tuple = DEFAULT_CANDIDATES,
        epsilon: float = 0.05,
        decay: float = 0.25,
        seed: int = 0,
        calibrate: bool = True,
        calibration_users: int = 2,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate method")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.candidates = tuple(candidates)
        # Exact-required buckets (budget unset/0) must always have a
        # deterministic method to fall back on — "approx" alone is not
        # a valid candidate set.
        self._exact_candidates = tuple(m for m in self.candidates if m != "approx")
        if not self._exact_candidates:
            raise ValueError("need at least one exact (non-approx) candidate method")
        self.epsilon = epsilon
        self.cost = CostModel(decay)
        self.stats = PlannerStats()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._auto_calibrate = calibrate
        self._calibration_users = calibration_users
        self._calibrated = not calibrate

    # -- resolution ----------------------------------------------------

    def resolve(
        self,
        engine,
        user: int,
        k: int,
        alpha: float,
        method: str = AUTO,
        t: int | None = None,
        *,
        budget: float | None = None,
    ) -> PlanDecision:
        """The concrete method to execute for one query.

        Explicit methods only pass through the static endpoint routing;
        ``auto`` consults the rule layer, then the cost model.  An
        exact-required request (``budget`` unset or ``0``) only ever
        resolves to the exact candidate set; a budgeted request may
        additionally resolve to ``"approx"`` when the engine's sketch
        certifies the budget for this query's social weight
        (:meth:`repro.sketch.SketchIndex.admissible`).
        """
        if method != AUTO:
            return PlanDecision(
                method=route_method(method, alpha),
                requested=method,
                bucket=None,
                auto=False,
            )
        static = static_choice(alpha)
        if static is None and engine.locations.get(user) is None:
            # Unlocated query user at interior alpha: every
            # spatial-capable searcher raises the fresh-query contract
            # error ("no known location").  Resolve to SPA
            # deterministically so auto raises it stably too — the
            # stream layer's suspension logic depends on that — instead
            # of flapping between raising and not with exploration.
            static = "spa"
        if static is not None:
            with self._lock:
                self.stats.auto_resolutions += 1
                self.stats.static_routes += 1
                self._count(static)
            return PlanDecision(method=static, requested=AUTO, bucket=None, auto=True)
        if not self._calibrated:
            self.calibrate(engine)
        candidates = self._candidates_for(engine, alpha, budget)
        bucket = extract_features(engine, user, k, alpha, budget).bucket()
        with self._lock:
            chosen, explored = self._choose_locked(bucket, candidates)
            self.stats.auto_resolutions += 1
            if explored:
                self.stats.explorations += 1
            self._count(chosen)
        return PlanDecision(
            method=chosen, requested=AUTO, bucket=bucket, auto=True, explored=explored
        )

    def _count(self, method: str) -> None:
        self.stats.per_method[method] = self.stats.per_method.get(method, 0) + 1

    def _candidates_for(self, engine, alpha: float, budget: float | None) -> tuple:
        """The candidate set for one interior-alpha resolution: the
        exact methods always; ``"approx"`` additionally iff the query
        carries a positive budget the engine's sketch certifies for
        this alpha's social weight."""
        if budget is None or budget <= 0.0:
            return self._exact_candidates
        sketch = getattr(engine, "sketch", None)
        if sketch is None:
            return self._exact_candidates
        w_social = alpha / max(engine.normalization.p_max, _TINY)
        if not sketch.admissible(w_social, budget):
            return self._exact_candidates
        if "approx" in self.candidates:
            return self.candidates
        return self._exact_candidates + ("approx",)

    def _choose_locked(
        self, bucket: FeatureBucket, candidates: "tuple | None" = None
    ) -> tuple[str, bool]:
        if candidates is None:
            candidates = self._exact_candidates
        estimates = [(m, self.cost.estimate(bucket, m)) for m in candidates]
        unexplored = [m for m, est in estimates if est is None]
        if unexplored:
            # A never-observed candidate always goes first (canonical
            # order keeps this deterministic) so estimates exist for
            # every arm before greedy play starts.
            return unexplored[0], True
        rate = self.epsilon / (1.0 + self.cost.observations(bucket)) ** 0.5
        if rate > 0.0 and self._rng.random() < rate:
            return candidates[self._rng.randrange(len(candidates))], True
        best_method, _ = min(estimates, key=lambda pair: pair[1])
        return best_method, False

    # -- feedback ------------------------------------------------------

    def observe(self, decision: PlanDecision, cost: float) -> None:
        """Fold one executed query's measured cost (wall seconds) back
        into the model.  No-op for static and explicit resolutions —
        only cost-based decisions carry a feature bucket."""
        if not decision.auto or decision.bucket is None:
            return
        self.cost.observe(decision.bucket, decision.method, cost)
        with self._lock:
            self.stats.observations += 1

    # -- calibration ---------------------------------------------------

    @property
    def calibrated(self) -> bool:
        """Whether the one-time calibration pass has run (or was
        disabled at construction)."""
        return self._calibrated

    def calibrate(self, engine, users: "list[int] | None" = None, read_lock=None) -> int:
        """Seed the cost model: run every candidate over a small probe
        grid of located users × calibration alphas, timing each query.

        Idempotent (the first caller wins; later calls are no-ops), and
        safe to call eagerly — benchmarks do, so measured serving
        windows exclude the one-time seeding cost.  ``read_lock``, when
        given, is a context-manager factory (e.g.
        ``engine.rw_lock.read_locked``) taken around *each individual
        probe*: callers serving live traffic pre-calibrate this way so
        a pending update stalls for one probe, not the whole pass —
        never call with a lock the calling thread already holds.
        Returns the number of probe queries executed.
        """
        with self._lock:
            if self._calibrated:
                return 0
            # Mark first: the probe queries below go through
            # ``engine.query`` with concrete methods, which never
            # re-enters resolution, but a concurrent auto query must
            # not start a second pass.
            self._calibrated = True
        if users is None:
            located = list(engine.locations.located_users())
            rng = random.Random(len(located))
            rng.shuffle(located)
            users = located[: self._calibration_users]
        executed = 0
        for alpha in CALIBRATION_ALPHAS:
            for method in self.candidates:
                for user in users:
                    executed += self._probe(engine, user, alpha, method, read_lock)
        with self._lock:
            self.stats.calibration_queries += executed
        return executed

    def _probe(self, engine, user: int, alpha: float, method: str, read_lock) -> int:
        """One timed calibration query (optionally under its own read
        lock); returns 1 if it executed, 0 if it legitimately failed."""
        guard = read_lock() if read_lock is not None else nullcontext()
        with guard:
            start = time.perf_counter()
            try:
                engine.query(user, k=CALIBRATION_K, alpha=alpha, method=method)
            except ValueError:
                return 0  # e.g. a concurrently-forgotten location
            elapsed = time.perf_counter() - start
            bucket = extract_features(engine, user, CALIBRATION_K, alpha).bucket()
        self.cost.observe(bucket, method, elapsed)
        return 1

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """Planner counters plus the cost model's current estimates."""
        snap = self.stats.snapshot()
        snap["candidates"] = list(self.candidates)
        snap["epsilon"] = self.epsilon
        snap["cost"] = self.cost.snapshot()
        return snap

    def __repr__(self) -> str:
        return (
            f"AdaptivePlanner(candidates={list(self.candidates)}, "
            f"epsilon={self.epsilon}, resolved={self.stats.auto_resolutions}, "
            f"observed={self.stats.observations})"
        )
