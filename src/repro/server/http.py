"""Minimal HTTP/1.1 framing over asyncio streams.

The serving boundary is deliberately hand-rolled on ``asyncio``'s
stream primitives: the repo's hard rule is *no new runtime
dependencies*, and the subset of HTTP/1.1 the API needs — request line,
headers, ``Content-Length`` bodies, keep-alive, chunked responses for
the SSE subscription stream — is small enough that owning the framing
keeps the whole network path auditable (and byte-deterministic for the
conformance suite).

Unsupported constructs are rejected early rather than half-parsed:
chunked *request* bodies, oversized bodies and malformed framing all
raise :class:`ProtocolError`, which the server answers with a typed
``400`` body and a connection close (the stream position is no longer
trustworthy after a framing error).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # pragma: no cover
    import asyncio

#: one line of request framing (request line or a single header)
MAX_LINE = 8192
MAX_HEADERS = 100
#: request-body ceiling — batches of a few thousand queries fit well
#: under it, and it bounds a single connection's memory
MAX_BODY = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed HTTP framing; the connection is answered 400 and
    closed (the stream position is no longer trustworthy)."""


@dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    #: path with the query string stripped
    path: str
    #: decoded query-string parameters (first value wins)
    params: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as err:
            raise ProtocolError(f"request body is not valid JSON: {err}") from None
        if not isinstance(data, dict):
            raise ProtocolError("request body must be a JSON object")
        return data


async def _read_line(reader: "asyncio.StreamReader") -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE:
        raise ProtocolError("header line too long")
    return line


async def read_request(reader: "asyncio.StreamReader") -> HTTPRequest | None:
    """Read one request off the stream; ``None`` on a clean EOF
    between requests (client closed a keep-alive connection)."""
    line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise ProtocolError(f"malformed request line: {line!r}") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ProtocolError("connection closed mid-headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ProtocolError("undecodable header") from None
        if not _ or not name.strip():
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")
    if headers.get("transfer-encoding", "").lower() == "chunked":
        # 501 is more honest than a hang: the API never needs chunked
        # request bodies and the parser does not implement them.
        raise ProtocolError("chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("malformed Content-Length") from None
        if length < 0:
            raise ProtocolError("malformed Content-Length")
        if length > MAX_BODY:
            raise ProtocolError("request body too large")
        try:
            body = await reader.readexactly(length)
        except Exception as err:  # IncompleteReadError subclasses vary
            raise ProtocolError(f"connection closed mid-body: {err}") from None
    parts = urlsplit(target)
    params = {key: values[0] for key, values in parse_qs(parts.query).items()}
    return HTTPRequest(
        method=method.upper(), path=parts.path, params=params, headers=headers, body=body
    )


def encode_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: "dict | None" = None,
    keep_alive: bool = True,
) -> bytes:
    """A full response with ``Content-Length`` framing."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_bytes(payload: object) -> bytes:
    """Compact, key-sorted JSON encoding.

    ``inf`` round-trips as the JSON5-style ``Infinity`` literal — the
    wire format is consumed by this package's own client and CLI, and
    neighbour records legitimately carry infinite distances (a social
    distance is never computed at ``alpha == 0``), so preserving the
    exact float beats a lossy ``null``."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


async def send_response(
    writer: "asyncio.StreamWriter",
    status: int,
    payload: object,
    *,
    headers: "dict | None" = None,
    keep_alive: bool = True,
) -> None:
    writer.write(
        encode_response(status, json_bytes(payload), headers=headers, keep_alive=keep_alive)
    )
    await writer.drain()


# -- server-sent events (chunked responses) ----------------------------


async def start_sse(writer: "asyncio.StreamWriter") -> None:
    """Open a chunked ``text/event-stream`` response."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"Connection: close\r\n\r\n"
    )
    await writer.drain()


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


async def send_sse(
    writer: "asyncio.StreamWriter", event: str, payload: object
) -> None:
    """One ``event:``/``data:`` frame as a single chunk."""
    data = b"event: " + event.encode("ascii") + b"\ndata: " + json_bytes(payload) + b"\n\n"
    writer.write(_chunk(data))
    await writer.drain()


async def send_sse_comment(writer: "asyncio.StreamWriter", text: str = "hb") -> None:
    """A comment frame — the stream's keep-alive heartbeat."""
    writer.write(_chunk(b": " + text.encode("ascii") + b"\n\n"))
    await writer.drain()


async def end_sse(writer: "asyncio.StreamWriter") -> None:
    """Terminate the chunked stream cleanly."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
