"""Prometheus text rendering of the stack's stats objects.

``/metrics`` flattens the ``/stats`` JSON document into the Prometheus
text exposition format: every numeric leaf of section ``s`` and key
``k`` becomes ``repro_s_k``, and one level of dict-valued counters
(``per_method`` maps) becomes a labelled family
(``repro_service_per_method{method="spa"} 3``).  Non-numeric leaves
are skipped — Prometheus has no string samples — but survive in the
JSON variant (``/metrics?format=json``, which simply returns the
``/stats`` document).

    >>> from repro.server.metrics import render_prometheus
    >>> text = render_prometheus({"service": {"requests": 4,
    ...                                       "per_method": {"spa": 3}}})
    >>> print(text.strip())
    # TYPE repro_service_requests gauge
    repro_service_requests 4
    # TYPE repro_service_per_method gauge
    repro_service_per_method{method="spa"} 3
"""

from __future__ import annotations

import math

__all__ = ["render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _format_value(value: "int | float") -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def _label_key(section: str, key: str) -> str:
    # per_method maps label by method; anything else labels by "key"
    return "method" if key.endswith("per_method") else "key"


def render_prometheus(sections: dict) -> str:
    """Flatten ``{section: {key: number | {label: number}}}`` into
    Prometheus text format (stable ordering: insertion order of the
    payload, sorted labels)."""
    lines: list[str] = []
    for section, body in sections.items():
        if not isinstance(body, dict):
            continue
        prefix = f"repro_{_sanitize(section)}"
        for key, value in body.items():
            metric = f"{prefix}_{_sanitize(key)}"
            if isinstance(value, bool) or isinstance(value, (int, float)):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_format_value(value)}")
            elif isinstance(value, dict):
                samples = [
                    (label, entry)
                    for label, entry in sorted(value.items())
                    if isinstance(entry, (int, float)) and not isinstance(entry, bool)
                ]
                if not samples:
                    continue
                lines.append(f"# TYPE {metric} gauge")
                label_name = _label_key(section, key)
                for label, entry in samples:
                    escaped = str(label).replace("\\", r"\\").replace('"', r"\"")
                    lines.append(
                        f'{metric}{{{label_name}="{escaped}"}} {_format_value(entry)}'
                    )
    return "\n".join(lines) + "\n"
