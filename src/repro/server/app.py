"""The asyncio HTTP serving boundary over :class:`QueryService`.

:class:`SSRQServer` puts a socket in front of the whole stack — engine,
service, stream, store — with the serving disciplines a shared
deployment needs:

- **admission control** — every serving request passes a bounded queue
  (``queue_depth``).  Overflow is shed *immediately* with ``429`` and a
  ``Retry-After`` hint; an admitted request is never dropped — it
  always runs to a response, even if the client has stopped waiting.
  The bound on concurrently admitted work is ``queue_depth + workers``
  (queued plus executing).
- **request coalescing** — concurrent single ``/query`` requests that
  are queued together are drained into one
  :meth:`~repro.service.QueryService.query_many` call, riding the
  service's dedup/batching path (identical rankings to sequential
  execution, pinned by the service's own suite and the server
  conformance suite).
- **deadline propagation** — each request carries a deadline (the
  ``X-Deadline-Ms`` header, default ``default_deadline_ms``).  A job
  whose deadline passes before execution is answered ``504`` without
  running; a client whose deadline fires mid-execution gets ``504``
  while the job still completes server-side (admitted work is never
  abandoned half-applied).
- **graceful drain** — :meth:`SSRQServer.stop` stops accepting, lets
  queued and in-flight work finish, ends subscription streams with a
  final ``end`` event, optionally takes a last snapshot
  (``drain_snapshot_root``), and only then releases the worker pool.

Endpoints (all JSON; errors use the typed bodies of
:mod:`repro.server.errors`):

====================  ==================================================
``POST /query``        one SSRQ (coalesced into the batcher under load)
``POST /query/batch``  many SSRQs through ``query_many``
``POST /update/location``  move (``{"user","x","y"}``) or forget
                       (``{"user","forget":true}``)
``POST /update/edge``  ``{"u","v","weight"}`` (``null`` removes)
``POST /snapshot``     crash-consistent snapshot under ``{"root"}``
``POST /restore``      swap in the last committed snapshot of ``root``
``GET /subscribe``     SSE stream of standing-query deltas
``GET /stats``         every layer's counters as one JSON document
``GET /metrics``       the same, flattened to Prometheus text
``GET /healthz``       liveness + drain state (never queued)
====================  ==================================================
"""

from __future__ import annotations

import asyncio
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.server import http
from repro.server.errors import (
    ApiError,
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INVALID_ARGUMENT,
    METHOD_NOT_ALLOWED,
    NOT_FOUND,
    OVERLOADED,
    SHUTTING_DOWN,
    classify_exception,
    error_body,
)
from repro.server.http import HTTPRequest, ProtocolError
from repro.server.metrics import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.server.metrics import render_prometheus
from repro.server.protocol import parse_batch, stats_payload
from repro.service.model import QueryRequest
from repro.stream.deltas import diff_results, subscription_payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import QueryService

_SENTINEL = object()


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`SSRQServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back via ``server.port``)
    port: int = 0
    #: admission-queue depth; overflow sheds with 429
    queue_depth: int = 64
    #: executor width and number of queue consumers
    workers: int = 4
    #: ceiling on how many queued ``/query`` jobs one worker coalesces
    #: into a single ``query_many`` batch
    max_batch: int = 32
    #: default per-request deadline (``X-Deadline-Ms`` overrides)
    default_deadline_ms: float = 30_000.0
    #: the ``Retry-After`` hint (seconds) sent with 429 responses
    retry_after_s: float = 1.0
    #: SSE keep-alive comment interval (also bounds drain latency for
    #: idle streams)
    heartbeat_s: float = 15.0
    #: when set, :meth:`SSRQServer.stop` takes a final snapshot here
    #: after the drain completes
    drain_snapshot_root: "str | None" = None


@dataclass
class ServerStats:
    """Lifetime counters of one :class:`SSRQServer` (single-threaded:
    all mutation happens on the event loop)."""

    connections: int = 0
    requests: int = 0
    admitted: int = 0
    #: requests shed by admission control (429)
    shed: int = 0
    completed: int = 0
    client_errors: int = 0
    server_errors: int = 0
    #: jobs answered 504 without executing (deadline passed in queue)
    deadline_expired: int = 0
    #: connections that stopped waiting mid-execution (client got 504,
    #: the job still ran to completion)
    deadline_timeouts: int = 0
    #: requests rejected 503 during drain
    drained_rejections: int = 0
    #: multi-request ``query_many`` executions assembled by coalescing
    coalesced_batches: int = 0
    #: single ``/query`` requests served through those batches
    coalesced_requests: int = 0
    streams_opened: int = 0
    streams_closed: int = 0
    events_sent: int = 0
    updates_notified: int = 0

    def snapshot(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "deadline_expired": self.deadline_expired,
            "deadline_timeouts": self.deadline_timeouts,
            "drained_rejections": self.drained_rejections,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "streams_opened": self.streams_opened,
            "streams_closed": self.streams_closed,
            "events_sent": self.events_sent,
            "updates_notified": self.updates_notified,
        }


class _Job:
    """One admitted unit of work."""

    __slots__ = ("kind", "request", "call", "future", "deadline", "abandoned", "notify")

    def __init__(
        self,
        kind: str,
        *,
        future: "asyncio.Future",
        deadline: float,
        request: "QueryRequest | None" = None,
        call: "Callable[[], dict] | None" = None,
        notify: bool = False,
    ) -> None:
        self.kind = kind           # "query" (coalescible) or "call"
        self.request = request
        self.call = call
        self.future = future
        self.deadline = deadline
        self.abandoned = False
        self.notify = notify


class SSRQServer:
    """Async HTTP API over one :class:`~repro.service.QueryService`.

    The server owns a lazily created
    :class:`~repro.stream.SubscriptionRegistry` for ``/subscribe``
    streams; the service (and its engine) belong to the caller and are
    not closed by :meth:`stop`.
    """

    def __init__(self, service: "QueryService", config: "ServerConfig | None" = None, **overrides) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ServerConfig or keyword overrides, not both")
        if config.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {config.queue_depth}")
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        if config.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {config.max_batch}")
        self.service = service
        self.config = config
        self.stats = ServerStats()
        self._server: "asyncio.base_events.Server | None" = None
        self._queue: "asyncio.Queue[object]" = asyncio.Queue(maxsize=config.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="ssrq-http"
        )
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._registry = None
        self._registry_lock = threading.Lock()
        self._update_event: "asyncio.Event | None" = None
        self._inflight = 0
        self._active_streams = 0
        self._draining = False
        self._started = False
        self._port: "int | None" = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; survives :meth:`stop`
        so late callers can still report the address)."""
        assert self._port is not None, "server not started"
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "SSRQServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._update_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker()) for _ in range(self.config.workers)
        ]
        return self

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: stop accepting, flush admitted work, end streams,
        optionally take a final snapshot, release the pool.

        With ``drain=False`` the admitted work is still completed (the
        invariant is unconditional) but streams are ended without
        waiting for a final delta read and no snapshot is taken."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # wake every subscription stream so it can end promptly
        self._notify_update(count=False)
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for _ in self._workers:
            await self._queue.put(_SENTINEL)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        while self._active_streams > 0 and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if drain and self.config.drain_snapshot_root is not None:
            root = self.config.drain_snapshot_root
            await loop.run_in_executor(
                self._executor, lambda: self.service.snapshots(root).snapshot()
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        registry = self._registry
        if registry is not None:
            registry.close()
        self._executor.shutdown(wait=True)

    def _get_registry(self):
        registry = self._registry
        if registry is None:
            from repro.stream.registry import SubscriptionRegistry

            with self._registry_lock:
                if self._registry is None:
                    self._registry = SubscriptionRegistry(self.service)
                registry = self._registry
        return registry

    def stats_snapshot(self) -> dict:
        """Counters plus the live gauges (queue fill, in-flight work,
        open streams)."""
        snap = self.stats.snapshot()
        snap["queue_depth"] = self.config.queue_depth
        snap["queued"] = self._queue.qsize()
        snap["in_flight"] = self._inflight
        snap["active_streams"] = self._active_streams
        snap["draining"] = self._draining
        return snap

    # -- update fan-out (event-loop thread only) ------------------------

    def _notify_update(self, *, count: bool = True) -> None:
        event = self._update_event
        if event is None:
            return
        self._update_event = asyncio.Event()
        event.set()
        if count:
            self.stats.updates_notified += 1

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.stats.connections += 1
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except ProtocolError as err:
                    await self._respond(
                        writer, 400, error_body(BAD_REQUEST, str(err)), keep_alive=False
                    )
                    break
                if request is None:
                    break
                self.stats.requests += 1
                keep_alive = request.keep_alive
                closing = await self._dispatch(request, writer, keep_alive)
                if closing or not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self, writer, status: int, payload: object, *, headers=None, keep_alive=True
    ) -> None:
        if 400 <= status < 500:
            self.stats.client_errors += 1
        elif status >= 500:
            self.stats.server_errors += 1
        await http.send_response(
            writer, status, payload, headers=headers, keep_alive=keep_alive
        )

    async def _dispatch(self, request: HTTPRequest, writer, keep_alive: bool) -> bool:
        """Route one request; returns True when the connection must
        close afterwards (streams own their connection)."""
        path, method = request.path, request.method
        try:
            if path == "/healthz":
                self._require(method, "GET")
                await self._respond(
                    writer,
                    200,
                    {"status": "draining" if self._draining else "ok"},
                    keep_alive=keep_alive,
                )
                return False
            if path == "/metrics":
                self._require(method, "GET")
                return await self._handle_metrics(request, writer, keep_alive)
            if path == "/stats":
                self._require(method, "GET")
                payload = stats_payload(
                    self.service, server=self, registry=self._registry
                )
                await self._respond(writer, 200, payload, keep_alive=keep_alive)
                return False
            if path == "/subscribe":
                self._require(method, "GET")
                await self._handle_subscribe(request, writer)
                return True
            if path not in (
                "/query",
                "/query/batch",
                "/update/location",
                "/update/edge",
                "/snapshot",
                "/restore",
            ):
                raise ApiError(404, NOT_FOUND, f"no such endpoint: {path}")
            self._require(method, "POST")
            if self._draining:
                self.stats.drained_rejections += 1
                raise ApiError(503, SHUTTING_DOWN, "server is draining")
            job = self._build_job(path, request)
        except ApiError as err:
            await self._respond(writer, err.status, err.body(), keep_alive=keep_alive)
            return False
        except ProtocolError as err:
            await self._respond(
                writer, 400, error_body(BAD_REQUEST, str(err)), keep_alive=False
            )
            return True
        return await self._admit(job, writer, keep_alive)

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ApiError(
                405, METHOD_NOT_ALLOWED, f"use {expected} for this endpoint"
            )

    async def _handle_metrics(self, request, writer, keep_alive: bool) -> bool:
        payload = stats_payload(self.service, server=self, registry=self._registry)
        wants_json = (
            request.params.get("format") == "json"
            or "application/json" in request.headers.get("accept", "")
        )
        if wants_json:
            await self._respond(writer, 200, payload, keep_alive=keep_alive)
            return False
        body = render_prometheus(payload).encode("utf-8")
        writer.write(
            http.encode_response(
                200, body, content_type=PROM_CONTENT_TYPE, keep_alive=keep_alive
            )
        )
        await writer.drain()
        return False

    # -- admission ------------------------------------------------------

    def _deadline_for(self, request: HTTPRequest, loop) -> float:
        raw = request.headers.get("x-deadline-ms")
        if raw is None:
            ms = self.config.default_deadline_ms
        else:
            try:
                ms = float(raw)
            except ValueError:
                raise ApiError(
                    400, INVALID_ARGUMENT, f"malformed X-Deadline-Ms header: {raw!r}"
                ) from None
            if not ms > 0 or math.isnan(ms):
                raise ApiError(
                    400, INVALID_ARGUMENT, f"X-Deadline-Ms must be positive, got {raw}"
                )
        return loop.time() + ms / 1000.0

    def _build_job(self, path: str, request: HTTPRequest) -> _Job:
        loop = asyncio.get_running_loop()
        deadline = self._deadline_for(request, loop)
        future: "asyncio.Future" = loop.create_future()
        body = request.json()
        try:
            if path == "/query":
                req = QueryRequest.from_payload(body)
                return _Job("query", request=req, future=future, deadline=deadline)
            if path == "/query/batch":
                items, defaults = parse_batch(body)
                reqs = [QueryRequest.from_payload(item, **defaults) for item in items]
                call = lambda: self._run_explicit_batch(reqs)  # noqa: E731
                return _Job("call", call=call, future=future, deadline=deadline)
            if path == "/update/location":
                call = self._location_call(body)
                return _Job("call", call=call, future=future, deadline=deadline, notify=True)
            if path == "/update/edge":
                call = self._edge_call(body)
                return _Job("call", call=call, future=future, deadline=deadline, notify=True)
            if path == "/snapshot":
                call = self._snapshot_call(body)
                return _Job("call", call=call, future=future, deadline=deadline)
            if path == "/restore":
                call = self._restore_call(body)
                return _Job("call", call=call, future=future, deadline=deadline, notify=True)
        except (ValueError, TypeError) as err:
            status, code = classify_exception(err)
            raise ApiError(status, code, str(err)) from None
        raise AssertionError(f"unrouted path {path}")  # pragma: no cover

    async def _admit(self, job: _Job, writer, keep_alive: bool) -> bool:
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.stats.shed += 1
            retry = max(1, math.ceil(self.config.retry_after_s))
            await self._respond(
                writer,
                429,
                error_body(OVERLOADED, "admission queue is full; retry later"),
                headers={"Retry-After": str(retry)},
                keep_alive=keep_alive,
            )
            return False
        self.stats.admitted += 1
        self._inflight += 1
        loop = asyncio.get_running_loop()
        remaining = job.deadline - loop.time()
        try:
            status, payload = await asyncio.wait_for(
                asyncio.shield(job.future), timeout=max(remaining, 0.001)
            )
        except asyncio.TimeoutError:
            job.abandoned = True
            self.stats.deadline_timeouts += 1
            await self._respond(
                writer,
                504,
                error_body(DEADLINE_EXCEEDED, "request deadline exceeded"),
                keep_alive=keep_alive,
            )
            return False
        await self._respond(writer, status, payload, keep_alive=keep_alive)
        return False

    # -- handler closures (run on executor threads) ---------------------

    def _query_payload(self, response) -> dict:
        req = response.request
        payload = response.payload()
        payload["request"] = {
            "user": req.user,
            "k": req.k,
            "alpha": req.alpha,
            "method": req.method,
            "t": req.t,
            "budget": req.budget,
        }
        return payload

    def _run_explicit_batch(self, reqs: "list[QueryRequest]") -> dict:
        responses = self.service.query_many(reqs)
        return {
            "count": len(responses),
            "responses": [self._query_payload(r) for r in responses],
        }

    def _location_call(self, body: dict) -> "Callable[[], dict]":
        if "user" not in body:
            raise ValueError("location update is missing required field 'user'")
        user = body["user"]
        if isinstance(user, bool) or not isinstance(user, int):
            raise ValueError(f"user must be an integer id, got {user!r}")
        if body.get("forget"):
            return lambda: (self.service.forget_location(user), {"ok": True, "user": user, "forgotten": True})[1]
        if "x" not in body or "y" not in body:
            raise ValueError("location update needs 'x' and 'y' (or 'forget': true)")
        x, y = body["x"], body["y"]
        for name, value in (("x", x), ("y", y)):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
        return lambda: (
            self.service.move_user(user, float(x), float(y)),
            {"ok": True, "user": user, "x": float(x), "y": float(y)},
        )[1]

    def _edge_call(self, body: dict) -> "Callable[[], dict]":
        for name in ("u", "v"):
            if name not in body:
                raise ValueError(f"edge update is missing required field {name!r}")
            value = body[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"{name} must be an integer id, got {value!r}")
        u, v = body["u"], body["v"]
        weight = body.get("weight")
        if weight is not None and (
            isinstance(weight, bool) or not isinstance(weight, (int, float))
        ):
            raise ValueError(f"weight must be a number or null, got {weight!r}")
        weight = None if weight is None else float(weight)
        return lambda: (
            self.service.update_edge(u, v, weight),
            {
                "ok": True,
                "u": u,
                "v": v,
                "weight": weight,
                "pending_edge_updates": self.service.pending_edge_updates,
            },
        )[1]

    def _snapshot_root(self, body: dict) -> str:
        root = body.get("root")
        if not isinstance(root, str) or not root:
            raise ValueError("snapshot body needs a 'root' directory string")
        return root

    def _snapshot_call(self, body: dict) -> "Callable[[], dict]":
        root = self._snapshot_root(body)
        fold = body.get("fold", True)
        if not isinstance(fold, bool):
            raise ValueError(f"fold must be a boolean, got {fold!r}")

        def call() -> dict:
            path = self.service.snapshots(root).snapshot(fold=fold)
            return {"ok": True, "root": root, "name": path.name, "path": str(path)}

        return call

    def _restore_call(self, body: dict) -> "Callable[[], dict]":
        root = self._snapshot_root(body)

        def call() -> dict:
            engine = self.service.snapshots(root).restore()
            return {
                "ok": True,
                "root": root,
                "kind": type(engine).__name__,
                "users": engine.graph.n,
            }

        return call

    # -- workers --------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is _SENTINEL:
                return
            if job.kind == "query":
                batch = [job]
                handoff: "Optional[_Job]" = None
                while len(batch) < self.config.max_batch:
                    try:
                        nxt = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is _SENTINEL:
                        self._queue.put_nowait(_SENTINEL)
                        break
                    if nxt.kind == "query":
                        batch.append(nxt)
                    else:
                        handoff = nxt
                        break
                await self._run_query_jobs(batch, loop)
                if handoff is not None:
                    await self._run_call_job(handoff, loop)
            else:
                await self._run_call_job(job, loop)

    def _expire(self, job: _Job) -> None:
        self.stats.deadline_expired += 1
        self._finish(job, 504, error_body(DEADLINE_EXCEEDED, "request deadline exceeded"))

    def _finish(self, job: _Job, status: int, payload: dict) -> None:
        if not job.future.done():
            job.future.set_result((status, payload))
        self.stats.completed += 1
        self._inflight -= 1

    async def _run_query_jobs(self, jobs: "list[_Job]", loop) -> None:
        now = loop.time()
        live = []
        for job in jobs:
            if job.abandoned or job.deadline <= now:
                self._expire(job)
            else:
                live.append(job)
        if not live:
            return
        if len(live) == 1:
            job = live[0]
            outcome = await loop.run_in_executor(
                self._executor, self._serve_one, job.request
            )
            self._finish(job, *outcome)
            return
        reqs = [job.request for job in live]
        outcomes = await loop.run_in_executor(self._executor, self._serve_coalesced, reqs)
        self.stats.coalesced_batches += 1
        self.stats.coalesced_requests += len(live)
        for job, outcome in zip(live, outcomes):
            self._finish(job, *outcome)

    def _serve_one(self, req: "QueryRequest") -> "tuple[int, dict]":
        try:
            return 200, self._query_payload(self.service.query(req))
        except Exception as err:
            status, code = classify_exception(err)
            return status, error_body(code, str(err))

    def _serve_coalesced(self, reqs: "list[QueryRequest]") -> "list[tuple[int, dict]]":
        """One ``query_many`` over the coalesced jobs; if any request in
        the batch is rejected (e.g. an unlocated query user raises at
        execution), fall back to per-request execution so one bad
        request cannot fail its batch-mates."""
        try:
            responses = self.service.query_many(reqs)
        except Exception:
            return [self._serve_one(req) for req in reqs]
        return [(200, self._query_payload(r)) for r in responses]

    async def _run_call_job(self, job: _Job, loop) -> None:
        if job.abandoned or job.deadline <= loop.time():
            self._expire(job)
            return
        try:
            payload = await loop.run_in_executor(self._executor, job.call)
        except Exception as err:
            status, code = classify_exception(err)
            self._finish(job, status, error_body(code, str(err)))
            return
        self._finish(job, 200, payload)
        if job.notify:
            self._notify_update()

    # -- subscription streams ------------------------------------------

    def _parse_subscribe(self, request: HTTPRequest) -> dict:
        params = request.params
        if "user" not in params:
            raise ApiError(400, INVALID_ARGUMENT, "subscribe needs a 'user' parameter")
        parsed: dict = {}
        for name, caster, default in (
            ("user", int, None),
            ("k", int, 30),
            ("alpha", float, 0.3),
            ("t", int, None),
        ):
            raw = params.get(name)
            if raw is None:
                parsed[name] = default
                continue
            try:
                parsed[name] = caster(raw)
            except ValueError:
                raise ApiError(
                    400, INVALID_ARGUMENT, f"malformed {name!r} parameter: {raw!r}"
                ) from None
        parsed["method"] = params.get("method", "ais")
        return parsed

    async def _handle_subscribe(self, request: HTTPRequest, writer) -> None:
        if self._draining:
            self.stats.drained_rejections += 1
            await self._respond(
                writer, 503, error_body(SHUTTING_DOWN, "server is draining"), keep_alive=False
            )
            return
        try:
            params = self._parse_subscribe(request)
        except ApiError as err:
            await self._respond(writer, err.status, err.body(), keep_alive=False)
            return
        loop = asyncio.get_running_loop()
        registry = self._get_registry()
        try:
            sub = await loop.run_in_executor(
                self._executor,
                lambda: registry.subscribe(
                    params["user"],
                    k=params["k"],
                    alpha=params["alpha"],
                    method=params["method"],
                    t=params["t"],
                ),
            )
        except Exception as err:
            status, code = classify_exception(err)
            await self._respond(writer, status, error_body(code, str(err)), keep_alive=False)
            return
        self._active_streams += 1
        self.stats.streams_opened += 1
        try:
            await http.start_sse(writer)
            await self._stream_subscription(registry, sub, writer, loop)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self._active_streams -= 1
            self.stats.streams_closed += 1
            try:
                await loop.run_in_executor(self._executor, registry.unsubscribe, sub)
            except RuntimeError:
                pass  # registry already closed by stop()

    def _read_subscription(self, registry, sub):
        """Current result, ``None`` while suspended (executor thread)."""
        try:
            return registry.result(sub)
        except ValueError:
            return None

    async def _send_event(self, writer, event: str, payload) -> None:
        await http.send_sse(writer, event, payload)
        self.stats.events_sent += 1

    async def _stream_subscription(self, registry, sub, writer, loop) -> None:
        last = await loop.run_in_executor(
            self._executor, self._read_subscription, registry, sub
        )
        await self._send_event(
            writer, "suspended" if last is None else "snapshot", subscription_payload(sub)
        )
        while not self._draining:
            event = self._update_event
            try:
                await asyncio.wait_for(event.wait(), timeout=self.config.heartbeat_s)
            except asyncio.TimeoutError:
                await http.send_sse_comment(writer)
                continue
            current = await loop.run_in_executor(
                self._executor, self._read_subscription, registry, sub
            )
            if current is None:
                if last is not None:
                    await self._send_event(writer, "suspended", subscription_payload(sub))
                    last = None
                continue
            if last is None:
                await self._send_event(writer, "snapshot", subscription_payload(sub))
                last = current
                continue
            delta = diff_results(last, current)
            if delta is not None:
                await self._send_event(writer, "delta", delta)
            last = current
        await self._send_event(writer, "end", {"reason": "drain"})
        await http.end_sse(writer)


class ServerThread:
    """Run an :class:`SSRQServer` on a private event loop in a daemon
    thread — the harness the tests, the CLI's ``serve`` command and the
    load benchmark share.

        >>> from repro import GeoSocialEngine, QueryService, gowalla_like
        >>> from repro.server import ServerClient, ServerThread
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=200, seed=7))
        >>> with QueryService(engine) as service:
        ...     with ServerThread(service) as handle:
        ...         client = ServerClient(handle.host, handle.port)
        ...         client.healthz()["status"]
        'ok'
    """

    def __init__(self, service: "QueryService", config: "ServerConfig | None" = None, **overrides) -> None:
        self.server = SSRQServer(service, config, **overrides)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._startup: "Exception | None" = None

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except Exception as err:  # bind failure and friends
                self._startup = err
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="ssrq-server", daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):  # pragma: no cover - startup hang
            raise RuntimeError("server failed to start within 30s")
        if self._startup is not None:
            raise self._startup
        return self

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain, timeout=timeout), loop
        )
        future.result(timeout + 5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
