"""Typed API errors and the exception → HTTP status contract.

Every error body has one shape::

    {"error": {"type": "<code>", "message": "<human text>"}}

and the mapping from library exceptions to status codes is defined in
exactly one place (:func:`classify_exception`), so the serving boundary
cannot drift from the library's exception contract: the three request
errors the engine raises as ``ValueError`` — invalid parameters,
unknown user id, unlocated query user — all surface as **400** with a
distinguishing ``type``, exactly as they surface as ``ValueError``
through ``engine.query``, ``QueryService.query`` and the sharded
engine (pinned by ``tests/test_error_parity.py``).
"""

from __future__ import annotations

#: error codes carried in ``error.type``
BAD_REQUEST = "bad_request"          # malformed HTTP/JSON framing
INVALID_ARGUMENT = "invalid_argument"  # k/alpha/method out of contract
UNKNOWN_USER = "unknown_user"        # user id out of [0, n)
UNLOCATED_USER = "unlocated_user"    # query user has no known location
NOT_FOUND = "not_found"
METHOD_NOT_ALLOWED = "method_not_allowed"
OVERLOADED = "overloaded"            # admission queue full (429)
DEADLINE_EXCEEDED = "deadline_exceeded"  # request deadline fired (504)
SHUTTING_DOWN = "shutting_down"      # server is draining (503)
STORE = "store"                      # snapshot/restore request failed
STORE_CORRUPTION = "store_corruption"
INTERNAL = "internal"


class ApiError(Exception):
    """An error with a fixed HTTP status and body, raised by request
    parsing/validation inside the server."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def body(self) -> dict:
        return error_body(self.code, self.message)


def error_body(code: str, message: str) -> dict:
    return {"error": {"type": code, "message": message}}


def classify_exception(err: BaseException) -> tuple[int, str]:
    """``(status, error_type)`` for an exception escaping a handler.

    ``ValueError`` is the engine's request-rejection contract; the
    message distinguishes the three request-error families (their
    wording is pinned by the engine's own unit tests, and
    ``tests/test_error_parity.py`` pins this classification against
    all four call paths).
    """
    if isinstance(err, ApiError):
        return err.status, err.code
    if isinstance(err, ValueError):
        text = str(err)
        if "out of range" in text:
            return 400, UNKNOWN_USER
        if "no known location" in text:
            return 400, UNLOCATED_USER
        return 400, INVALID_ARGUMENT
    # store errors: corruption is a server-side 500, everything else a
    # caller mistake (missing snapshot root, nothing committed yet)
    try:
        from repro.store import StoreCorruptionError, StoreError
    except Exception:  # pragma: no cover - store always importable
        pass
    else:
        if isinstance(err, StoreCorruptionError):
            return 500, STORE_CORRUPTION
        if isinstance(err, StoreError):
            return 400, STORE
    if isinstance(err, KeyError):
        return 404, NOT_FOUND
    return 500, INTERNAL
