"""The network boundary: an asyncio HTTP API over the query service.

The package splits the serving stack into orthogonal layers —
:mod:`~repro.server.http` (hand-rolled HTTP/1.1 framing over asyncio
streams, zero new dependencies), :mod:`~repro.server.errors` (typed
error bodies and the single exception → status mapping),
:mod:`~repro.server.protocol` (wire shapes: batch parsing, the
``/stats`` aggregate), :mod:`~repro.server.metrics` (Prometheus text
rendering) and :mod:`~repro.server.app` (the server itself: admission
control, request coalescing, deadlines, SSE subscription streams,
graceful drain).  :mod:`~repro.server.client` is the matching stdlib
client, shared by the conformance tests, the operator CLI and the load
benchmark.
"""

from repro.server.app import ServerConfig, ServerStats, ServerThread, SSRQServer
from repro.server.client import ServerApiError, ServerClient
from repro.server.errors import ApiError, classify_exception, error_body
from repro.server.metrics import render_prometheus
from repro.server.protocol import stats_payload

__all__ = [
    "ApiError",
    "SSRQServer",
    "ServerApiError",
    "ServerClient",
    "ServerConfig",
    "ServerStats",
    "ServerThread",
    "classify_exception",
    "error_body",
    "render_prometheus",
    "stats_payload",
]
