"""Request parsing and introspection payloads for the HTTP API.

The wire shapes live in one place each: query request/response dicts in
:mod:`repro.service.model` (``QueryRequest.from_payload`` /
``QueryResponse.payload``), subscription deltas in
:mod:`repro.stream.deltas`, and the operational read-outs here —
``/stats`` aggregates every stats object the stack exposes
(:class:`~repro.service.model.ServiceStats`, cache info,
:class:`~repro.plan.PlannerStats`,
:class:`~repro.stream.subscription.StreamStats`, and the server's own
admission counters) into one JSON document, which ``/metrics`` also
flattens into Prometheus text format via :mod:`repro.server.metrics`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.server.errors import ApiError, INVALID_ARGUMENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import QueryService


def parse_batch(obj: dict) -> "tuple[list[dict], dict]":
    """``(request_objects, defaults)`` from a batch body::

        {"requests": [{"user": 1}, {"user": 2, "k": 5}],
         "k": 10, "alpha": 0.5, "method": "auto"}

    Top-level ``k``/``alpha``/``method``/``t``/``budget`` act as
    defaults for the per-request objects, mirroring
    ``QueryService.query_many``.
    """
    requests = obj.get("requests")
    if not isinstance(requests, list) or not requests:
        raise ApiError(
            400, INVALID_ARGUMENT, "batch body needs a non-empty 'requests' array"
        )
    defaults = {
        key: obj[key] for key in ("k", "alpha", "method", "t", "budget") if key in obj
    }
    return requests, defaults


def stats_payload(
    service: "QueryService", server=None, registry=None
) -> dict:
    """Every layer's counters in one document (stable section names)."""
    payload: dict = {
        "service": service.stats.snapshot(),
        "cache": service.cache_info(),
    }
    engine = service.engine
    # touching ``engine.planner`` would *build* one; only report a
    # planner that auto traffic has actually instantiated
    planner = getattr(engine, "_planner", None)
    if planner is not None:
        payload["planner"] = planner.stats.snapshot()
    if registry is not None:
        payload["stream"] = registry.stats.snapshot()
    if server is not None:
        payload["server"] = server.stats_snapshot()
    payload["engine"] = {
        "kind": type(engine).__name__,
        "users": engine.graph.n,
        "backend": getattr(getattr(engine, "kernels", None), "name", "unknown"),
    }
    return payload
