"""Stdlib client for the SSRQ HTTP API.

:class:`ServerClient` is the package's own consumer of the wire format
— the conformance suite, the operator CLI and the load benchmark all
speak to the server through it.  It is a thin veneer over
``http.client`` (JSON in, JSON out, typed errors re-raised as
:class:`ServerApiError`), plus a hand-rolled SSE reader for
``/subscribe``: ``http.client`` cannot incrementally read a chunked
``text/event-stream``, so :meth:`ServerClient.tail` opens a raw socket
and decodes the chunk framing itself.

One client holds one keep-alive connection and is **not** thread-safe;
concurrent callers (the backpressure tests, the load generator) create
one client per thread.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Iterator, Optional
from urllib.parse import urlencode

__all__ = ["ServerApiError", "ServerClient"]


class ServerApiError(Exception):
    """A non-2xx API response, carrying the typed error body."""

    def __init__(self, status: int, code: str, message: str, *, headers=None) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.headers = dict(headers or {})

    @property
    def retry_after(self) -> "float | None":
        raw = self.headers.get("Retry-After")
        return float(raw) if raw is not None else None


class ServerClient:
    """Synchronous client for one :class:`~repro.server.SSRQServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: "http.client.HTTPConnection | None" = None

    # -- plumbing ------------------------------------------------------

    def _connection(self) -> "http.client.HTTPConnection":
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        *,
        headers: "dict | None" = None,
    ) -> "tuple[int, dict, object]":
        """One request; returns ``(status, response_headers, payload)``
        without raising on error statuses (the raw-access path the
        tests use to inspect error bodies)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException, socket.timeout):
            # the server closes connections after framing errors and
            # during shutdown; retry once on a fresh connection
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            decoded: object = json.loads(raw) if raw else None
        else:
            decoded = raw.decode("utf-8")
        return response.status, dict(response.getheaders()), decoded

    def call(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        *,
        headers: "dict | None" = None,
    ) -> dict:
        """Like :meth:`request` but raises :class:`ServerApiError` on
        any non-2xx status."""
        status, response_headers, payload = self.request(
            method, path, body, headers=headers
        )
        if not 200 <= status < 300:
            error = (payload or {}).get("error", {}) if isinstance(payload, dict) else {}
            raise ServerApiError(
                status,
                error.get("type", "unknown"),
                error.get("message", str(payload)),
                headers=response_headers,
            )
        return payload

    @staticmethod
    def _deadline_headers(deadline_ms: "float | None") -> "dict | None":
        return None if deadline_ms is None else {"X-Deadline-Ms": str(deadline_ms)}

    # -- queries -------------------------------------------------------

    def query(
        self,
        user: int,
        *,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: "int | None" = None,
        budget: "float | None" = None,
        deadline_ms: "float | None" = None,
    ) -> dict:
        body = {"user": user, "k": k, "alpha": alpha, "method": method}
        if t is not None:
            body["t"] = t
        if budget is not None:
            body["budget"] = budget
        return self.call(
            "POST", "/query", body, headers=self._deadline_headers(deadline_ms)
        )

    def query_batch(
        self,
        requests: "list[dict]",
        *,
        deadline_ms: "float | None" = None,
        **defaults,
    ) -> dict:
        body = dict(defaults)
        body["requests"] = requests
        return self.call(
            "POST", "/query/batch", body, headers=self._deadline_headers(deadline_ms)
        )

    # -- updates -------------------------------------------------------

    def move(self, user: int, x: float, y: float) -> dict:
        return self.call("POST", "/update/location", {"user": user, "x": x, "y": y})

    def forget(self, user: int) -> dict:
        return self.call("POST", "/update/location", {"user": user, "forget": True})

    def update_edge(self, u: int, v: int, weight: "float | None") -> dict:
        return self.call("POST", "/update/edge", {"u": u, "v": v, "weight": weight})

    # -- snapshots -----------------------------------------------------

    def snapshot(self, root: str, *, fold: bool = True) -> dict:
        return self.call("POST", "/snapshot", {"root": root, "fold": fold})

    def restore(self, root: str) -> dict:
        return self.call("POST", "/restore", {"root": root})

    # -- introspection -------------------------------------------------

    def healthz(self) -> dict:
        return self.call("GET", "/healthz")

    def stats(self) -> dict:
        return self.call("GET", "/stats")

    def metrics(self, *, format: str = "text") -> "str | dict":
        path = "/metrics?format=json" if format == "json" else "/metrics"
        return self.call("GET", path)

    # -- subscription streaming ---------------------------------------

    def tail(
        self,
        user: int,
        *,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: "int | None" = None,
        heartbeats: bool = False,
        timeout: "float | None" = None,
    ) -> "Iterator[tuple[str, object]]":
        """Stream ``(event, payload)`` pairs from ``/subscribe`` until
        the server ends the stream (after an ``end`` event) or the
        caller closes the generator.

        Events are ``snapshot``/``suspended`` (full subscription
        state), ``delta`` (what changed), ``end`` — and, with
        ``heartbeats=True``, ``("heartbeat", None)`` for the server's
        keep-alive comments."""
        params = {"user": user, "k": k, "alpha": alpha, "method": method}
        if t is not None:
            params["t"] = t
        target = f"/subscribe?{urlencode(params)}"
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout if timeout is None else timeout
        )
        try:
            request = (
                f"GET {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Accept: text/event-stream\r\n\r\n"
            )
            sock.sendall(request.encode("ascii"))
            reader = sock.makefile("rb")
            status, headers = _read_response_head(reader)
            if status != 200:
                payload = _read_plain_body(reader, headers)
                error = (payload or {}).get("error", {}) if isinstance(payload, dict) else {}
                raise ServerApiError(
                    status,
                    error.get("type", "unknown"),
                    error.get("message", str(payload)),
                    headers=headers,
                )
            for frame in _iter_chunks(reader):
                parsed = _parse_sse_frame(frame)
                if parsed is None:
                    if heartbeats:
                        yield "heartbeat", None
                    continue
                yield parsed
                if parsed[0] == "end":
                    return
        finally:
            sock.close()


def _read_response_head(reader) -> "tuple[int, dict]":
    status_line = reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before responding")
    parts = status_line.decode("latin-1").split(None, 2)
    status = int(parts[1])
    headers: dict = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip()] = value.strip()
    return status, headers


def _read_plain_body(reader, headers: dict) -> "object":
    length = int(headers.get("Content-Length", 0))
    raw = reader.read(length) if length else b""
    try:
        return json.loads(raw) if raw else None
    except ValueError:
        return raw.decode("utf-8", "replace")


def _iter_chunks(reader) -> "Iterator[bytes]":
    """Decode HTTP/1.1 chunked framing; each SSE frame is one chunk."""
    while True:
        size_line = reader.readline()
        if not size_line:
            return  # connection dropped mid-stream
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            reader.readline()  # trailing CRLF after the last chunk
            return
        data = reader.read(size)
        reader.read(2)  # chunk-terminating CRLF
        yield data


def _parse_sse_frame(frame: bytes) -> "Optional[tuple[str, object]]":
    """``(event, payload)`` from one SSE frame; ``None`` for comments."""
    event = "message"
    data_lines = []
    for line in frame.decode("utf-8").splitlines():
        if line.startswith(":"):
            return None
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
    if not data_lines:
        return None
    return event, json.loads("\n".join(data_lines))
