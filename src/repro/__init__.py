"""repro — Joint Search by Social and Spatial Proximity (SSRQ).

A complete reproduction of Mouratidis, Li, Tang & Mamoulis, *"Joint
Search by Social and Spatial Proximity"* (ICDE 2016): the
social-and-spatial ranking query, every processing algorithm the paper
proposes (SFA, SPA, TSA, TSA-QC, AIS and its variants, pre-computation),
every substrate it depends on (weighted graph search, ALT landmarks,
bidirectional distance modules, Contraction Hierarchies, grid spatial
indexes, the aggregate index with social summaries), calibrated dataset
generators, a benchmark harness regenerating the paper's evaluation,
a serving layer (:mod:`repro.service`) adding batching, worker-pool
concurrency, and an update-aware result cache on top of the engine,
a sharding layer (:mod:`repro.shard`) that partitions users across
spatial shards and answers by scatter-gather with bound-based shard
pruning — rankings identical to the single engine, property-tested —
and a network boundary: an asyncio HTTP server with admission
control, request coalescing, and SSE subscription streams
(:mod:`repro.server`) plus the ``repro`` operator CLI
(:mod:`repro.cli`, optional ``[cli]`` extra).

Quickstart::

    from repro import GeoSocialEngine, gowalla_like

    dataset = gowalla_like(n=2000, seed=7)
    engine = GeoSocialEngine.from_dataset(dataset)
    result = engine.query(user=8, k=10, alpha=0.3, method="ais")
    for nb in result:
        print(nb.user, nb.score, nb.social, nb.spatial)
"""

from repro.backend import resolve_backend
from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.bruteforce import BruteForceSearch
from repro.core.engine import AUTO, METHODS, GeoSocialEngine, route_method
from repro.core.precompute import CachedSocialFirst, SocialNeighborCache
from repro.core.searcher import Searcher
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import Neighbor, SSRQResult, TopKBuffer
from repro.core.sfa import SocialFirstSearch
from repro.core.spa import SpatialFirstSearch
from repro.core.stats import SearchStats
from repro.core.tsa import TwofoldSearch
from repro.datasets.synthetic import (
    GeoSocialDataset,
    build_dataset,
    correlated_dataset,
    forest_fire_series,
    foursquare_like,
    gowalla_like,
    twitter_like,
)
from repro.graph.socialgraph import SocialGraph
from repro.index.aggregate import AggregateIndex
from repro.plan import AdaptivePlanner, CostModel, PlanDecision, PlannerStats, QueryFeatures
from repro.service.cache import ResultCache
from repro.service.model import QueryRequest, QueryResponse, ServiceStats
from repro.service.service import QueryService
from repro.shard.engine import ShardedGeoSocialEngine
from repro.sketch import ApproxSketchSearch, SketchIndex
from repro.social import SocialCacheStats, SocialColumnCache
from repro.spatial.point import BBox, LocationTable
from repro.store import (
    SnapshotManager,
    StoreCorruptionError,
    StoreError,
    load_engine,
    save_engine,
)
from repro.stream.registry import SubscriptionRegistry
from repro.stream.subscription import StreamStats, Subscription

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # engine & algorithms
    "GeoSocialEngine",
    "resolve_backend",
    "METHODS",
    "AUTO",
    "route_method",
    "Searcher",
    # adaptive planner (method="auto")
    "AdaptivePlanner",
    "PlanDecision",
    "PlannerStats",
    "CostModel",
    "QueryFeatures",
    "SocialFirstSearch",
    "SpatialFirstSearch",
    "TwofoldSearch",
    "AggregateIndexSearch",
    "AISVariant",
    "SocialNeighborCache",
    "CachedSocialFirst",
    "BruteForceSearch",
    # bounded-error sketch fast path (method="approx")
    "SketchIndex",
    "ApproxSketchSearch",
    # cross-query social-distance reuse
    "SocialColumnCache",
    "SocialCacheStats",
    # query model
    "Normalization",
    "RankingFunction",
    "Neighbor",
    "SSRQResult",
    "TopKBuffer",
    "SearchStats",
    # service layer
    "QueryService",
    "QueryRequest",
    "QueryResponse",
    "ServiceStats",
    "ResultCache",
    # sharding layer
    "ShardedGeoSocialEngine",
    # durable store (snapshots & warm-start)
    "SnapshotManager",
    "StoreError",
    "StoreCorruptionError",
    "save_engine",
    "load_engine",
    # stream layer (continuous queries)
    "SubscriptionRegistry",
    "Subscription",
    "StreamStats",
    # data model
    "SocialGraph",
    "LocationTable",
    "BBox",
    "AggregateIndex",
    "GeoSocialDataset",
    # dataset builders
    "build_dataset",
    "gowalla_like",
    "foursquare_like",
    "twitter_like",
    "correlated_dataset",
    "forest_fire_series",
]
