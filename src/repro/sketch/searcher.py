"""``method="approx"`` — sketch-scored SSRQ with a certified bound.

Mirrors :class:`~repro.core.bruteforce.BruteForceSearch`'s columnar
flow, with the forward Dijkstra replaced by one sketch lookup: the
social column is the midpoint of each user's ``[p̌, p̂]`` sketch
interval, so the whole query is a handful of kernel calls over dense
columns — no traversal, no heap, no per-degree cost.  That is what
buys the ≥10x on high-degree query users where Dijkstra's frontier is
the bottleneck (``benchmarks/bench_approx.py``).

The reported ranking is approximate; the error is not.  For every
reported neighbour ``u`` the true score satisfies::

    |f̃(u) − f(u)| = w_social · |p̃(u) − p(u)| <= w_social · half(u)

because the spatial term is computed exactly (same kernel as every
exact searcher) and the true social distance lies inside the sketch
interval.  The query's :attr:`~repro.core.result.SSRQResult.error_bound`
is the max of that quantity over the reported neighbours — computed at
query time from the same columns, so it holds by construction on every
query, not just on benchmarked ones.
"""

from __future__ import annotations

import math
import time

from repro.backend import Kernels, resolve_backend
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import Neighbor, SSRQResult
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.sketch.index import SketchIndex
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf
_NAN = math.nan


class ApproxSketchSearch:
    """Bounded-error SSRQ processor answering from a sketch.

    Reached through the engine facade like every other method; the
    result carries the certified score-error radius of its ranking::

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=80, seed=3))
        >>> result = engine.query(user=8, k=5, alpha=0.3, method="approx")
        >>> len(result.users) == 5 and result.error_bound >= 0.0
        True
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
        sketch: SketchIndex,
        kernels: Kernels | None = None,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization
        self.sketch = sketch
        self.kernels = kernels if kernels is not None else resolve_backend("python")

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial=None,
    ) -> SSRQResult:
        """Score every user from the sketch midpoint; an optional
        ``initial`` buffer of already (exactly) evaluated users is
        merged in, contributing zero to the error bound."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        kernels = self.kernels
        n = self.graph.n

        half = None
        if rank.needs_social:
            lower, upper = self.sketch.intervals(query_user, kernels)
            p, half = kernels.interval_midpoints(lower, upper)
        else:  # pure-spatial degenerate (normally routed to spa)
            p = kernels.dense_from_dict(n, {}, INF)

        location = self.locations.get(query_user) if rank.needs_spatial else None
        qx, qy = location if location is not None else (_NAN, _NAN)
        xs, ys = self.locations.columns()
        d = kernels.euclidean_to_point(xs, ys, qx, qy)

        scores = kernels.blend(rank.w_social, rank.w_spatial, p, d)
        scores[query_user] = INF  # never report the query user
        top = kernels.top_k_by_score(scores, range(n), k)
        neighbors = [
            Neighbor(int(u), float(scores[u]), float(p[u]), float(d[u])) for u in top
        ]
        # per-user certified score-error radii of the *reported* set
        w_social = rank.w_social
        radii = (
            {nb.user: w_social * float(half[nb.user]) for nb in neighbors}
            if half is not None
            else {}
        )
        if initial is not None:
            for nb in neighbors:
                initial.offer(nb.user, nb.score, nb.social, nb.spatial)
            neighbors = initial.neighbors()
        bound = max((radii.get(nb.user, 0.0) for nb in neighbors), default=0.0)
        stats.evaluations = kernels.count_finite(scores)
        stats.candidates_scored = stats.evaluations
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(
            query_user, k, alpha, neighbors, stats, error_bound=bound
        )
