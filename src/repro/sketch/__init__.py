"""sketch — bounded-error SSRQ from precomputed social-distance sketches.

The searchability thread in PAPERS.md (Watts–Dodds–Newman; Elsisy et
al., "a partial knowledge of friends of friends speeds social search")
says partial structural knowledge routes social search nearly as well
as full knowledge.  This package exploits it:

- :class:`SketchIndex` — a compact per-user sketch of the social
  distance function: the exact lengths of all ≤2-hop paths (capped,
  CSR-stored columnar arrays) plus the landmark-difference *interval*
  ``[p̌, p̂]`` derived at query time from the existing
  :class:`~repro.graph.landmarks.LandmarkIndex` matrix;
- :class:`ApproxSketchSearch` — ``method="approx"``: scores every user
  from the sketch midpoint instead of running a forward Dijkstra, and
  certifies a per-query **score-error bound** (each reported
  neighbour's true ``f`` is within ``error_bound`` of its reported
  score) recorded on :attr:`~repro.core.result.SSRQResult.error_bound`.

Both pieces run behind the :class:`~repro.backend.Kernels` protocol, so
the python and numpy legs produce bit-identical approximate rankings —
the differential suite (``tests/test_sketch.py``) pins the bound
against the bruteforce oracle under both backends.
"""

from repro.sketch.index import SketchIndex
from repro.sketch.searcher import ApproxSketchSearch

__all__ = ["ApproxSketchSearch", "SketchIndex"]
