"""Compact per-user social-distance sketches (columnar, persistable).

A sketch answers "roughly how socially far is ``v`` from the query
user?" without any graph traversal, from two ingredients:

1. **2-hop neighbourhood entries** — for every user ``u``, the exact
   lengths of the shortest ≤2-hop paths to each user reachable within
   two hops (capped at :attr:`SketchIndex.max_entries` per user, kept
   smallest-distance-first).  A path length is always a valid *upper*
   bound on the true distance, and for the near field — which is where
   top-``k`` answers live at interior ``α`` — it is usually tight.
2. **Landmark-difference intervals** — the ALT lower bound
   ``p̌ = max_j |m_qj − m_vj|`` and upper bound ``p̂ = min_j (m_qj +
   m_vj)`` over the engine's existing
   :class:`~repro.graph.landmarks.LandmarkIndex` matrix, batched by the
   :mod:`repro.backend` kernels.

:meth:`SketchIndex.intervals` combines them into per-user ``[p̌, p̂]``
columns (the 2-hop entries tighten ``p̂``); the approx searcher scores
the interval midpoint, whose distance error is certifiably at most the
interval half-width — that is the whole bound argument, and it needs no
empirical luck to hold.

The *empirical* part is the gate: :meth:`SketchIndex.build` probes a
seeded sample of query users and records the largest top-of-ranking
half-width seen (:attr:`empirical_half`, in raw social-distance units).
:meth:`admissible` converts it through the ranking weights into score
units, and the planner only offers ``approx`` to a query whose
``budget`` covers that empirical estimate.

Storage is three columnar arrays (``indptr``/``nbrs``/``dists`` — the
CSR idiom the social graph itself uses) plus scalar metadata, which is
exactly what :mod:`repro.store` persists as optional ``sketch_*``
manifest columns.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.utils.rng import make_rng

try:  # soft dependency, same posture as the landmark tables
    import numpy as _np
except ModuleNotFoundError:  # pragma: no cover - exercised only off-CI
    _np = None

INF = math.inf

#: per-user cap on stored 2-hop entries (smallest distances win)
DEFAULT_MAX_ENTRIES = 64
#: query users probed for the empirical error gate
DEFAULT_PROBES = 8
#: ranking depth the probe inspects (top-of-ranking half-widths)
DEFAULT_PROBE_K = 16


class SketchIndex:
    """Precomputed 2-hop + landmark-interval social-distance sketch.

    Built lazily by the engine the first time ``method="approx"`` (or a
    budgeted ``auto`` query) needs it, then cached::

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=80, seed=3))
        >>> sketch = engine.sketch
        >>> sketch.max_entries
        64
        >>> sketch.admissible(1.0, 0.0)   # budget 0 never admits approx
        False
        >>> sketch.entry_count() <= 80 * sketch.max_entries
        True
    """

    __slots__ = (
        "graph",
        "landmarks",
        "indptr",
        "nbrs",
        "dists",
        "max_entries",
        "empirical_half",
    )

    def __init__(
        self,
        graph: SocialGraph,
        landmarks: LandmarkIndex,
        indptr,
        nbrs,
        dists,
        *,
        max_entries: int,
        empirical_half: float,
    ) -> None:
        if len(indptr) != graph.n + 1:
            raise ValueError(
                f"sketch indptr length {len(indptr)} != n+1 = {graph.n + 1}"
            )
        if len(nbrs) != len(dists) or len(nbrs) != int(indptr[-1]):
            raise ValueError(
                f"sketch entry columns disagree: {len(nbrs)} ids, "
                f"{len(dists)} distances, indptr says {int(indptr[-1])}"
            )
        self.graph = graph
        self.landmarks = landmarks
        self.indptr = indptr
        self.nbrs = nbrs
        self.dists = dists
        self.max_entries = int(max_entries)
        self.empirical_half = float(empirical_half)

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        landmarks: LandmarkIndex,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        probes: int = DEFAULT_PROBES,
        probe_k: int = DEFAULT_PROBE_K,
        seed: int = 0,
        kernels=None,
    ) -> "SketchIndex":
        """Enumerate every user's capped 2-hop neighbourhood and run the
        empirical error probe.  Deterministic for a given graph/seed."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        n = graph.n
        indptr = [0] * (n + 1)
        nbrs: list[int] = []
        dists: list[float] = []
        for u in range(n):
            reach: dict[int, float] = {}
            for a, w1 in graph.neighbors(u):
                if a != u and w1 < reach.get(a, INF):
                    reach[a] = w1
                for b, w2 in graph.neighbors(a):
                    if b == u:
                        continue
                    d = w1 + w2
                    if d < reach.get(b, INF):
                        reach[b] = d
            entries = sorted(reach.items(), key=lambda kv: (kv[1], kv[0]))
            if len(entries) > max_entries:
                entries = entries[:max_entries]
                entries.sort()  # canonical id order within each slice
            else:
                entries.sort()
            for v, d in entries:
                nbrs.append(v)
                dists.append(d)
            indptr[u + 1] = len(nbrs)
        if _np is not None:
            indptr = _np.asarray(indptr, dtype=_np.int64)
            nbrs = _np.asarray(nbrs, dtype=_np.int64)
            dists = _np.asarray(dists, dtype=_np.float64)
        sketch = cls(
            graph,
            landmarks,
            indptr,
            nbrs,
            dists,
            max_entries=max_entries,
            empirical_half=0.0,
        )
        sketch.empirical_half = sketch._probe_half(probes, probe_k, seed, kernels)
        return sketch

    @classmethod
    def from_tables(
        cls,
        graph: SocialGraph,
        landmarks: LandmarkIndex,
        indptr,
        nbrs,
        dists,
        *,
        max_entries: int,
        empirical_half: float,
    ) -> "SketchIndex":
        """Adopt persisted sketch columns (the :mod:`repro.store`
        restore path) without re-enumerating or re-probing."""
        return cls(
            graph,
            landmarks,
            indptr,
            nbrs,
            dists,
            max_entries=max_entries,
            empirical_half=empirical_half,
        )

    # -- query-time columns ---------------------------------------------

    def intervals(self, query_user: int, kernels) -> tuple:
        """``(lower, upper)`` social-distance bound columns over all
        users for ``query_user``: landmark intervals tightened by the
        query user's exact 2-hop entries."""
        qvec: Sequence[float] = [row[query_user] for row in self.landmarks.dist]
        ids = range(self.graph.n)
        lower = kernels.alt_lower_bounds(self.landmarks, qvec, ids)
        upper = kernels.alt_upper_bounds(self.landmarks, qvec, ids)
        start = int(self.indptr[query_user])
        end = int(self.indptr[query_user + 1])
        for i in range(start, end):
            v = int(self.nbrs[i])
            d = self.dists[i]
            if d < upper[v]:
                upper[v] = d
        return lower, upper

    # -- the empirical gate ---------------------------------------------

    def _probe_half(self, probes: int, probe_k: int, seed: int, kernels) -> float:
        """Largest top-of-ranking interval half-width over a seeded
        sample of query users (raw social-distance units)."""
        if kernels is None:
            from repro.backend import resolve_backend

            kernels = resolve_backend("python")
        n = self.graph.n
        if n < 2:
            return 0.0
        rng = make_rng(seed)
        sample = rng.sample(range(n), min(probes, n))
        worst = 0.0
        for q in sorted(sample):
            lower, upper = self.intervals(q, kernels)
            est, half = kernels.interval_midpoints(lower, upper)
            est[q] = INF
            top = kernels.top_k_by_score(est, range(n), probe_k)
            for u in top:
                h = float(half[u])
                if h > worst:
                    worst = h
        return worst

    def admissible(self, w_social: float, budget: float) -> bool:
        """Whether the empirical error estimate fits ``budget``:
        ``w_social · empirical_half <= budget`` (score units — the same
        conversion the certified per-query bound uses)."""
        if budget <= 0.0:
            return False
        cost = w_social * self.empirical_half
        return cost == cost and cost <= budget

    def entry_count(self) -> int:
        """Total stored 2-hop entries (sketch size diagnostic)."""
        return len(self.nbrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchIndex(n={self.graph.n}, entries={self.entry_count()}, "
            f"max_entries={self.max_entries}, "
            f"empirical_half={self.empirical_half:.4g})"
        )
