"""The SSRQ ranking function (paper Section 3.1).

Given a query user ``u_q`` and preference ``α ∈ [0, 1]``::

    f(u_q, u_i) = α · p(v_q, v_i)/P_max + (1 − α) · d(u_q, u_i)/D_max

Smaller is better.  ``p`` is weighted shortest-path distance in the
social graph, ``d`` Euclidean distance; both are normalised by the
maximum pairwise distance in their domain (the paper omits the
denominators "for simplicity" but uses them in the implementation, as
do we).

Infinite distances — unreachable vertices, users without a known
location — are first-class citizens: a term with zero weight contributes
0 even when the distance is infinite, so ``α = 1`` ranks purely
socially and ``α = 0`` purely spatially without NaN surprises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.validation import check_alpha

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.socialgraph import SocialGraph
    from repro.spatial.point import LocationTable

INF = math.inf
_TINY = 1e-300  # guards divisions for degenerate (single-point) datasets


@dataclass(frozen=True)
class Normalization:
    """Per-dataset normalising constants ``P_max`` (social) and
    ``D_max`` (spatial).

        >>> from repro import Normalization
        >>> norm = Normalization(p_max=4.0, d_max=1.5)
        >>> norm.p_max, norm.d_max
        (4.0, 1.5)
    """

    p_max: float
    d_max: float

    def __post_init__(self) -> None:
        if self.p_max < 0 or self.d_max < 0:
            raise ValueError(f"normalisers must be non-negative: {self!r}")

    @classmethod
    def estimate(
        cls, graph: "SocialGraph", locations: "LocationTable", seed: int = 0
    ) -> "Normalization":
        """Estimate both constants from the data.

        ``D_max`` is the diagonal of the location bounding box — an
        exact upper bound on any pairwise Euclidean distance.  ``P_max``
        is the double-sweep diameter estimate (see
        :mod:`repro.graph.diameter`); being a shared constant, a
        consistent estimate preserves all rankings.
        """
        from repro.graph.diameter import double_sweep_diameter

        if locations.n_located >= 2:
            d_max = locations.bbox().diagonal
        else:
            d_max = 0.0
        p_max = double_sweep_diameter(graph, sweeps=2, seed=seed)
        return cls(p_max=p_max, d_max=d_max)


class RankingFunction:
    """``f`` for a fixed ``α`` and normalisation.

    The two weights are pre-divided by the normalisers, so scoring is a
    two-multiply operation in the hot loops.

        >>> from repro import Normalization, RankingFunction
        >>> rank = RankingFunction(0.5, Normalization(p_max=4.0, d_max=1.5))
        >>> rank.score(2.0, 0.75)      # 0.5*(2/4) + 0.5*(0.75/1.5)
        0.5
    """

    __slots__ = ("alpha", "normalization", "w_social", "w_spatial")

    def __init__(self, alpha: float, normalization: Normalization) -> None:
        self.alpha = check_alpha(alpha)
        self.normalization = normalization
        self.w_social = alpha / max(normalization.p_max, _TINY)
        self.w_spatial = (1.0 - alpha) / max(normalization.d_max, _TINY)

    def social_part(self, p: float) -> float:
        """Weighted, normalised social term (0 when ``α == 0``)."""
        w = self.w_social
        return w * p if w != 0.0 else 0.0

    def spatial_part(self, d: float) -> float:
        """Weighted, normalised spatial term (0 when ``α == 1``)."""
        w = self.w_spatial
        return w * d if w != 0.0 else 0.0

    def score(self, p: float, d: float) -> float:
        """``f`` value for raw distances ``p`` (social) and ``d``
        (spatial)."""
        ws = self.w_social
        wd = self.w_spatial
        s = ws * p if ws != 0.0 else 0.0
        t = wd * d if wd != 0.0 else 0.0
        return s + t

    @property
    def needs_social(self) -> bool:
        """Whether social distances influence the score at this ``α``."""
        return self.w_social != 0.0

    @property
    def needs_spatial(self) -> bool:
        return self.w_spatial != 0.0

    def __repr__(self) -> str:
        return f"RankingFunction(alpha={self.alpha}, norm={self.normalization})"
