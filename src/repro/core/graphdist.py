"""Point-to-point distance oracles pluggable into SFA/SPA/TSA.

The paper's Figure 8 compares the vanilla methods (whose social-distance
module is an incremental shared Dijkstra) against variants whose
distance module is replaced by Contraction Hierarchies (SFA-CH, SPA-CH,
TSA-CH).  An oracle exposes::

    distance(source, target) -> float   # exact graph distance
    pops                                 # cumulative heap pops

Algorithms snapshot ``pops`` around a query to attribute costs.
"""

from __future__ import annotations

import threading

from repro.graph.ch import ContractionHierarchy
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.utils.heaps import MinHeap


class CHOracle:
    """Contraction-Hierarchies-backed oracle (the paper's "CH").

    SSRQ evaluation asks for many targets from the *same* source (the
    query vertex), so the oracle materialises the source's forward CH
    search space once and answers each target with a pruned backward
    search only.

    The memoised forward search space (and the pop-counting heap) is
    kept in thread-local storage: the searchers that share one oracle
    may run concurrently under the service layer's worker pool, and a
    source switch by one thread must not invalidate (or corrupt) the
    forward space another thread is still probing.
    """

    __slots__ = ("ch", "_local")

    def __init__(self, ch: ContractionHierarchy) -> None:
        self.ch = ch
        self._local = threading.local()

    def _state(self) -> threading.local:
        local = self._local
        if not hasattr(local, "heap"):
            local.heap = MinHeap()
            local.source = None
            local.forward = None
        return local

    def distance(self, source: int, target: int) -> float:
        state = self._state()
        if source != state.source:
            state.source = source
            state.forward = self.ch.upward_distances(source, state.heap)
        return self.ch.distance_from(state.forward, source, target, state.heap)

    @property
    def pops(self) -> int:
        """Cumulative heap pops of the *calling thread's* searches (each
        worker attributes only its own query costs)."""
        return self._state().heap.pops


class ALTOracle:
    """Unidirectional landmark-A* oracle (ablation comparator: how does
    plain ALT fare where the paper uses CH?)."""

    __slots__ = ("graph", "landmarks", "_pops")

    def __init__(self, graph: SocialGraph, landmarks: LandmarkIndex) -> None:
        self.graph = graph
        self.landmarks = landmarks
        self._pops = 0

    def distance(self, source: int, target: int) -> float:
        from repro.graph.astar import AStarSearch

        if source == target:
            return 0.0
        h = self.landmarks.heuristic_to(target)
        search = AStarSearch(self.graph, source, h)
        while True:
            item = search.next()
            if item is None:
                self._pops += search.heap.pops
                return float("inf")
            if item[0] == target:
                self._pops += search.heap.pops
                return item[1]

    @property
    def pops(self) -> int:
        return self._pops
