"""Exact brute-force SSRQ evaluation.

Runs one full Dijkstra from the query vertex and scores every user.
Quadratic-ish and indifferent to all of the paper's optimisations — the
ground truth every algorithm is tested against, and the natural
definition of correctness for SSRQ (Definition 1).
"""

from __future__ import annotations

import heapq
import math
import time

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import Neighbor, SSRQResult
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf


class BruteForceSearch:
    """Reference SSRQ processor (not part of the paper's method suite).

        >>> from repro import BruteForceSearch, SocialGraph, LocationTable, Normalization
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> bf = BruteForceSearch(g, loc, Normalization(p_max=4.0, d_max=1.5))
        >>> bf.search(0, k=2, alpha=0.5).users
        [1, 3]
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial=None,
    ) -> SSRQResult:
        """Score every user; an optional ``initial`` buffer of already
        evaluated users is merged in (uniform searcher signature — the
        full scan gains nothing from a warm threshold)."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)

        social: dict[int, float] = {}
        if rank.needs_social:
            it = DijkstraIterator(self.graph, query_user)
            social = it.run_to_completion()
            stats.pops_social = it.heap.pops

        locations = self.locations
        scored: list[tuple[float, int, float, float]] = []
        for user in range(self.graph.n):
            if user == query_user:
                continue
            p = social.get(user, INF) if rank.needs_social else INF
            d = locations.distance(query_user, user) if rank.needs_spatial else INF
            f = rank.score(p, d)
            if f != INF:
                scored.append((f, user, p, d))
        top = heapq.nsmallest(k, scored)
        neighbors = [Neighbor(user, f, p, d) for f, user, p, d in top]
        if initial is not None:
            for f, user, p, d in top:
                initial.offer(user, f, p, d)
            neighbors = initial.neighbors()
        stats.evaluations = len(scored)
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, neighbors, stats)
