"""Exact brute-force SSRQ evaluation.

Runs one full Dijkstra from the query vertex and scores every user.
Quadratic-ish and indifferent to all of the paper's optimisations — the
ground truth every algorithm is tested against, and the natural
definition of correctness for SSRQ (Definition 1).

Scoring is columnar: the Dijkstra distance dict is marshalled into a
dense social column, the spatial column comes from one
``euclidean_to_point`` kernel call over the whole location table, and
one ``blend`` + ``top_k_by_score`` pass selects the answer — so the
same code path runs scalar (``PythonKernels``) or vectorized
(``NumpyKernels``) with bit-identical output.
"""

from __future__ import annotations

import math
import time

from repro.backend import Kernels, resolve_backend
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import Neighbor, SSRQResult
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf
_NAN = math.nan


class BruteForceSearch:
    """Reference SSRQ processor (not part of the paper's method suite).

        >>> from repro import BruteForceSearch, SocialGraph, LocationTable, Normalization
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> bf = BruteForceSearch(g, loc, Normalization(p_max=4.0, d_max=1.5))
        >>> bf.search(0, k=2, alpha=0.5).users
        [1, 3]
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
        kernels: Kernels | None = None,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization
        self.kernels = kernels if kernels is not None else resolve_backend("python")

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial=None,
    ) -> SSRQResult:
        """Score every user; an optional ``initial`` buffer of already
        evaluated users is merged in (uniform searcher signature — the
        full scan gains nothing from a warm threshold)."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        kernels = self.kernels
        n = self.graph.n

        social: dict[int, float] = {}
        if rank.needs_social:
            it = DijkstraIterator(self.graph, query_user)
            social = it.run_to_completion()
            stats.pops_social = it.heap.pops
        p = kernels.dense_from_dict(n, social, INF)

        # The spatial column: distances to the query point, or all-inf
        # when the spatial term is irrelevant / the query is unlocated
        # (a NaN query point makes the kernel emit inf everywhere —
        # exactly the scalar `distance()` contract).
        location = self.locations.get(query_user) if rank.needs_spatial else None
        qx, qy = location if location is not None else (_NAN, _NAN)
        xs, ys = self.locations.columns()
        d = kernels.euclidean_to_point(xs, ys, qx, qy)

        scores = kernels.blend(rank.w_social, rank.w_spatial, p, d)
        scores[query_user] = INF  # never report the query user
        top = kernels.top_k_by_score(scores, range(n), k)
        neighbors = [
            Neighbor(int(u), float(scores[u]), float(p[u]), float(d[u])) for u in top
        ]
        if initial is not None:
            for nb in neighbors:
                initial.offer(nb.user, nb.score, nb.social, nb.spatial)
            neighbors = initial.neighbors()
        stats.evaluations = kernels.count_finite(scores)
        stats.candidates_scored = stats.evaluations
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, neighbors, stats)
