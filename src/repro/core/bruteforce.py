"""Exact brute-force SSRQ evaluation.

Runs one full Dijkstra from the query vertex and scores every user.
Quadratic-ish and indifferent to all of the paper's optimisations — the
ground truth every algorithm is tested against, and the natural
definition of correctness for SSRQ (Definition 1).

Scoring is columnar: the Dijkstra distance dict is marshalled into a
dense social column, the spatial column comes from one
``euclidean_to_point`` kernel call over the whole location table, and
one ``blend`` + ``top_k_by_score`` pass selects the answer (shared with
every other column consumer via :func:`repro.social.scan.dense_scan`) —
so the same code path runs scalar (``PythonKernels``) or vectorized
(``NumpyKernels``) with bit-identical output.

With a ``column_source`` (a :class:`~repro.social.cache.
SocialColumnCache`), the social column is cache-first: a prior query
from the same user makes the full scan O(scan) instead of
O(Dijkstra + scan), and a cold scan parks its column for everyone else.
"""

from __future__ import annotations

import math
import time

from repro.backend import Kernels, resolve_backend
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.social.scan import dense_scan
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf
_NAN = math.nan


class BruteForceSearch:
    """Reference SSRQ processor (not part of the paper's method suite).

        >>> from repro import BruteForceSearch, SocialGraph, LocationTable, Normalization
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> bf = BruteForceSearch(g, loc, Normalization(p_max=4.0, d_max=1.5))
        >>> bf.search(0, k=2, alpha=0.5).users
        [1, 3]
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
        kernels: Kernels | None = None,
        column_source=None,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization
        self.kernels = kernels if kernels is not None else resolve_backend("python")
        self.column_source = column_source

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial=None,
    ) -> SSRQResult:
        """Score every user; an optional ``initial`` buffer of already
        evaluated users is merged in (uniform searcher signature — the
        full scan gains nothing from a warm threshold)."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        kernels = self.kernels
        n = self.graph.n

        p = None
        if rank.needs_social:
            source = self.column_source
            it = None
            if source is not None:
                kind, payload = source.acquire(query_user)
                if kind == "full":
                    p = payload
                elif kind == "partial":
                    it = payload  # resume the parked expansion
            if p is None:
                if it is None:
                    it = DijkstraIterator(self.graph, query_user)
                pops_before = it.heap.pops
                social = it.run_to_completion()
                stats.pops_social = it.heap.pops - pops_before
                p = kernels.dense_from_dict(n, social, INF)
                if source is not None:
                    source.store_full(query_user, p)
        else:
            p = kernels.dense_from_dict(n, {}, INF)

        # The spatial column (inside dense_scan): distances to the query
        # point, or all-inf when the spatial term is irrelevant / the
        # query is unlocated (a NaN query point makes the kernel emit
        # inf everywhere — exactly the scalar `distance()` contract).
        neighbors, finite = dense_scan(
            kernels, n, rank, p, self.locations, query_user, k, initial
        )
        stats.evaluations = finite
        stats.candidates_scored = stats.evaluations
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, neighbors, stats)
