"""Spatial First Approach — SPA (paper Section 4.1).

Retrieve users in increasing Euclidean distance from ``u_q`` with an
incremental grid-based NN search; compute each one's social distance;
stop when ``θ = (1 − α) · d(u_q, u_last)`` exceeds ``f_k``.  (The
paper terminates at ``θ ≥ f_k``; we stop only on *strict* excess so
users exactly tied with the k-th score are still enumerated and the
result's tie-break — smaller ids win — is deterministic across all
methods, enumeration orders, and shard layouts.)

Social distances are produced by one *shared* incremental Dijkstra from
``v_q`` that is advanced just far enough to settle each candidate — the
"shortest paths all have v_q as source, thus essentially sharing
computations" behaviour the paper credits vanilla SPA with.  The
``point_to_point`` oracle (SPA-CH) replaces that module with a fresh
point-to-point query per candidate.
"""

from __future__ import annotations

import math
import time

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.social.scan import dense_scan
from repro.spatial.grid import UniformGrid
from repro.spatial.nn import IncrementalNearestNeighbors
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf


class SpatialFirstSearch:
    """SPA query processor.

        >>> from repro import SpatialFirstSearch, SocialGraph, LocationTable, Normalization
        >>> from repro.spatial.grid import UniformGrid
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> spa = SpatialFirstSearch(g, loc, UniformGrid.build(loc, 2),
        ...                          Normalization(p_max=4.0, d_max=1.5))
        >>> spa.search(0, k=2, alpha=0.5).users
        [1, 3]
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        grid: UniformGrid,
        normalization: Normalization,
        point_to_point=None,
        kernels=None,
        column_source=None,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.grid = grid
        self.normalization = normalization
        self.point_to_point = point_to_point
        self.kernels = kernels
        #: optional SocialColumnCache; SPA only ever calls
        #: ``run_until`` — which consults ``settled`` before advancing —
        #: so a parked partial expansion is resumed *directly*, no
        #: replay adapter needed
        self.column_source = column_source

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer the query; an optional ``initial`` buffer of already
        fully-evaluated users warm-starts the threshold ``f_k``, letting
        the NN stream terminate as soon as its spatial bound proves no
        local user can improve on it (scatter-gather threshold
        propagation)."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        if not rank.needs_spatial:
            raise ValueError(
                "SPA requires alpha < 1: with alpha == 1 its spatial bound "
                "never grows; use SFA (the engine routes this automatically)"
            )
        location = self.locations.get(query_user)
        if location is None:
            raise ValueError(
                f"query user {query_user} has no known location; spatial-first "
                "search is undefined (paper assumes located query users)"
            )
        qx, qy = location

        buffer = initial if initial is not None else TopKBuffer(k)
        oracle = self.point_to_point
        source = self.column_source if oracle is None and rank.needs_social else None
        social = None
        if source is not None:
            kind, payload = source.acquire(query_user)
            if kind == "full":
                # One columnar pass over the cached column — bit-identical
                # to the NN enumeration below (strict termination +
                # smaller-id tie-break select the (score, id)-minimal set).
                kernels = self.kernels if self.kernels is not None else source.kernels
                neighbors, finite = dense_scan(
                    kernels, self.graph.n, rank, payload,
                    self.locations, query_user, k, initial,
                )
                stats.candidates_scored = finite
                stats.extra["social_column_hits"] = 1
                stats.elapsed = time.perf_counter() - start
                return SSRQResult(query_user, k, alpha, neighbors, stats)
            if kind == "partial":
                social = payload  # resume the parked expansion in place
        nn = IncrementalNearestNeighbors(
            self.grid, self.locations, qx, qy, exclude=query_user, kernels=self.kernels
        )
        oracle_pops_before = oracle.pops if oracle is not None else 0
        if social is None and rank.needs_social and oracle is None:
            social = DijkstraIterator(self.graph, query_user)
        social_pops_before = social.heap.pops if social is not None else 0

        while True:
            item = nn.next()
            if item is None:
                break  # all located users scored; the rest are at d = inf
            u, d = item
            if rank.needs_social:
                if oracle is not None:
                    p = oracle.distance(query_user, u)
                    stats.evaluations += 1
                else:
                    p = social.run_until(u)
                    stats.evaluations += 1
            else:
                p = INF
            buffer.offer(u, rank.score(p, d), p, d)
            stats.candidates_scored += 1
            theta = rank.spatial_part(d)
            if theta > buffer.fk:
                break

        stats.pops_spatial = nn.heap.pops
        stats.cells_opened = nn.cells_opened
        if social is not None:
            stats.pops_social = social.heap.pops - social_pops_before
        if oracle is not None:
            stats.pops_social += oracle.pops - oracle_pops_before
        if source is not None and social is not None:
            source.checkin(query_user, social)
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, buffer.neighbors(), stats)
