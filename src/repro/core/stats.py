"""Per-query search statistics.

The paper's evaluation reports two cost metrics: *run-time* and the
*pop ratio* ``|V_pop| / |V|``, where ``|V_pop|`` counts vertices popped
from the methods' search heaps (an I/O proxy for disk-resident graphs).
:class:`SearchStats` aggregates pops per domain plus bookkeeping that
the AIS optimisations expose (exact evaluations, cache hits, delayed
re-insertions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Mutable counters filled in by a single query execution.

        >>> from repro import SearchStats
        >>> stats = SearchStats(pops_social=3, pops_spatial=2)
        >>> stats.pops, stats.pop_ratio(10)
        (5, 0.5)
        >>> stats.merge(SearchStats(pops_index=5))
        >>> stats.pops
        10
    """

    #: pops from social-domain heaps (Dijkstra / A* / CH searches)
    pops_social: int = 0
    #: pops from spatial-domain heaps (incremental NN)
    pops_spatial: int = 0
    #: pops from the AIS aggregate-index heap
    pops_index: int = 0
    #: spatial/aggregate-index cells expanded (grid cells whose members
    #: were enumerated, AIS top/leaf nodes opened)
    cells_opened: int = 0
    #: users whose combined score was computed and offered to the
    #: interim result (the planner's work-volume proxy)
    candidates_scored: int = 0
    #: exact graph-distance computations performed
    evaluations: int = 0
    #: distance requests answered from forward-search/path caches
    cache_hits: int = 0
    #: AIS delayed-evaluation re-insertions (Section 5.3)
    reinsertions: int = 0
    #: wall-clock seconds for the query
    elapsed: float = 0.0
    #: free-form per-algorithm extras (e.g. 'fallback': 1 for AIS-Cache)
    extra: dict = field(default_factory=dict)

    @property
    def pops(self) -> int:
        """Total heap pops ``|V_pop|`` across all search structures."""
        return self.pops_social + self.pops_spatial + self.pops_index

    def pop_ratio(self, n_vertices: int) -> float:
        """The paper's pop ratio ``|V_pop| / |V|`` (may exceed 1)."""
        return self.pops / n_vertices if n_vertices else 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other`` into this object (used when one query
        internally runs another, e.g. the AIS-Cache fallback)."""
        self.pops_social += other.pops_social
        self.pops_spatial += other.pops_spatial
        self.pops_index += other.pops_index
        self.cells_opened += other.cells_opened
        self.candidates_scored += other.candidates_scored
        self.evaluations += other.evaluations
        self.cache_hits += other.cache_hits
        self.reinsertions += other.reinsertions
        self.elapsed += other.elapsed
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
