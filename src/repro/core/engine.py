"""Engine facade: one object owning the data, the indexes, and every
query algorithm of the paper.

    >>> from repro import GeoSocialEngine, gowalla_like
    >>> dataset = gowalla_like(n=2000, seed=7)
    >>> engine = GeoSocialEngine.from_dataset(dataset)
    >>> result = engine.query(user=8, k=10, alpha=0.3, method="ais")
    >>> [nb.user for nb in result]          # doctest: +SKIP

Methods (paper names):

================  ====================================================
``sfa``           Social First Approach (Section 4.1)
``spa``           Spatial First Approach (Section 4.1)
``tsa``           Twofold Search, landmark-aided (Section 4.2)
``tsa-plain``     Twofold Search without landmark pruning
``tsa-qc``        TSA with Quick Combine probing
``ais``           Aggregate Index Search, all optimisations (Section 5)
``ais-minus``     AIS without delayed evaluation (AIS− of Figure 10)
``ais-bid``       per-evaluation bidirectional search (AIS-BID)
``ais-nosummary`` ablation: AIS without social summaries
``sfa-ch`` / ``spa-ch`` / ``tsa-ch``  CH-backed distance module (Fig. 8)
``ais-cache``     pre-computed social lists + AIS fallback (Fig. 11)
``approx``        bounded-error sketch fast path (:mod:`repro.sketch`)
``bruteforce``    exact reference scan
``auto``          cost-based adaptive selection (:mod:`repro.plan`)
================  ====================================================

At the preference endpoints the engine routes degenerate requests the
way the definitions demand: ``alpha == 0`` is a pure spatial query
(SFA/TSA variants route to SPA) and ``alpha == 1`` a pure social one
(SPA/TSA variants route to SFA).  ``method="auto"`` resolves per query
through the engine's :class:`~repro.plan.AdaptivePlanner` — static
endpoint rules, cheap per-query features, and online cost feedback —
and returns the same ranking any fixed method would.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.backend import Kernels, resolve_backend
from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.bruteforce import BruteForceSearch
from repro.core.graphdist import CHOracle
from repro.core.precompute import CachedSocialFirst, SocialNeighborCache
from repro.core.ranking import Normalization
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.sfa import SocialFirstSearch
from repro.core.spa import SpatialFirstSearch
from repro.core.tsa import TwofoldSearch
from repro.graph.ch import ContractionHierarchy
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.index.aggregate import AggregateIndex
from repro.plan.rules import AUTO, route_method
from repro.sketch.index import SketchIndex
from repro.sketch.searcher import ApproxSketchSearch
from repro.social.cache import DEFAULT_SOCIAL_CACHE_BYTES, SocialColumnCache
from repro.spatial.grid import UniformGrid
from repro.spatial.point import LocationTable
from repro.utils.concurrency import ReadWriteLock
from repro.utils.validation import check_alpha, check_budget, check_k, check_user

if TYPE_CHECKING:
    from repro.plan.planner import AdaptivePlanner
    from repro.service.model import QueryRequest

__all__ = [
    "AUTO",
    "FORWARD_DETERMINISTIC_METHODS",
    "METHODS",
    "GeoSocialEngine",
    "route_method",
]

METHODS = (
    "sfa",
    "spa",
    "tsa",
    "tsa-plain",
    "tsa-qc",
    "ais",
    "ais-minus",
    "ais-bid",
    "ais-nosummary",
    "sfa-ch",
    "spa-ch",
    "tsa-ch",
    "ais-cache",
    "approx",
    "bruteforce",
)

#: methods whose per-neighbor social distances are forward-Dijkstra
#: values — deterministic functions of (graph, query, candidate),
#: independent of evaluation schedule and location state — so a stored
#: distance is bit-identical to what a fresh search would recompute.
#: The AIS family and the CH-backed methods evaluate bidirectionally
#: (float association may differ by 1 ulp between schedules).  The
#: update-stream layers (repair-aware result cache, subscription
#: registry) repair results in place only for these methods.
FORWARD_DETERMINISTIC_METHODS = frozenset(
    {"sfa", "spa", "tsa", "tsa-plain", "tsa-qc", "bruteforce"}
)

def _service_backed_query_many(
    engine,
    requests: "Iterable[int | QueryRequest]",
    k: int,
    alpha: float,
    method: str,
    t: int | None,
    max_workers: int | None,
    budget: float | None = None,
) -> list[SSRQResult]:
    """Shared implementation behind ``query_many`` on both engine kinds:
    a cache-disabled :class:`~repro.service.QueryService` per requested
    pool width, kept in ``engine._services`` under ``engine._build_lock``
    (never closed mid-flight: another thread may still be running a
    batch on an earlier width's pool)."""
    from repro.service.service import QueryService

    with engine._build_lock:
        service = engine._services.get(max_workers)
        if service is None:
            service = QueryService(engine, cache_size=0, max_workers=max_workers)
            engine._services[max_workers] = service
    responses = service.query_many(
        requests, k=k, alpha=alpha, method=method, t=t, budget=budget
    )
    return [response.result for response in responses]


def _close_cached_services(engine) -> None:
    """Shut down the ``query_many`` services cached on ``engine``."""
    with engine._build_lock:
        services, engine._services = list(engine._services.values()), {}
    for service in services:
        service.close()


# ``route_method`` (imported above) lives in :mod:`repro.plan.rules`
# now — the planner's static rule layer — and is re-exported here for
# backward compatibility: every dispatch path still consults the one
# table, so endpoint behavior is identical everywhere.


def resolve_dispatch(engine, user, k, alpha, method, t=None, budget=None):
    """``(resolved_method, decision)`` for one query — the single
    source of the resolution contract.  ``"auto"`` consults the
    engine's planner (``decision`` carries the feature bucket for the
    feedback loop); explicit methods validate against :data:`METHODS`
    and take the static endpoint routing (``decision is None``).  Both
    engine kinds and the service layer dispatch through this one
    function, so the contract cannot drift between paths.

    ``budget`` is the per-query accuracy budget: ``None``/``0`` means
    exactness required (``auto`` only considers
    :data:`FORWARD_DETERMINISTIC_METHODS` candidates), a positive value
    lets the planner offer ``"approx"`` when the sketch's empirical
    error estimate fits it.  An *explicit* ``method="approx"`` is an
    opt-in regardless of budget.
    """
    if method == AUTO:
        # Validate before feature extraction: an out-of-range user
        # must surface the engine's ValueError contract, not an
        # IndexError from the planner's degree/location lookups.
        check_user(user, engine.graph.n)
        decision = engine.planner.resolve(engine, user, k, alpha, method, t, budget=budget)
        return decision.method, decision
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    return route_method(method, alpha), None


class GeoSocialEngine:
    """Indexes a geo-social dataset and answers SSRQ queries.

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> result = engine.query(user=0, k=5, alpha=0.3, method="ais")
        >>> len(result.users)
        5
        >>> result.users == engine.query(0, 5, 0.3, method="bruteforce").users
        True

    Parameters
    ----------
    graph, locations:
        The social graph and the user location table.
    num_landmarks:
        ``M``; the paper fine-tunes it to 8.
    landmark_strategy:
        ``"farthest"`` (default), ``"random"`` or ``"degree"``.
    s:
        Grid fanout (Table 3 default 10): the aggregate index keeps an
        ``s x s`` top level over ``s² x s²`` leaves; SPA's single-level
        grid uses the leaf resolution.
    normalization:
        Optional pre-computed :class:`Normalization` (estimated from the
        data when omitted).
    default_t:
        Cached-neighbour list length for ``ais-cache`` (Figure 11's
        parameter ``t``), overridable per query.
    landmarks:
        Optional pre-built :class:`~repro.graph.landmarks.LandmarkIndex`
        over ``graph``; injected by the sharded engine so every shard
        shares one set of landmark tables instead of rebuilding them.
        When given, ``num_landmarks``/``landmark_strategy`` are ignored
        for construction (but ``landmark_strategy`` is still recorded
        for rebuilds).
    index_users:
        Optional user subset to index spatially.  When given, the SPA
        grid and the aggregate index cover only these users (a *member
        filter*) while the location table — typically shared — keeps
        answering distance lookups for everyone, including query users
        owned by other shards.  Member-filtered engines are managed by
        a sharding coordinator: :meth:`move_user` and
        :meth:`forget_location` raise, because membership routing must
        happen above the single shard.
    backend:
        Candidate-evaluation backend: ``"auto"`` (the default — NumPy
        when importable, honouring the ``REPRO_BACKEND`` environment
        variable), ``"numpy"``, ``"python"``, or a ready-made
        :class:`~repro.backend.base.Kernels` instance.  Resolved once
        at construction (see :func:`repro.backend.resolve_backend`) and
        propagated through :meth:`with_graph` rebuilds; both backends
        produce bit-identical rankings, tie-breaks included.
    planner:
        Optional pre-built :class:`~repro.plan.AdaptivePlanner`
        resolving ``method="auto"`` (built lazily with this engine's
        ``seed`` when omitted).  Carried across :meth:`with_graph`
        rebuilds, so learned per-bucket costs survive
        :meth:`~repro.service.QueryService.rebuild_engine`.
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        *,
        num_landmarks: int = 8,
        landmark_strategy: str = "farthest",
        s: int = 10,
        seed: int = 0,
        normalization: Normalization | None = None,
        default_t: int = 500,
        landmarks: LandmarkIndex | None = None,
        index_users: Iterable[int] | None = None,
        backend: "str | Kernels" = "auto",
        planner: "AdaptivePlanner | None" = None,
        grid: UniformGrid | None = None,
        aggregate: AggregateIndex | None = None,
        sketch: SketchIndex | None = None,
        social_cache_bytes: int | None = None,
        social_cache: "SocialColumnCache | None" = None,
    ) -> None:
        if len(locations) != graph.n:
            raise ValueError(
                f"location table covers {len(locations)} users but the graph "
                f"has {graph.n} vertices"
            )
        self.graph = graph
        self.locations = locations
        self.s = s
        self.default_t = default_t
        self.landmark_strategy = landmark_strategy
        self.seed = seed
        #: resolved batched-evaluation kernels (shared by every searcher)
        self.kernels: Kernels = resolve_backend(backend)
        #: resolved backend name ("numpy"/"python"), stable across rebuilds
        self.backend: str = self.kernels.name
        self.landmarks = (
            landmarks
            if landmarks is not None
            else LandmarkIndex.build(graph, num_landmarks, landmark_strategy, seed)
        )
        self.normalization = (
            normalization
            if normalization is not None
            else Normalization.estimate(graph, locations, seed=seed)
        )
        self.index_users: set[int] | None = (
            None if index_users is None else set(index_users)
        )
        members = None if self.index_users is None else sorted(self.index_users)
        # grid/aggregate injection is the warm-start path of
        # :mod:`repro.store`: restored indexes skip the insertion scan
        # (summaries are still recomputed exactly by AggregateIndex).
        self.grid = (
            grid if grid is not None else UniformGrid.build(locations, s * s, users=members)
        )
        self.aggregate = (
            aggregate
            if aggregate is not None
            else AggregateIndex.build(locations, self.landmarks, s, users=members)
        )
        #: the social-distance sketch behind ``method="approx"`` (built
        #: lazily on first approx query; injectable — the store's
        #: restore path adopts persisted sketch columns here)
        self._sketch: SketchIndex | None = sketch
        #: cross-query social-distance column cache consulted by the
        #: forward-deterministic searchers (:mod:`repro.social`).  Pure
        #: function of the (immutable-per-engine) graph, so location
        #: moves never invalidate it and ``with_graph`` rebuilds start
        #: fresh by construction.  ``social_cache_bytes=0`` disables;
        #: ``social_cache=`` injects a shared instance (the sharded
        #: engine hands one cache to every shard).
        if social_cache is not None:
            self.social_cache: "SocialColumnCache | None" = social_cache
        else:
            budget = (
                DEFAULT_SOCIAL_CACHE_BYTES
                if social_cache_bytes is None
                else social_cache_bytes
            )
            self.social_cache = (
                SocialColumnCache(graph.n, self.kernels, max_bytes=budget)
                if budget > 0
                else None
            )
        self._searchers: dict[str, object] = {}
        #: the ``method="auto"`` resolver (lazily built on first use;
        #: injectable for custom candidate sets / exploration rates,
        #: and carried across ``with_graph`` rebuilds so learned costs
        #: survive ``rebuild_engine``)
        self._planner: "AdaptivePlanner | None" = planner
        self._ch: ContractionHierarchy | None = None
        self._ch_oracle: CHOracle | None = None
        self._caches: dict[int, SocialNeighborCache] = {}
        # Re-entrancy: queries are read-only (audited — every searcher
        # keeps per-query state in locals; CHOracle's memo is
        # thread-local; SocialNeighborCache fills under its own lock),
        # so concurrent `query` calls are safe once the searcher
        # exists.  The build lock serialises the *lazy construction* of
        # searchers/indexes so two threads never build the same
        # component twice or observe a half-built one.
        self._build_lock = threading.RLock()
        #: serialises index mutation (move_user/forget_location and the
        #: service layer's edge updates) against concurrent queries —
        #: one lock per engine, shared by every QueryService over it
        self.rw_lock = ReadWriteLock()
        self._location_listeners: list[Callable[[int, float | None, float | None], None]] = []
        # lazily-built default QueryServices for query_many, one per
        # requested pool width (never closed mid-flight: another thread
        # may still be running a batch on an earlier width's pool)
        self._services: dict[int | None, object] = {}

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "GeoSocialEngine":
        """Build from any object exposing ``.graph`` and ``.locations``
        (e.g. :class:`repro.datasets.GeoSocialDataset`)."""
        return cls(dataset.graph, dataset.locations, **kwargs)

    # -- heavyweight lazily-built components ------------------------------

    @property
    def contraction_hierarchy(self) -> ContractionHierarchy:
        """The CH preprocessing (built on first use; required only by
        the ``*-ch`` methods)."""
        if self._ch is None:
            with self._build_lock:
                if self._ch is None:
                    self._ch = ContractionHierarchy.build(self.graph)
        return self._ch

    def _oracle(self) -> CHOracle:
        if self._ch_oracle is None:
            with self._build_lock:
                if self._ch_oracle is None:
                    self._ch_oracle = CHOracle(self.contraction_hierarchy)
        return self._ch_oracle

    @property
    def sketch(self) -> SketchIndex:
        """The social-distance sketch (built on first use; required only
        by ``method="approx"`` and the planner's budget gate)."""
        if self._sketch is None:
            with self._build_lock:
                if self._sketch is None:
                    self._sketch = SketchIndex.build(
                        self.graph, self.landmarks, seed=self.seed, kernels=self.kernels
                    )
        return self._sketch

    def neighbor_cache(self, t: int) -> SocialNeighborCache:
        """The ``t``-nearest social neighbour cache (Figure 11)."""
        cache = self._caches.get(t)
        if cache is None:
            with self._build_lock:
                cache = self._caches.get(t)
                if cache is None:
                    cache = SocialNeighborCache(self.graph, t)
                    self._caches[t] = cache
        return cache

    # -- query dispatch -----------------------------------------------------

    @property
    def planner(self) -> "AdaptivePlanner":
        """The ``method="auto"`` resolver (built on first use; assign a
        custom :class:`~repro.plan.AdaptivePlanner` to tune candidates,
        exploration, or calibration)."""
        if self._planner is None:
            from repro.plan.planner import AdaptivePlanner

            with self._build_lock:
                if self._planner is None:
                    self._planner = AdaptivePlanner(seed=self.seed)
        return self._planner

    @planner.setter
    def planner(self, planner: "AdaptivePlanner") -> None:
        self._planner = planner

    def resolve_method(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = AUTO,
        t: int | None = None,
        budget: float | None = None,
    ) -> str:
        """The concrete method one query dispatches to: static endpoint
        routing for explicit methods, the adaptive planner for
        ``"auto"`` (which may resolve to ``"approx"`` only when
        ``budget`` admits it).  The service layer keys its result cache
        on this resolution, and the stream layer classifies
        repairability off it — so screening and repairs always see the
        method that actually ran."""
        return resolve_dispatch(self, user, k, alpha, method, t, budget=budget)[0]

    def searcher(self, method: str, t: int | None = None):
        """The query-processor object behind ``method`` (cached)."""
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
        if method == "ais-cache":
            t = t if t is not None else self.default_t
            key = f"ais-cache:{t}"
            searcher = self._searchers.get(key)
            if searcher is None:
                with self._build_lock:
                    searcher = self._searchers.get(key)
                    if searcher is None:
                        searcher = CachedSocialFirst(
                            self.graph,
                            self.locations,
                            self.normalization,
                            self.neighbor_cache(t),
                            self._make_ais(AISVariant.full()),
                        )
                        self._searchers[key] = searcher
            return searcher
        searcher = self._searchers.get(method)
        if searcher is None:
            with self._build_lock:
                searcher = self._searchers.get(method)
                if searcher is None:
                    searcher = self._build_searcher(method)
                    self._searchers[method] = searcher
        return searcher

    def _make_ais(self, variant: AISVariant) -> AggregateIndexSearch:
        return AggregateIndexSearch(
            self.graph,
            self.locations,
            self.landmarks,
            self.aggregate,
            self.normalization,
            variant,
            kernels=self.kernels,
        )

    def _build_searcher(self, method: str):
        graph, locations, norm = self.graph, self.locations, self.normalization
        kernels = self.kernels
        # Only the forward-deterministic methods consult the column
        # cache: their per-neighbor social distances are forward-
        # Dijkstra exact, so a cached column is interchangeable with
        # their own expansion.  The bidirectional families (AIS, *-ch)
        # stay out — their evaluation distances come from schedule-
        # dependent meeting points, not the forward column.
        columns = self.social_cache
        if method == "sfa":
            return SocialFirstSearch(
                graph, locations, norm, column_source=columns, kernels=kernels
            )
        if method == "spa":
            return SpatialFirstSearch(
                graph, locations, self.grid, norm, kernels=kernels, column_source=columns
            )
        if method == "tsa":
            return TwofoldSearch(
                graph, locations, self.grid, norm, landmarks=self.landmarks,
                kernels=kernels, column_source=columns,
            )
        if method == "tsa-plain":
            return TwofoldSearch(
                graph, locations, self.grid, norm, landmarks=None,
                kernels=kernels, column_source=columns,
            )
        if method == "tsa-qc":
            return TwofoldSearch(
                graph, locations, self.grid, norm,
                landmarks=self.landmarks, probe_policy="quick-combine",
                kernels=kernels, column_source=columns,
            )
        if method == "ais":
            return self._make_ais(AISVariant.full())
        if method == "ais-minus":
            return self._make_ais(AISVariant.minus())
        if method == "ais-bid":
            return self._make_ais(AISVariant.bid())
        if method == "ais-nosummary":
            return self._make_ais(AISVariant.no_summaries())
        if method == "sfa-ch":
            return SocialFirstSearch(graph, locations, norm, point_to_point=self._oracle())
        if method == "spa-ch":
            return SpatialFirstSearch(
                graph, locations, self.grid, norm, point_to_point=self._oracle(), kernels=kernels
            )
        if method == "tsa-ch":
            return TwofoldSearch(
                graph, locations, self.grid, norm,
                landmarks=self.landmarks, point_to_point=self._oracle(), kernels=kernels,
            )
        if method == "approx":
            return ApproxSketchSearch(graph, locations, norm, self.sketch, kernels=kernels)
        if method == "bruteforce":
            return BruteForceSearch(
                graph, locations, norm, kernels=kernels, column_source=columns
            )
        raise AssertionError(f"unhandled method {method!r}")

    def query(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        *,
        budget: float | None = None,
        initial: "TopKBuffer | None" = None,
    ) -> SSRQResult:
        """Answer one SSRQ: the top-``k`` users by
        ``f = α·p/P_max + (1−α)·d/D_max`` around ``user``.

        ``initial`` warm-starts the search's interim result with
        already fully-evaluated users (the buffer is mutated and folded
        into the answer) — the threshold-propagation hook the sharded
        engine uses so later shards inherit a tight ``f_k`` and can
        terminate after a bound check.

        ``method="auto"`` resolves to a concrete method through the
        cost-based adaptive planner (:mod:`repro.plan`) and feeds the
        measured wall time back to it; the result is identical to any
        fixed method's (all of them implement Definition 1 with the
        shared tie-break).  The executed method is recorded on
        ``result.method`` either way.

        ``budget`` (default ``None``: exact) caps the acceptable score
        error of an ``auto`` resolution: with a positive budget the
        planner may pick ``method="approx"``, whose certified error
        bound lands on ``result.error_bound``.  ``budget=0`` or unset
        keeps ``auto`` bit-identical to the exact families.
        """
        check_user(user, self.graph.n)
        check_k(k)
        check_alpha(alpha)
        check_budget(budget)
        resolved, decision = resolve_dispatch(self, user, k, alpha, method, t, budget=budget)
        if initial is not None:
            result = self.searcher(resolved, t=t).search(user, k, alpha, initial=initial)
        else:
            result = self.searcher(resolved, t=t).search(user, k, alpha)
        result.method = resolved
        if decision is not None:
            self.planner.observe(decision, result.stats.elapsed)
        return result

    def batch_query(
        self,
        users: Iterable[int],
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> list[SSRQResult]:
        """Deprecated alias of :meth:`query_many`.

        .. deprecated:: 1.2
            ``batch_query`` and ``query_many`` historically drifted:
            the former was a bare sequential loop, the latter the
            service-backed batch API.  :meth:`query_many` is the single
            batch entry point now (service-backed: deduplication,
            request ordering, optional concurrency); this alias
            delegates to it with an inline single-worker execution, so
            results are identical to the old sequential loop — and to
            ``query_many`` itself, whose rankings match a sequential
            ``query`` loop by contract.
        """
        warnings.warn(
            "GeoSocialEngine.batch_query is deprecated; use query_many, "
            "the service-backed batch API (identical results)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_many(users, k=k, alpha=alpha, method=method, t=t, max_workers=1)

    def query_many(
        self,
        requests: "Iterable[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        max_workers: int | None = None,
        budget: float | None = None,
    ) -> list[SSRQResult]:
        """Answer a heterogeneous batch of SSRQs concurrently.

        Delegates to the service layer (:class:`repro.service.QueryService`)
        with result caching *disabled*: pure batch execution over a
        worker pool, with results returned in request order and rankings
        identical to a sequential :meth:`query` loop.  ``requests`` may
        mix plain user ids (which take the keyword defaults) and
        :class:`~repro.service.QueryRequest` objects carrying their own
        ``k``/``alpha``/``method``.  For caching, update-aware
        invalidation, and statistics, instantiate a
        :class:`~repro.service.QueryService` directly.

        Backing services (and their worker pools) are cached per
        requested ``max_workers`` width, so concurrent callers with
        different widths never tear down each other's pools.
        """
        return _service_backed_query_many(
            self, requests, k, alpha, method, t, max_workers, budget=budget
        )

    def close(self) -> None:
        """Release pooled resources (the worker pools behind cached
        :meth:`query_many` services).  Queries keep working — the pools
        are rebuilt lazily on the next :meth:`query_many` — so closing
        a swapped-out engine after
        :meth:`~repro.service.QueryService.rebuild_engine` is safe."""
        _close_cached_services(self)

    # -- dynamic locations -----------------------------------------------

    def add_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Subscribe ``listener(user, x, y)`` to every location update
        applied through this engine (``x is None`` signals a forgotten
        location).  Used by the service layer's result cache for
        update-aware invalidation."""
        self._location_listeners.append(listener)

    def remove_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Unsubscribe a previously added location listener (no-op if
        absent)."""
        try:
            self._location_listeners.remove(listener)
        except ValueError:
            pass

    def move_user(self, user: int, x: float, y: float) -> None:
        """Process a location update: refresh the location table, SPA's
        grid, and the aggregate index (with summary maintenance).

        Takes :attr:`rw_lock`'s exclusive side, so the mutation is
        serialised against every query flowing through the service
        layer (direct concurrent :meth:`query` calls that bypass the
        lock remain unsafe).
        """
        check_user(user, self.graph.n)
        self._check_unfiltered("move_user")
        with self.rw_lock.write_locked():
            had_location = self.locations.has_location(user)
            self.locations.set(user, x, y)
            if had_location:
                self._index_move(user, x, y)
            else:
                self._index_insert(user, x, y)
            # Snapshot: a listener may detach itself (or a sibling)
            # from another thread without this write lock; mutating the
            # live list mid-iteration could silently skip a listener.
            for listener in list(self._location_listeners):
                listener(user, x, y)

    def forget_location(self, user: int) -> None:
        """Mark a user's location as unknown and de-index them
        (exclusively, like :meth:`move_user`)."""
        check_user(user, self.graph.n)
        self._check_unfiltered("forget_location")
        with self.rw_lock.write_locked():
            if not self.locations.has_location(user):
                return
            self.locations.clear(user)
            self._index_remove(user)
            for listener in list(self._location_listeners):
                listener(user, None, None)

    def _check_unfiltered(self, op: str) -> None:
        if self.index_users is not None:
            raise RuntimeError(
                f"{op} on a member-filtered engine: shard membership is "
                "routed above the single shard — apply updates through "
                "the owning ShardedGeoSocialEngine"
            )

    # -- index maintenance primitives (the sharding coordinator drives
    #    these directly, under *its* write lock, because a boundary
    #    crossing touches two shards' indexes while the shared location
    #    table must be written exactly once) ----------------------------

    def _index_insert(self, user: int, x: float, y: float) -> None:
        """Add ``user`` (already written to the location table) to the
        spatial indexes; tracks membership on filtered engines."""
        self.grid.insert(user, x, y)
        self.aggregate.insert_user(user, x, y)
        if self.index_users is not None:
            self.index_users.add(user)

    def _index_remove(self, user: int) -> None:
        """De-index ``user`` from the grid and the aggregate index."""
        self.grid.remove(user)
        self.aggregate.remove_user(user)
        if self.index_users is not None:
            self.index_users.discard(user)

    def _index_move(self, user: int, x: float, y: float) -> None:
        """Relocate an indexed ``user`` within this engine's indexes."""
        self.grid.move(user, x, y)
        self.aggregate.move_user(user, x, y)

    # -- rebuild ----------------------------------------------------------

    def with_graph(self, graph: SocialGraph, **overrides) -> "GeoSocialEngine":
        """A fresh engine of the same kind over ``graph``, reusing this
        engine's parameters (and location table) unless overridden.

        The service layer's :meth:`~repro.service.QueryService.rebuild_engine`
        calls this to fold batched edge updates into a new engine while
        preserving the engine kind — the sharded engine overrides it to
        re-shard.  Landmarks are rebuilt (the graph changed), the
        normalization is kept (a shared constant preserves rankings).
        """
        kwargs = dict(
            num_landmarks=self.landmarks.m,
            landmark_strategy=self.landmark_strategy,
            s=self.s,
            seed=self.seed,
            normalization=self.normalization,
            default_t=self.default_t,
            # the resolved Kernels instance, not the name: a
            # user-supplied custom backend survives the rebuild too
            backend=self.kernels,
            # the live planner instance: learned per-bucket costs keep
            # steering method="auto" across the rebuild
            planner=self._planner,
            # only the byte budget crosses the rebuild, never the cache
            # instance: the new engine's columns come from the new graph,
            # so the edge-epoch boundary is structural
            social_cache_bytes=(
                self.social_cache.max_bytes if self.social_cache is not None else 0
            ),
        )
        kwargs.update(overrides)
        return type(self)(graph, self.locations, **kwargs)

    # -- persistence -------------------------------------------------------

    def save(self, path) -> "Path":
        """Write a crash-consistent columnar snapshot of this engine to
        directory ``path`` (see :mod:`repro.store`): the columns land in
        a temp sibling first, the manifest is the commit point, and the
        final atomic rename makes the snapshot visible all-or-nothing.
        Returns the snapshot directory.

        Takes the engine's shared read lock, so the image is a
        consistent cut with respect to concurrent location updates.
        """
        from repro.store import save_engine

        with self.rw_lock.read_locked():
            return save_engine(self, path)

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True) -> "GeoSocialEngine":
        """Warm-start an engine from a snapshot directory written by
        :meth:`save` — O(read) instead of O(rebuild): no Dijkstra
        sweeps, no index insertion scans.  With ``mmap=True`` the
        coordinate columns and the landmark matrix are memory-mapped
        copy-on-write, so load cost is page-cache reads and mutation
        stays private to this process."""
        from repro.store import load_engine

        engine = load_engine(path, mmap=mmap, verify=verify)
        if not isinstance(engine, cls):
            raise TypeError(
                f"snapshot at {path} holds a {type(engine).__name__}, "
                f"not a {cls.__name__}; use that class's load()"
            )
        return engine

    # -- introspection ----------------------------------------------------

    def located_users(self) -> Sequence[int]:
        return list(self.locations.located_users())

    def __repr__(self) -> str:
        return (
            f"GeoSocialEngine(n={self.graph.n}, edges={self.graph.num_edges}, "
            f"located={self.locations.n_located}, M={self.landmarks.m}, s={self.s}, "
            f"backend={self.backend!r})"
        )
