"""Engine facade: one object owning the data, the indexes, and every
query algorithm of the paper.

    >>> from repro import GeoSocialEngine, gowalla_like
    >>> dataset = gowalla_like(n=2000, seed=7)
    >>> engine = GeoSocialEngine.from_dataset(dataset)
    >>> result = engine.query(user=8, k=10, alpha=0.3, method="ais")
    >>> [nb.user for nb in result]          # doctest: +SKIP

Methods (paper names):

================  ====================================================
``sfa``           Social First Approach (Section 4.1)
``spa``           Spatial First Approach (Section 4.1)
``tsa``           Twofold Search, landmark-aided (Section 4.2)
``tsa-plain``     Twofold Search without landmark pruning
``tsa-qc``        TSA with Quick Combine probing
``ais``           Aggregate Index Search, all optimisations (Section 5)
``ais-minus``     AIS without delayed evaluation (AIS− of Figure 10)
``ais-bid``       per-evaluation bidirectional search (AIS-BID)
``ais-nosummary`` ablation: AIS without social summaries
``sfa-ch`` / ``spa-ch`` / ``tsa-ch``  CH-backed distance module (Fig. 8)
``ais-cache``     pre-computed social lists + AIS fallback (Fig. 11)
``bruteforce``    exact reference scan
================  ====================================================

At the preference endpoints the engine routes degenerate requests the
way the definitions demand: ``alpha == 0`` is a pure spatial query
(SFA/TSA variants route to SPA) and ``alpha == 1`` a pure social one
(SPA/TSA variants route to SFA).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.bruteforce import BruteForceSearch
from repro.core.graphdist import CHOracle
from repro.core.precompute import CachedSocialFirst, SocialNeighborCache
from repro.core.ranking import Normalization
from repro.core.result import SSRQResult
from repro.core.sfa import SocialFirstSearch
from repro.core.spa import SpatialFirstSearch
from repro.core.tsa import TwofoldSearch
from repro.graph.ch import ContractionHierarchy
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.index.aggregate import AggregateIndex
from repro.spatial.grid import UniformGrid
from repro.spatial.point import LocationTable
from repro.utils.concurrency import ReadWriteLock
from repro.utils.validation import check_alpha, check_user

if TYPE_CHECKING:
    from repro.service.model import QueryRequest

METHODS = (
    "sfa",
    "spa",
    "tsa",
    "tsa-plain",
    "tsa-qc",
    "ais",
    "ais-minus",
    "ais-bid",
    "ais-nosummary",
    "sfa-ch",
    "spa-ch",
    "tsa-ch",
    "ais-cache",
    "bruteforce",
)

_ALPHA0_ROUTE = {"sfa": "spa", "tsa": "spa", "tsa-plain": "spa", "tsa-qc": "spa", "sfa-ch": "spa-ch", "tsa-ch": "spa-ch", "ais-cache": "spa"}
# At alpha == 1 the spatial index is useless *and insufficient*: users
# without a location are legitimate pure-social answers but are absent
# from the grid/aggregate index, so every index-based method routes to
# SFA (whose Dijkstra stream reaches them all).
_ALPHA1_ROUTE = {
    "spa": "sfa",
    "tsa": "sfa",
    "tsa-plain": "sfa",
    "tsa-qc": "sfa",
    "spa-ch": "sfa-ch",
    "tsa-ch": "sfa-ch",
    "ais": "sfa",
    "ais-minus": "sfa",
    "ais-bid": "sfa",
    "ais-nosummary": "sfa",
    "ais-cache": "sfa",
}


class GeoSocialEngine:
    """Indexes a geo-social dataset and answers SSRQ queries.

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> result = engine.query(user=0, k=5, alpha=0.3, method="ais")
        >>> len(result.users)
        5
        >>> result.users == engine.query(0, 5, 0.3, method="bruteforce").users
        True

    Parameters
    ----------
    graph, locations:
        The social graph and the user location table.
    num_landmarks:
        ``M``; the paper fine-tunes it to 8.
    landmark_strategy:
        ``"farthest"`` (default), ``"random"`` or ``"degree"``.
    s:
        Grid fanout (Table 3 default 10): the aggregate index keeps an
        ``s x s`` top level over ``s² x s²`` leaves; SPA's single-level
        grid uses the leaf resolution.
    normalization:
        Optional pre-computed :class:`Normalization` (estimated from the
        data when omitted).
    default_t:
        Cached-neighbour list length for ``ais-cache`` (Figure 11's
        parameter ``t``), overridable per query.
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        *,
        num_landmarks: int = 8,
        landmark_strategy: str = "farthest",
        s: int = 10,
        seed: int = 0,
        normalization: Normalization | None = None,
        default_t: int = 500,
    ) -> None:
        if len(locations) != graph.n:
            raise ValueError(
                f"location table covers {len(locations)} users but the graph "
                f"has {graph.n} vertices"
            )
        self.graph = graph
        self.locations = locations
        self.s = s
        self.default_t = default_t
        self.landmark_strategy = landmark_strategy
        self.seed = seed
        self.landmarks = LandmarkIndex.build(graph, num_landmarks, landmark_strategy, seed)
        self.normalization = (
            normalization
            if normalization is not None
            else Normalization.estimate(graph, locations, seed=seed)
        )
        self.grid = UniformGrid.build(locations, s * s)
        self.aggregate = AggregateIndex.build(locations, self.landmarks, s)
        self._searchers: dict[str, object] = {}
        self._ch: ContractionHierarchy | None = None
        self._ch_oracle: CHOracle | None = None
        self._caches: dict[int, SocialNeighborCache] = {}
        # Re-entrancy: queries are read-only (audited — every searcher
        # keeps per-query state in locals; CHOracle's memo is
        # thread-local; SocialNeighborCache fills under its own lock),
        # so concurrent `query` calls are safe once the searcher
        # exists.  The build lock serialises the *lazy construction* of
        # searchers/indexes so two threads never build the same
        # component twice or observe a half-built one.
        self._build_lock = threading.RLock()
        #: serialises index mutation (move_user/forget_location and the
        #: service layer's edge updates) against concurrent queries —
        #: one lock per engine, shared by every QueryService over it
        self.rw_lock = ReadWriteLock()
        self._location_listeners: list[Callable[[int, float | None, float | None], None]] = []
        # lazily-built default QueryServices for query_many, one per
        # requested pool width (never closed mid-flight: another thread
        # may still be running a batch on an earlier width's pool)
        self._services: dict[int | None, object] = {}

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "GeoSocialEngine":
        """Build from any object exposing ``.graph`` and ``.locations``
        (e.g. :class:`repro.datasets.GeoSocialDataset`)."""
        return cls(dataset.graph, dataset.locations, **kwargs)

    # -- heavyweight lazily-built components ------------------------------

    @property
    def contraction_hierarchy(self) -> ContractionHierarchy:
        """The CH preprocessing (built on first use; required only by
        the ``*-ch`` methods)."""
        if self._ch is None:
            with self._build_lock:
                if self._ch is None:
                    self._ch = ContractionHierarchy.build(self.graph)
        return self._ch

    def _oracle(self) -> CHOracle:
        if self._ch_oracle is None:
            with self._build_lock:
                if self._ch_oracle is None:
                    self._ch_oracle = CHOracle(self.contraction_hierarchy)
        return self._ch_oracle

    def neighbor_cache(self, t: int) -> SocialNeighborCache:
        """The ``t``-nearest social neighbour cache (Figure 11)."""
        cache = self._caches.get(t)
        if cache is None:
            with self._build_lock:
                cache = self._caches.get(t)
                if cache is None:
                    cache = SocialNeighborCache(self.graph, t)
                    self._caches[t] = cache
        return cache

    # -- query dispatch -----------------------------------------------------

    def searcher(self, method: str, t: int | None = None):
        """The query-processor object behind ``method`` (cached)."""
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
        if method == "ais-cache":
            t = t if t is not None else self.default_t
            key = f"ais-cache:{t}"
            searcher = self._searchers.get(key)
            if searcher is None:
                with self._build_lock:
                    searcher = self._searchers.get(key)
                    if searcher is None:
                        searcher = CachedSocialFirst(
                            self.graph,
                            self.locations,
                            self.normalization,
                            self.neighbor_cache(t),
                            self._make_ais(AISVariant.full()),
                        )
                        self._searchers[key] = searcher
            return searcher
        searcher = self._searchers.get(method)
        if searcher is None:
            with self._build_lock:
                searcher = self._searchers.get(method)
                if searcher is None:
                    searcher = self._build_searcher(method)
                    self._searchers[method] = searcher
        return searcher

    def _make_ais(self, variant: AISVariant) -> AggregateIndexSearch:
        return AggregateIndexSearch(
            self.graph,
            self.locations,
            self.landmarks,
            self.aggregate,
            self.normalization,
            variant,
        )

    def _build_searcher(self, method: str):
        graph, locations, norm = self.graph, self.locations, self.normalization
        if method == "sfa":
            return SocialFirstSearch(graph, locations, norm)
        if method == "spa":
            return SpatialFirstSearch(graph, locations, self.grid, norm)
        if method == "tsa":
            return TwofoldSearch(graph, locations, self.grid, norm, landmarks=self.landmarks)
        if method == "tsa-plain":
            return TwofoldSearch(graph, locations, self.grid, norm, landmarks=None)
        if method == "tsa-qc":
            return TwofoldSearch(
                graph, locations, self.grid, norm,
                landmarks=self.landmarks, probe_policy="quick-combine",
            )
        if method == "ais":
            return self._make_ais(AISVariant.full())
        if method == "ais-minus":
            return self._make_ais(AISVariant.minus())
        if method == "ais-bid":
            return self._make_ais(AISVariant.bid())
        if method == "ais-nosummary":
            return self._make_ais(AISVariant.no_summaries())
        if method == "sfa-ch":
            return SocialFirstSearch(graph, locations, norm, point_to_point=self._oracle())
        if method == "spa-ch":
            return SpatialFirstSearch(graph, locations, self.grid, norm, point_to_point=self._oracle())
        if method == "tsa-ch":
            return TwofoldSearch(
                graph, locations, self.grid, norm,
                landmarks=self.landmarks, point_to_point=self._oracle(),
            )
        if method == "bruteforce":
            return BruteForceSearch(graph, locations, norm)
        raise AssertionError(f"unhandled method {method!r}")

    def query(
        self,
        user: int,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> SSRQResult:
        """Answer one SSRQ: the top-``k`` users by
        ``f = α·p/P_max + (1−α)·d/D_max`` around ``user``."""
        check_user(user, self.graph.n)
        check_alpha(alpha)
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
        if alpha == 0.0:
            method = _ALPHA0_ROUTE.get(method, method)
        elif alpha == 1.0:
            method = _ALPHA1_ROUTE.get(method, method)
        return self.searcher(method, t=t).search(user, k, alpha)

    def batch_query(
        self,
        users: Iterable[int],
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
    ) -> list[SSRQResult]:
        """Run the same query for several users (benchmark workloads)."""
        return [self.query(u, k, alpha, method, t=t) for u in users]

    def query_many(
        self,
        requests: "Iterable[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        max_workers: int | None = None,
    ) -> list[SSRQResult]:
        """Answer a heterogeneous batch of SSRQs concurrently.

        Delegates to the service layer (:class:`repro.service.QueryService`)
        with result caching *disabled*: pure batch execution over a
        worker pool, with results returned in request order and rankings
        identical to a sequential :meth:`query` loop.  ``requests`` may
        mix plain user ids (which take the keyword defaults) and
        :class:`~repro.service.QueryRequest` objects carrying their own
        ``k``/``alpha``/``method``.  For caching, update-aware
        invalidation, and statistics, instantiate a
        :class:`~repro.service.QueryService` directly.

        Backing services (and their worker pools) are cached per
        requested ``max_workers`` width, so concurrent callers with
        different widths never tear down each other's pools.
        """
        from repro.service.service import QueryService

        with self._build_lock:
            service = self._services.get(max_workers)
            if service is None:
                service = QueryService(self, cache_size=0, max_workers=max_workers)
                self._services[max_workers] = service
        responses = service.query_many(requests, k=k, alpha=alpha, method=method, t=t)
        return [response.result for response in responses]

    # -- dynamic locations -----------------------------------------------

    def add_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Subscribe ``listener(user, x, y)`` to every location update
        applied through this engine (``x is None`` signals a forgotten
        location).  Used by the service layer's result cache for
        update-aware invalidation."""
        self._location_listeners.append(listener)

    def remove_location_listener(
        self, listener: Callable[[int, float | None, float | None], None]
    ) -> None:
        """Unsubscribe a previously added location listener (no-op if
        absent)."""
        try:
            self._location_listeners.remove(listener)
        except ValueError:
            pass

    def move_user(self, user: int, x: float, y: float) -> None:
        """Process a location update: refresh the location table, SPA's
        grid, and the aggregate index (with summary maintenance).

        Takes :attr:`rw_lock`'s exclusive side, so the mutation is
        serialised against every query flowing through the service
        layer (direct concurrent :meth:`query` calls that bypass the
        lock remain unsafe).
        """
        check_user(user, self.graph.n)
        with self.rw_lock.write_locked():
            had_location = self.locations.has_location(user)
            self.locations.set(user, x, y)
            if had_location:
                self.grid.move(user, x, y)
                self.aggregate.move_user(user, x, y)
            else:
                self.grid.insert(user, x, y)
                self.aggregate.insert_user(user, x, y)
            for listener in self._location_listeners:
                listener(user, x, y)

    def forget_location(self, user: int) -> None:
        """Mark a user's location as unknown and de-index them
        (exclusively, like :meth:`move_user`)."""
        check_user(user, self.graph.n)
        with self.rw_lock.write_locked():
            if not self.locations.has_location(user):
                return
            self.locations.clear(user)
            self.grid.remove(user)
            self.aggregate.remove_user(user)
            for listener in self._location_listeners:
                listener(user, None, None)

    # -- introspection ----------------------------------------------------

    def located_users(self) -> Sequence[int]:
        return list(self.locations.located_users())

    def __repr__(self) -> str:
        return (
            f"GeoSocialEngine(n={self.graph.n}, edges={self.graph.num_edges}, "
            f"located={self.locations.n_located}, M={self.landmarks.m}, s={self.s})"
        )
