"""Result containers: neighbours, the bounded top-k buffer, and the
query result object.

Every algorithm maintains the paper's interim result ``R`` as a
:class:`TopKBuffer`: a bounded max-heap keyed by ``(f, user)`` whose
head is the *worst* current member, so ``f_k`` (the paper's threshold)
is an O(1) read and insert-with-evict is O(log k).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.stats import SearchStats

INF = math.inf


@dataclass(frozen=True)
class Neighbor:
    """One ranked user.

    ``social``/``spatial`` are the *raw* (unnormalised) distances that
    produced ``score``; ``inf`` marks a distance that is unknown or
    irrelevant at the query's ``α`` (e.g. the social distance under
    ``α = 0`` is never computed).

        >>> from repro import Neighbor
        >>> nb = Neighbor(user=9, score=0.25, social=1.0, spatial=0.1)
        >>> nb.user, nb.score
        (9, 0.25)
    """

    user: int
    score: float
    social: float
    spatial: float


class TopKBuffer:
    """Interim top-k result ``R`` with threshold ``f_k``.

    Only finite scores are admitted: a user at infinite combined
    distance can never be a meaningful SSRQ answer (paper Section 6,
    footnote 3), and rejecting them keeps all algorithms' outputs
    identical in the presence of unreachable/unlocated users.

    Ties on ``score`` are broken toward smaller user ids, making results
    deterministic across algorithms.

        >>> from repro import TopKBuffer
        >>> buf = TopKBuffer(2)
        >>> for user, score in ((3, 0.5), (1, 0.2), (2, 0.4)):
        ...     _ = buf.offer(user, score, score, score)
        >>> [nb.user for nb in buf.neighbors()], buf.fk
        ([1, 2], 0.4)
    """

    __slots__ = ("k", "_heap", "_users")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # max-heap via negated keys: head is the worst (score, user)
        self._heap: list[tuple[float, int, Neighbor]] = []
        self._users: set[int] = set()

    @property
    def fk(self) -> float:
        """The paper's ``f_k``: the k-th best score so far, ``inf``
        while fewer than ``k`` users are buffered."""
        if len(self._heap) < self.k:
            return INF
        return -self._heap[0][0]

    def offer(self, user: int, score: float, social: float, spatial: float) -> bool:
        """Insert if the entry beats the current threshold.

        A user's score is a deterministic function of the query, so a
        re-offered user (e.g. found by a cache scan and again by the
        warm-started index search) is simply ignored.

        Returns ``True`` if the buffer changed.
        """
        if score == INF or score != score:
            return False
        if user in self._users:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-score, -user, Neighbor(user, score, social, spatial)))
            self._users.add(user)
            return True
        worst_score, worst_neg_user, evicted = self._heap[0]
        if (-score, -user) <= (worst_score, worst_neg_user):
            return False
        heapq.heapreplace(self._heap, (-score, -user, Neighbor(user, score, social, spatial)))
        self._users.discard(evicted.user)
        self._users.add(user)
        return True

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, user: int) -> bool:
        return user in self._users

    def copy(self) -> "TopKBuffer":
        """An independent buffer with the same entries (used to
        warm-start one search per shard from a shared interim result —
        searches mutate their buffer, so each needs its own)."""
        clone = TopKBuffer(self.k)
        clone._heap = list(self._heap)
        clone._users = set(self._users)
        return clone

    def neighbors(self) -> list[Neighbor]:
        """Buffered entries, best first (ties toward smaller id)."""
        return sorted((e[2] for e in self._heap), key=lambda nb: (nb.score, nb.user))


@dataclass
class SSRQResult:
    """Outcome of one SSRQ query.

        >>> from repro import Neighbor, SSRQResult
        >>> result = SSRQResult(query_user=0, k=2, alpha=0.5,
        ...                     neighbors=[Neighbor(9, 0.25, 1.0, 0.1)])
        >>> result.users, result.fk, len(result)
        ([9], 0.25, 1)
    """

    query_user: int
    k: int
    alpha: float
    neighbors: list[Neighbor]
    stats: SearchStats = field(default_factory=SearchStats)
    #: the concrete method that produced this result — set by the
    #: engine dispatch layers (``None`` when a searcher is driven
    #: directly); for ``method="auto"`` requests this is the planner's
    #: per-query resolution
    method: str | None = None
    #: certified score-error bound of an approximate result: every
    #: reported neighbour's true ``f`` is within this distance of its
    #: reported score.  ``None`` for exact methods (no error, no bound);
    #: ``0.0`` is a *certified-exact* approx answer.
    error_bound: float | None = None

    @property
    def users(self) -> list[int]:
        return [nb.user for nb in self.neighbors]

    @property
    def scores(self) -> list[float]:
        return [nb.score for nb in self.neighbors]

    @property
    def fk(self) -> float:
        """Worst reported score (``inf`` for an empty result)."""
        return self.neighbors[-1].score if self.neighbors else INF

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __len__(self) -> int:
        return len(self.neighbors)
