"""The unified searcher execution contract.

Every query processor the engine dispatches to — the five families
SFA / SPA / TSA / AIS / brute force, their CH-backed and cached
variants included — satisfies one protocol:

- ``search(query_user, k, alpha, initial=None)`` answers one SSRQ,
  optionally warm-started from an ``initial``
  :class:`~repro.core.result.TopKBuffer` of already fully-evaluated
  users (the sharded engine's threshold-propagation hook);
- the returned :class:`~repro.core.result.SSRQResult` carries a fully
  populated :class:`~repro.core.stats.SearchStats`: heap pops per
  domain, **cells opened** (grid/aggregate-index cells expanded),
  **candidates scored** (users whose combined score was computed),
  exact evaluations, and wall time.

The stats side of the contract is what feeds the adaptive planner
(:mod:`repro.plan`): per-query execution cost is observable uniformly
across methods, so ``method="auto"`` can learn which family is cheap
in which regime.  ``tests/test_plan_planner.py`` pins conformance for
every method in :data:`repro.core.engine.METHODS`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.result import SSRQResult, TopKBuffer


@runtime_checkable
class Searcher(Protocol):
    """Structural type of every engine-dispatched query processor.

        >>> from repro import GeoSocialEngine, Searcher, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> isinstance(engine.searcher("tsa"), Searcher)
        True
    """

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer one SSRQ with per-query execution stats populated."""
        ...
