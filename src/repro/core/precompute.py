"""Graph-distance pre-computation (paper Section 5.4).

Materialising all-pair distances is prohibitive (the paper estimates 16
TB for Foursquare), so instead each user stores the distances of their
``t`` socially closest vertices.  A query then runs SFA's loop over the
pre-computed list — no graph expansion at all — and only if the list is
exhausted before the termination bound fires does it *fall back to the
best method, AIS* (the paper's AIS-Cache of Figure 11).

Lists are built lazily per query user by a truncated Dijkstra, which
matches how an offline pipeline would shard the pre-computation; the
build cost is not charged to query statistics.
"""

from __future__ import annotations

import math
import threading
import time

from repro.core.ais import AggregateIndexSearch
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.spatial.point import LocationTable
from repro.utils.validation import check_positive, check_user

INF = math.inf


class SocialNeighborCache:
    """Per-user lists of the ``t`` socially closest vertices.

        >>> from repro import SocialNeighborCache, SocialGraph
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> cache = SocialNeighborCache(g, t=2)
        >>> cache.list_for(0)
        [(1.0, 1), (2.0, 2)]
        >>> cache.is_complete(0)   # vertex 3 is reachable but truncated
        False
    """

    def __init__(self, graph: SocialGraph, t: int) -> None:
        self.graph = graph
        self.t = int(check_positive("t", t))
        self._lists: dict[int, list[tuple[float, int]]] = {}
        #: True for users whose reachable component fit entirely in t
        self._complete: dict[int, bool] = {}
        # Lazy fills may race under the service layer's worker pool; the
        # lock makes the two-dict update atomic (lists are immutable
        # once published, so readers never need it).
        self._build_lock = threading.Lock()

    def list_for(self, user: int) -> list[tuple[float, int]]:
        """Ascending ``(distance, vertex)`` list for ``user`` (built on
        first request)."""
        cached = self._lists.get(user)
        if cached is not None:
            return cached
        with self._build_lock:
            cached = self._lists.get(user)
            if cached is not None:
                return cached
            it = DijkstraIterator(self.graph, user)
            entries: list[tuple[float, int]] = []
            complete = False
            while len(entries) < self.t:
                item = it.next()
                if item is None:
                    complete = True
                    break
                v, p = item
                if v != user:
                    entries.append((p, v))
            self._complete[user] = complete
            self._lists[user] = entries
            return entries

    def is_complete(self, user: int) -> bool:
        """Whether the cached list covers the user's whole reachable
        component (list exhaustion is then a *proof* of termination,
        no fallback needed)."""
        if user not in self._complete:
            self.list_for(user)
        return self._complete[user]

    def prebuild(self, users) -> None:
        """Materialise lists for a batch of (query) users up front."""
        for user in users:
            self.list_for(user)


class CachedSocialFirst:
    """The paper's AIS-Cache: SFA over the pre-computed list with an
    AIS fallback.

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> searcher = engine.searcher("ais-cache", t=50)
        >>> type(searcher).__name__
        'CachedSocialFirst'
        >>> searcher.search(0, k=5, alpha=0.3).users == engine.query(
        ...     0, 5, 0.3, method="bruteforce").users
        True
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
        cache: SocialNeighborCache,
        fallback: AggregateIndexSearch,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization
        self.cache = cache
        self.fallback = fallback

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer the query; an optional ``initial`` buffer warm-starts
        ``f_k`` for both the cached-list scan and the AIS fallback."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        if not rank.needs_social:
            raise ValueError(
                "AIS-Cache requires alpha > 0 (the cached lists are ordered "
                "by social distance); use SPA for alpha == 0"
            )
        buffer = initial if initial is not None else TopKBuffer(k)
        locations = self.locations
        terminated = False
        for p, v in self.cache.list_for(query_user):
            stats.evaluations += 1
            d = locations.distance(query_user, v) if rank.needs_spatial else INF
            buffer.offer(v, rank.score(p, d), p, d)
            stats.candidates_scored += 1
            if rank.social_part(p) > buffer.fk:
                terminated = True
                break
        if not terminated and not self.cache.is_complete(query_user):
            # Cache exhausted without a termination proof: fall back to
            # the best method (paper Section 5.4).  The interim result
            # warm-starts AIS — its threshold f_k starts tight, which is
            # where the pre-computation pays off even when the list
            # alone cannot prove termination.
            stats.extra["fallback"] = 1
            fallback_result = self.fallback.search(query_user, k, alpha, initial=buffer)
            stats.merge(fallback_result.stats)
            stats.elapsed = time.perf_counter() - start
            return SSRQResult(query_user, k, alpha, fallback_result.neighbors, stats)
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, buffer.neighbors(), stats)
