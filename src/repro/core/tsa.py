"""Twofold Search Approach — TSA (paper Section 4.2, Algorithm 1).

TSA runs a social search (Dijkstra around ``v_q``) and a spatial search
(incremental NN around ``u_q``) concurrently, obtaining *both* a social
and a spatial lower bound for unseen users:

- **Phase 1** interleaves the two streams (round-robin by default,
  Quick Combine for TSA-QC).  Social pops are evaluated immediately;
  spatial pops whose social distance is unknown enter the candidate set
  ``Q``.  The phase ends when ``θ = α·t_p + (1−α)·t_d`` exceeds
  ``f_k``.
- **Phase 2** only continues the social search (continuing the spatial
  one could not improve the candidate bound ``θ' = α·t_p + (1−α)·t'_d``
  where ``t'_d`` is the smallest candidate distance).  Settled vertices
  found in ``Q`` are evaluated; the phase ends when ``Q`` empties or
  ``θ'`` exceeds ``f_k``.

Every bound comparison is *strict* (the paper terminates at
``θ ≥ f_k``): users exactly tied with the k-th score stay in play, so
the tie-break toward smaller ids is deterministic across methods,
enumeration orders, and shard layouts (see :mod:`repro.core.spa`).

The landmark-aided version (the paper's default "TSA") prunes ``Q``
between the phases using per-candidate landmark lower bounds.  With a
``point_to_point`` oracle (TSA-CH), phase 2 evaluates the surviving
candidates directly via the oracle instead of continuing the social
enumeration.
"""

from __future__ import annotations

import heapq
import math
import time

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.social.resume import ReplayedDijkstra
from repro.social.scan import dense_scan
from repro.spatial.grid import UniformGrid
from repro.spatial.nn import IncrementalNearestNeighbors
from repro.spatial.point import LocationTable
from repro.topk.quick_combine import QuickCombinePolicy, RoundRobinPolicy
from repro.utils.validation import check_user

INF = math.inf
_SOCIAL = 0
_SPATIAL = 1


class TwofoldSearch:
    """TSA query processor.

        >>> from repro import TwofoldSearch, SocialGraph, LocationTable, Normalization
        >>> from repro.spatial.grid import UniformGrid
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> tsa = TwofoldSearch(g, loc, UniformGrid.build(loc, 2),
        ...                     Normalization(p_max=4.0, d_max=1.5))
        >>> tsa.search(0, k=2, alpha=0.5).users
        [1, 3]

    Parameters
    ----------
    landmarks:
        When provided, candidates are pruned with landmark lower bounds
        before phase 2 (the paper's default TSA; pass ``None`` for the
        plain variant it "disregards because it consistently performs
        worse").
    probe_policy:
        ``"round-robin"`` (default) or ``"quick-combine"`` (TSA-QC).
    point_to_point:
        Optional distance oracle evaluating phase-2 candidates directly
        (TSA-CH).
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        grid: UniformGrid,
        normalization: Normalization,
        landmarks: LandmarkIndex | None = None,
        probe_policy: str = "round-robin",
        point_to_point=None,
        kernels=None,
        column_source=None,
    ) -> None:
        if probe_policy not in ("round-robin", "quick-combine"):
            raise ValueError(f"unknown probe policy {probe_policy!r}")
        self.graph = graph
        self.locations = locations
        self.grid = grid
        self.normalization = normalization
        self.landmarks = landmarks
        self.probe_policy = probe_policy
        self.point_to_point = point_to_point
        self.kernels = kernels
        #: optional SocialColumnCache; a full column collapses both
        #: phases into one dense scan, a parked partial replays through
        #: :class:`~repro.social.resume.ReplayedDijkstra` so the
        #: interleaved enumeration (and its ``settled``-keyed candidate
        #: admission) sees exactly a cold stream
        self.column_source = column_source

    # -- query ----------------------------------------------------------------

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer the query; an optional ``initial`` buffer of already
        fully-evaluated users warm-starts ``f_k``, so the twofold bound
        ``θ`` can end both phases before either stream advances far."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        if not (rank.needs_social and rank.needs_spatial):
            raise ValueError(
                "TSA requires 0 < alpha < 1; at the endpoints use SFA/SPA "
                "(the engine routes this automatically)"
            )
        location = self.locations.get(query_user)
        if location is None:
            raise ValueError(
                f"query user {query_user} has no known location; twofold "
                "search is undefined (paper assumes located query users)"
            )
        qx, qy = location

        buffer = initial if initial is not None else TopKBuffer(k)
        oracle = self.point_to_point
        source = self.column_source if oracle is None else None
        social = None
        if source is not None:
            kind, payload = source.acquire(query_user)
            if kind == "full":
                # One columnar pass over the cached column — bit-identical
                # to the twofold enumeration below (strict termination +
                # smaller-id tie-break select the (score, id)-minimal set).
                kernels = self.kernels if self.kernels is not None else source.kernels
                neighbors, finite = dense_scan(
                    kernels, self.graph.n, rank, payload,
                    self.locations, query_user, k, initial,
                )
                stats.candidates_scored = finite
                stats.extra["social_column_hits"] = 1
                stats.elapsed = time.perf_counter() - start
                return SSRQResult(query_user, k, alpha, neighbors, stats)
            if kind == "partial":
                social = ReplayedDijkstra(payload)
        social_inner = social.inner if social is not None else DijkstraIterator(
            self.graph, query_user
        )
        if social is None:
            social = social_inner
        social_pops_before = social.heap.pops
        oracle_pops_before = oracle.pops if oracle is not None else 0
        nn = IncrementalNearestNeighbors(
            self.grid, self.locations, qx, qy, exclude=query_user, kernels=self.kernels
        )
        if self.probe_policy == "quick-combine":
            policy = QuickCombinePolicy((alpha, 1.0 - alpha))
        else:
            policy = RoundRobinPolicy(2)

        locations = self.locations
        candidates: dict[int, float] = {}  # Q: user -> spatial distance
        cand_heap: list[tuple[float, int]] = []  # lazy min-heap over Q by d
        tp = 0.0
        td = 0.0
        social_live = True
        spatial_live = True

        # ---- Phase 1: interleaved twofold search -------------------------
        while social_live or spatial_live:
            theta = rank.social_part(tp if social_live else INF) + rank.spatial_part(
                td if spatial_live else INF
            )
            if theta > buffer.fk:
                break
            side = policy.choose((social_live, spatial_live))
            if side == _SOCIAL:
                item = social.next()
                if item is None:
                    social_live = False
                    continue
                v, p = item
                tp = p
                policy.observe(_SOCIAL, p)
                if v == query_user:
                    continue
                d = locations.distance(query_user, v)
                buffer.offer(v, rank.score(p, d), p, d)
                stats.candidates_scored += 1
                # Fully evaluated now; drop from Q if the spatial search
                # had found it first (Algorithm 1, lines 7-8).
                candidates.pop(v, None)
            else:
                item = nn.next()
                if item is None:
                    spatial_live = False
                    continue
                u, d = item
                td = d
                policy.observe(_SPATIAL, d)
                if u not in social.settled:
                    candidates[u] = d
                    heapq.heappush(cand_heap, (d, u))

        # ---- Landmark pruning of candidates (TSA's landmark aid) ----------
        tp_floor = tp if social_live else INF  # unsettled users have p >= tp
        if candidates and self.landmarks is not None:
            fk = buffer.fk
            lm = self.landmarks
            for u in list(candidates):
                lb_p = lm.lower_bound(query_user, u)
                if lb_p < tp_floor:
                    lb_p = tp_floor
                lb = rank.social_part(lb_p) + rank.spatial_part(candidates[u])
                if lb > fk:
                    del candidates[u]

        # ---- Phase 2: resolve candidates ----------------------------------
        if candidates:
            if self.point_to_point is not None:
                self._resolve_with_oracle(
                    query_user, rank, buffer, candidates, tp_floor, stats
                )
            else:
                self._resolve_with_social_search(
                    query_user, rank, buffer, candidates, cand_heap, social, social_live, stats
                )

        stats.pops_social += social.heap.pops - social_pops_before
        if oracle is not None:
            stats.pops_social += oracle.pops - oracle_pops_before
        stats.pops_spatial = nn.heap.pops
        stats.cells_opened = nn.cells_opened
        if source is not None:
            source.checkin(query_user, social_inner)
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, buffer.neighbors(), stats)

    # -- phase-2 strategies -----------------------------------------------

    def _resolve_with_social_search(
        self,
        query_user: int,
        rank: RankingFunction,
        buffer: TopKBuffer,
        candidates: dict[int, float],
        cand_heap: list[tuple[float, int]],
        social: DijkstraIterator,
        social_live: bool,
        stats: SearchStats,
    ) -> None:
        """Continue the social expansion until every candidate is found
        or ruled out (Algorithm 1, lines 15-24)."""
        locations = self.locations
        while candidates and social_live:
            # t'_d: smallest spatial distance among remaining candidates.
            while cand_heap and cand_heap[0][1] not in candidates:
                heapq.heappop(cand_heap)
            td_min = cand_heap[0][0] if cand_heap else INF
            theta2 = rank.social_part(social.last_distance) + rank.spatial_part(td_min)
            if theta2 > buffer.fk:
                break
            item = social.next()
            if item is None:
                social_live = False
                break
            v, p = item
            d = candidates.pop(v, None)
            if d is not None:
                buffer.offer(v, rank.score(p, d), p, d)
                stats.candidates_scored += 1
        # Anything left in Q is either bounded out or unreachable
        # (p = inf -> f = inf): discard.

    def _resolve_with_oracle(
        self,
        query_user: int,
        rank: RankingFunction,
        buffer: TopKBuffer,
        candidates: dict[int, float],
        tp_floor: float,
        stats: SearchStats,
    ) -> None:
        """Evaluate surviving candidates via the point-to-point oracle
        (TSA-CH), nearest first, re-checking bounds as ``f_k`` drops."""
        lm = self.landmarks
        oracle = self.point_to_point
        for u in sorted(candidates, key=lambda u: (candidates[u], u)):
            d = candidates[u]
            lb_p = tp_floor
            if lm is not None:
                lm_lb = lm.lower_bound(query_user, u)
                if lm_lb > lb_p:
                    lb_p = lm_lb
            if rank.social_part(lb_p) + rank.spatial_part(d) > buffer.fk:
                continue
            p = oracle.distance(query_user, u)
            stats.evaluations += 1
            buffer.offer(u, rank.score(p, d), p, d)
            stats.candidates_scored += 1
