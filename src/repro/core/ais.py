"""Aggregate Index Search — AIS (paper Section 5, Algorithm 2).

One unified branch-and-bound search over the aggregate index: a
min-heap holds internal nodes, leaf cells, and individual users, each
keyed by a lower bound on the best score it can contain:

- nodes/cells: ``MINF = α·p̌(v_q, C) + (1−α)·ď(u_q, C)`` (Theorem 1),
  with ``p̌`` from the cell's social summary (Lemma 2);
- users: per-vertex landmark bound combined with their exact Euclidean
  distance.

Popping a user triggers an exact social-distance evaluation through the
bidirectional module of Section 5.2 (shared forward Dijkstra + caches).
The search terminates when the heap's head key reaches ``f_k``.

The *delayed evaluation strategy* (Section 5.3): before evaluating a
popped user whose distance is not already known, compare their key with
``α·β + (1−α)·d`` where ``β`` is the forward search's frontier
distance; if the key is looser, re-insert with the tighter bound instead
of paying for an exact computation.

Three variants reproduce Figure 10:

====================  =============================================
``AISVariant.bid()``  fresh bidirectional search per evaluation, no
                      caches, no delayed evaluation (**AIS-BID**)
``AISVariant.minus()``  shared forward search + caches (**AIS−**)
``AISVariant.full()``   everything incl. delayed evaluation (**AIS**)
====================  =============================================
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.bidirectional import BidirectionalDistanceEngine
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.index.aggregate import AggregateIndex
from repro.index.bounds import social_lower_bound
from repro.spatial.point import LocationTable
from repro.utils.heaps import MinHeap
from repro.utils.validation import check_user

INF = math.inf
_TOP = 0
_LEAF = 1
_USER = 2


@dataclass(frozen=True)
class AISVariant:
    """Feature switches distinguishing AIS-BID / AIS− / AIS.

        >>> from repro import AISVariant
        >>> AISVariant.minus().delayed_evaluation
        False
        >>> AISVariant.bid().share_forward
        False
        >>> AISVariant.full() == AISVariant()
        True
    """

    share_forward: bool = True
    cache_paths: bool = True
    delayed_evaluation: bool = True
    #: ablation (not in the paper): drop social summaries, keeping only
    #: spatial bounds in cell keys
    use_social_summaries: bool = True
    #: forward/reverse step ratio of the distance engine (1 = the
    #: paper's strict alternation; see BidirectionalDistanceEngine)
    forward_interleave: int = 1

    @classmethod
    def full(cls) -> "AISVariant":
        """All optimisations (the paper's AIS)."""
        return cls()

    @classmethod
    def minus(cls) -> "AISVariant":
        """All optimisations except delayed evaluation (AIS−)."""
        return cls(delayed_evaluation=False)

    @classmethod
    def bid(cls) -> "AISVariant":
        """Plain bidirectional search per evaluation (AIS-BID)."""
        return cls(share_forward=False, cache_paths=False, delayed_evaluation=False)

    @classmethod
    def no_summaries(cls) -> "AISVariant":
        """Ablation: spatial-only cell bounds."""
        return cls(use_social_summaries=False)


class AggregateIndexSearch:
    """AIS query processor.

    The engine builds it with all its substrates wired up:

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> ais = engine.searcher("ais")
        >>> type(ais).__name__
        'AggregateIndexSearch'
        >>> ais.search(0, k=5, alpha=0.3).users == engine.query(
        ...     0, 5, 0.3, method="bruteforce").users
        True
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        landmarks: LandmarkIndex,
        index: AggregateIndex,
        normalization: Normalization,
        variant: AISVariant | None = None,
        kernels=None,
    ) -> None:
        if kernels is None:
            from repro.backend import resolve_backend

            kernels = resolve_backend("python")
        self.graph = graph
        self.locations = locations
        self.landmarks = landmarks
        self.index = index
        self.normalization = normalization
        self.variant = variant if variant is not None else AISVariant.full()
        self.kernels = kernels

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer the query; an optional ``initial`` buffer of already
        fully-evaluated users warm-starts the threshold ``f_k`` (used by
        the AIS-Cache fallback, Section 5.4)."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        variant = self.variant

        location = self.locations.get(query_user)
        if location is None and rank.needs_spatial:
            raise ValueError(
                f"query user {query_user} has no known location; SSRQ with "
                "alpha < 1 is undefined (paper assumes located query users)"
            )
        qx, qy = location if location is not None else (math.nan, math.nan)
        query_vector = self.landmarks.vector(query_user)

        engine = BidirectionalDistanceEngine(
            self.graph,
            query_user,
            landmarks=self.landmarks,
            share_forward=variant.share_forward,
            cache_paths=variant.cache_paths,
            forward_interleave=variant.forward_interleave,
        )
        buffer = initial if initial is not None else TopKBuffer(k)
        heap = MinHeap()
        index = self.index
        locations = self.locations
        kernels = self.kernels
        xs, ys = locations.columns()
        use_summaries = variant.use_social_summaries
        seq = 0  # deterministic tie-break for equal keys

        for top, summary, bbox in index.tops():
            social_lb = (
                social_lower_bound(query_vector, summary.m_check, summary.m_hat)
                if use_summaries
                else 0.0
            )
            spatial_lb = (
                index.spatial_mindist(bbox, top, True, qx, qy)
                if rank.needs_spatial
                else 0.0
            )
            key = rank.social_part(social_lb) + rank.spatial_part(spatial_lb)
            heap.push((key, seq, _TOP, top))
            seq += 1

        while heap:
            key, _, kind, payload = heap.pop()
            if key > buffer.fk:
                break
            if kind == _TOP:
                stats.cells_opened += 1
                for leaf, summary, bbox in index.children(payload):
                    social_lb = (
                        social_lower_bound(query_vector, summary.m_check, summary.m_hat)
                        if use_summaries
                        else 0.0
                    )
                    spatial_lb = (
                        index.spatial_mindist(bbox, leaf, False, qx, qy)
                        if rank.needs_spatial
                        else 0.0
                    )
                    child_key = rank.social_part(social_lb) + rank.spatial_part(spatial_lb)
                    heap.push((child_key, seq, _LEAF, leaf))
                    seq += 1
            elif kind == _LEAF:
                stats.cells_opened += 1
                # One batched evaluation per leaf: exact spatial
                # distances, per-vertex ALT bounds, and blended keys
                # over the cell's id-array in three kernel calls.
                ids = index.user_ids(payload)
                distances = kernels.euclidean_to_point(xs, ys, qx, qy, ids)
                social_lbs = kernels.alt_lower_bounds(self.landmarks, query_vector, ids)
                keys = kernels.blend(rank.w_social, rank.w_spatial, social_lbs, distances)
                for pos in range(len(ids)):
                    user = int(ids[pos])
                    if user == query_user:
                        continue
                    user_key = float(keys[pos])
                    if user_key < INF:
                        heap.push((user_key, seq, _USER, (user, float(distances[pos]))))
                        seq += 1
            else:
                user, d = payload
                if not rank.needs_social:
                    buffer.offer(user, rank.score(INF, d), INF, d)
                    stats.candidates_scored += 1
                    continue
                if variant.delayed_evaluation and engine.known_distance(user) is None:
                    beta_key = rank.social_part(engine.beta) + rank.spatial_part(d)
                    if key < beta_key:
                        heap.push((beta_key, seq, _USER, (user, d)))
                        seq += 1
                        stats.reinsertions += 1
                        continue
                p = engine.distance(user)
                stats.evaluations += 1
                buffer.offer(user, rank.score(p, d), p, d)
                stats.candidates_scored += 1

        stats.pops_index = heap.pops
        stats.cache_hits = engine.cache_hits
        stats.pops_social = engine.reverse_pops + engine.forward_pops
        if engine.forward is not None:
            stats.pops_social += engine.forward.heap.pops
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, buffer.neighbors(), stats)
