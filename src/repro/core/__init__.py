"""Core SSRQ machinery: the ranking function, the query algorithms of
the paper (SFA, SPA, TSA, TSA-QC, AIS and variants), and the engine
facade tying indexes and algorithms together.
"""

from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.bruteforce import BruteForceSearch
from repro.core.engine import GeoSocialEngine
from repro.core.precompute import CachedSocialFirst, SocialNeighborCache
from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import Neighbor, SSRQResult, TopKBuffer
from repro.core.sfa import SocialFirstSearch
from repro.core.spa import SpatialFirstSearch
from repro.core.stats import SearchStats
from repro.core.tsa import TwofoldSearch

__all__ = [
    "Normalization",
    "RankingFunction",
    "Neighbor",
    "SSRQResult",
    "TopKBuffer",
    "SearchStats",
    "BruteForceSearch",
    "SocialFirstSearch",
    "SpatialFirstSearch",
    "TwofoldSearch",
    "AggregateIndexSearch",
    "AISVariant",
    "SocialNeighborCache",
    "CachedSocialFirst",
    "GeoSocialEngine",
]
