"""Social First Approach — SFA (paper Section 4.1).

Expand the social graph around ``v_q`` with Dijkstra, evaluating every
settled user (their Euclidean distance is an O(1) lookup).  If ``v`` is
the last settled vertex, ``θ = α · p(v_q, v)`` lower-bounds the score of
every unseen user, so the search stops once ``θ`` strictly exceeds
``f_k`` (strict, so exact boundary ties are enumerated and broken
deterministically toward smaller ids — see :mod:`repro.core.spa`).

``point_to_point`` switches the *evaluation* distance to an external
oracle (a CH query in the paper's SFA-CH variant of Figure 8) while the
Dijkstra stream keeps providing the enumeration order and the
termination bound — the configuration the paper uses to show that a
state-of-the-art point-to-point index loses to the incremental shared
expansion that gets ``p`` for free.
"""

from __future__ import annotations

import math
import time

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import SSRQResult, TopKBuffer
from repro.core.stats import SearchStats
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.social.resume import ReplayedDijkstra
from repro.social.scan import dense_scan
from repro.spatial.point import LocationTable
from repro.utils.validation import check_user

INF = math.inf


class SocialFirstSearch:
    """SFA query processor.

        >>> from repro import SocialFirstSearch, SocialGraph, LocationTable, Normalization
        >>> g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 3.0)])
        >>> loc = LocationTable.from_columns([0.0, 0.1, 0.9, 0.2], [0.0, 0.0, 0.9, 0.1])
        >>> sfa = SocialFirstSearch(g, loc, Normalization(p_max=4.0, d_max=1.5))
        >>> sfa.search(0, k=2, alpha=0.5).users
        [1, 3]
    """

    def __init__(
        self,
        graph: SocialGraph,
        locations: LocationTable,
        normalization: Normalization,
        point_to_point=None,
        column_source=None,
        kernels=None,
    ) -> None:
        self.graph = graph
        self.locations = locations
        self.normalization = normalization
        self.point_to_point = point_to_point
        #: optional SocialColumnCache; a full column short-circuits the
        #: whole expansion into one dense scan, a parked partial resumes
        #: it (only meaningful without a point-to-point oracle, whose
        #: evaluation distances don't come from the Dijkstra stream)
        self.column_source = column_source
        self.kernels = kernels

    def search(
        self,
        query_user: int,
        k: int,
        alpha: float,
        initial: TopKBuffer | None = None,
    ) -> SSRQResult:
        """Answer the query; an optional ``initial`` buffer of already
        fully-evaluated users warm-starts the threshold ``f_k`` so the
        Dijkstra stream stops as soon as its social bound proves no
        unseen user can improve on it."""
        check_user(query_user, self.graph.n)
        stats = SearchStats()
        start = time.perf_counter()
        rank = RankingFunction(alpha, self.normalization)
        if not rank.needs_social:
            raise ValueError(
                "SFA requires alpha > 0: with alpha == 0 its social bound "
                "never grows; use SPA (the engine routes this automatically)"
            )
        buffer = initial if initial is not None else TopKBuffer(k)
        oracle = self.point_to_point
        source = self.column_source if oracle is None else None

        social = None
        if source is not None:
            kind, payload = source.acquire(query_user)
            if kind == "full":
                # One columnar pass over the cached column — bit-identical
                # to the enumeration below (strict termination + smaller-id
                # tie-break select exactly the (score, id)-minimal set).
                kernels = self.kernels if self.kernels is not None else source.kernels
                neighbors, finite = dense_scan(
                    kernels, self.graph.n, rank, payload,
                    self.locations, query_user, k, initial,
                )
                stats.candidates_scored = finite
                stats.extra["social_column_hits"] = 1
                stats.elapsed = time.perf_counter() - start
                return SSRQResult(query_user, k, alpha, neighbors, stats)
            if kind == "partial":
                social = ReplayedDijkstra(payload)
        inner = social.inner if social is not None else DijkstraIterator(self.graph, query_user)
        if social is None:
            social = inner
        locations = self.locations
        oracle_pops_before = oracle.pops if oracle is not None else 0
        pops_before = social.heap.pops

        while True:
            item = social.next()
            if item is None:
                break
            v, p = item
            if v != query_user:
                if oracle is not None:
                    p_eval = oracle.distance(query_user, v)
                    stats.evaluations += 1
                else:
                    p_eval = p
                d = locations.distance(query_user, v) if rank.needs_spatial else INF
                buffer.offer(v, rank.score(p_eval, d), p_eval, d)
                stats.candidates_scored += 1
            theta = rank.social_part(p)
            if theta > buffer.fk:
                break

        stats.pops_social = social.heap.pops - pops_before
        if oracle is not None:
            stats.pops_social += oracle.pops - oracle_pops_before
        if source is not None:
            source.checkin(query_user, inner)
        stats.elapsed = time.perf_counter() - start
        return SSRQResult(query_user, k, alpha, buffer.neighbors(), stats)
