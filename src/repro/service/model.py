"""Request/response model and serving statistics for the query service.

The service layer speaks in small immutable dataclasses rather than
positional arguments: a :class:`QueryRequest` carries everything one
SSRQ needs (user, ``k``, ``α``, method, ``t``, accuracy ``budget``), a
:class:`QueryResponse`
pairs the request with its :class:`~repro.core.result.SSRQResult` and
serving metadata (was it a cache hit? how long did it take?), and
:class:`ServiceStats` aggregates latency and cache behaviour across the
service's lifetime — including a cumulative
:class:`~repro.core.stats.SearchStats` merged from every executed query,
so the paper's cost metrics (heap pops, evaluations) remain observable
at the serving layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.result import Neighbor, SSRQResult
from repro.core.stats import SearchStats
from repro.utils.validation import check_budget


def neighbor_payload(nb: Neighbor) -> dict:
    """One ranked neighbour as a plain dict (the wire/CLI shape).

        >>> from repro import Neighbor
        >>> from repro.service.model import neighbor_payload
        >>> neighbor_payload(Neighbor(9, 0.25, 1.0, 0.1))
        {'user': 9, 'score': 0.25, 'social': 1.0, 'spatial': 0.1}
    """
    return {"user": nb.user, "score": nb.score, "social": nb.social, "spatial": nb.spatial}


def result_payload(result: SSRQResult) -> dict:
    """An :class:`~repro.core.result.SSRQResult` as a plain dict.

    Floats are carried as-is (``json.dumps`` preserves them exactly via
    ``repr`` round-tripping), so a serialized result is bit-identical
    to the in-process one — the property the server conformance suite
    asserts end to end.
    """
    return {
        "query_user": result.query_user,
        "k": result.k,
        "alpha": result.alpha,
        "method": result.method,
        "error_bound": result.error_bound,
        "users": result.users,
        "neighbors": [neighbor_payload(nb) for nb in result.neighbors],
    }


@dataclass(frozen=True)
class QueryRequest:
    """One SSRQ to serve.

    Hashable and immutable, so identical requests inside a batch can be
    deduplicated and the tuple of parameters can key the result cache.

        >>> from repro.service import QueryRequest
        >>> QueryRequest(user=42, k=10, alpha=0.3, method="ais")
        QueryRequest(user=42, k=10, alpha=0.3, method='ais', t=None, budget=None)
        >>> QueryRequest.coerce(42, k=10) == QueryRequest(42, k=10)
        True
    """

    user: int
    k: int = 30
    alpha: float = 0.3
    method: str = "ais"
    #: cached-list length for ``ais-cache`` (``None``: engine default)
    t: int | None = None
    #: per-query accuracy budget (``None``/``0``: exact required)
    budget: float | None = None

    def __post_init__(self) -> None:
        # same wordings as repro.utils.validation — the error-parity
        # suite pins that every layer rejects identically
        if isinstance(self.k, bool) or not isinstance(self.k, int):
            raise ValueError(f"k must be an integer, got {self.k!r}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if isinstance(self.alpha, bool) or not isinstance(self.alpha, (int, float)):
            raise ValueError(f"alpha must be a number, got {self.alpha!r}")
        if not 0.0 <= self.alpha <= 1.0 or math.isnan(self.alpha):
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha!r}")
        object.__setattr__(self, "budget", check_budget(self.budget))

    @classmethod
    def coerce(
        cls,
        item: "int | QueryRequest",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        budget: float | None = None,
    ) -> "QueryRequest":
        """Normalise a workload item: a plain user id takes the given
        defaults, an existing request passes through unchanged."""
        if isinstance(item, QueryRequest):
            return item
        if isinstance(item, bool) or not isinstance(item, int):
            raise TypeError(f"expected a user id or QueryRequest, got {item!r}")
        return cls(item, k=k, alpha=alpha, method=method, t=t, budget=budget)

    @classmethod
    def from_payload(
        cls,
        obj: dict,
        *,
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        budget: float | None = None,
    ) -> "QueryRequest":
        """Build a request from a plain dict (the wire shape), with
        defaults for omitted fields.  Raises ``ValueError`` with the
        same wording contract the engine uses, so the HTTP layer maps
        parse failures and engine rejections identically.

            >>> from repro.service import QueryRequest
            >>> QueryRequest.from_payload({"user": 3, "k": 5})
            QueryRequest(user=3, k=5, alpha=0.3, method='ais', t=None, budget=None)
        """
        if not isinstance(obj, dict):
            raise ValueError(f"expected a request object, got {obj!r}")
        if "user" not in obj:
            raise ValueError("request is missing required field 'user'")
        user = obj["user"]
        if isinstance(user, bool) or not isinstance(user, int):
            raise ValueError(f"user must be an integer id, got {user!r}")
        k_val = obj.get("k", k)
        if isinstance(k_val, bool) or not isinstance(k_val, int):
            raise ValueError(f"k must be an integer, got {k_val!r}")
        alpha_val = obj.get("alpha", alpha)
        if isinstance(alpha_val, bool) or not isinstance(alpha_val, (int, float)):
            raise ValueError(f"alpha must be a number, got {alpha_val!r}")
        method_val = obj.get("method", method)
        if not isinstance(method_val, str):
            raise ValueError(f"method must be a string, got {method_val!r}")
        t_val = obj.get("t", t)
        if t_val is not None and (isinstance(t_val, bool) or not isinstance(t_val, int)):
            raise ValueError(f"t must be an integer or null, got {t_val!r}")
        budget_val = check_budget(obj.get("budget", budget))
        return cls(
            user,
            k=k_val,
            alpha=float(alpha_val),
            method=method_val,
            t=t_val,
            budget=budget_val,
        )


@dataclass(frozen=True)
class QueryResponse:
    """One served SSRQ: the result plus how it was produced.

    ``cached`` marks answers taken from the result cache;
    ``deduplicated`` marks answers shared with an identical request in
    the same batch (computed once, returned to both).  ``latency`` is
    the wall-clock seconds this response cost the service — ``0.0`` for
    cache hits and duplicates.

        >>> from repro import Neighbor, SSRQResult
        >>> from repro.service import QueryRequest, QueryResponse
        >>> result = SSRQResult(0, 1, 0.5, [Neighbor(9, 0.25, 1.0, 0.1)])
        >>> response = QueryResponse(QueryRequest(0, k=1), result, cached=True)
        >>> response.users, response.cached
        ([9], True)
    """

    request: QueryRequest
    result: SSRQResult
    cached: bool = False
    deduplicated: bool = False
    latency: float = 0.0

    @property
    def users(self) -> list[int]:
        """Ranked user ids (delegates to the result)."""
        return self.result.users

    def payload(self) -> dict:
        """The response as a plain dict (the wire/CLI shape): the full
        result plus how it was served."""
        return {
            "result": result_payload(self.result),
            "cached": self.cached,
            "deduplicated": self.deduplicated,
            "latency": self.latency,
        }


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`~repro.service.QueryService`.

        >>> from repro.service import ServiceStats
        >>> stats = ServiceStats(cache_hits=3, cache_misses=1)
        >>> stats.hit_rate
        0.75
        >>> stats.snapshot()["cache_hits"]
        3
    """

    #: individual requests served (cache hits included)
    requests: int = 0
    #: `query_many` invocations
    batches: int = 0
    #: requests answered from the result cache
    cache_hits: int = 0
    #: requests that missed the cache (or ran with caching disabled)
    cache_misses: int = 0
    #: requests answered by sharing a duplicate within the same batch
    deduplicated: int = 0
    #: queries actually executed against the engine
    executed: int = 0
    #: cache entries evicted by update-aware invalidation (each one
    #: forces a recompute on its next lookup)
    invalidated_entries: int = 0
    #: cache entries repaired in place by an update instead of evicted
    repaired_entries: int = 0
    #: cache entries an update examined and provably kept
    reused_entries: int = 0
    #: epoch bumps (full cache invalidations)
    full_invalidations: int = 0
    #: wall-clock seconds spent executing queries (sum over queries)
    query_seconds: float = 0.0
    #: worst single-query execution time seen
    max_query_seconds: float = 0.0
    #: per-method executed-query counts
    per_method: dict = field(default_factory=dict)
    #: cumulative search-cost counters merged from every executed query
    search: SearchStats = field(default_factory=SearchStats)

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over all requests (0.0 when nothing served)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def avg_query_seconds(self) -> float:
        """Mean execution time per *executed* query."""
        return self.query_seconds / self.executed if self.executed else 0.0

    def record_execution(self, method: str, result: SSRQResult, elapsed: float) -> None:
        """Account one engine execution (coordinator-thread only)."""
        self.executed += 1
        self.query_seconds += elapsed
        if elapsed > self.max_query_seconds:
            self.max_query_seconds = elapsed
        self.per_method[method] = self.per_method.get(method, 0) + 1
        self.search.merge(result.stats)

    def snapshot(self) -> dict:
        """A plain-dict view (stable keys; handy for logging/reports)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "deduplicated": self.deduplicated,
            "executed": self.executed,
            "invalidated_entries": self.invalidated_entries,
            "repaired_entries": self.repaired_entries,
            "reused_entries": self.reused_entries,
            "full_invalidations": self.full_invalidations,
            "query_seconds": self.query_seconds,
            "avg_query_seconds": self.avg_query_seconds,
            "max_query_seconds": self.max_query_seconds,
            "per_method": dict(self.per_method),
            "total_pops": self.search.pops,
        }
