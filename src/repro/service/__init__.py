"""Traffic-serving layer: batched + concurrent + cached SSRQ serving.

This package turns the single-query :class:`~repro.core.engine.GeoSocialEngine`
into a component built for heavy, skewed, dynamic traffic:

- :class:`QueryService` — batch endpoint with a worker pool, in-batch
  deduplication, and a readers-writer lock serialising updates against
  in-flight queries;
- :class:`ResultCache` — update-aware LRU over full top-k results with
  exact invalidation on location moves and configurable blast-radius /
  epoch-flush invalidation on social-edge changes;
- :class:`QueryRequest` / :class:`QueryResponse` / :class:`ServiceStats`
  — the request/response dataclasses and serving statistics.

Quickstart::

    from repro import GeoSocialEngine, gowalla_like
    from repro.service import QueryRequest, QueryService

    engine = GeoSocialEngine.from_dataset(gowalla_like(n=2000, seed=7))
    service = QueryService(engine, max_workers=4, cache_size=4096)
    responses = service.query_many(
        [QueryRequest(user=u, k=10, alpha=0.3) for u in (1, 2, 5, 6, 7, 8)]
    )
    service.move_user(42, 0.3, 0.7)       # evicts exactly what it must
    print(service.stats.snapshot())
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.model import QueryRequest, QueryResponse, ServiceStats
from repro.service.service import QueryService
from repro.utils.concurrency import ReadWriteLock

__all__ = [
    "QueryService",
    "QueryRequest",
    "QueryResponse",
    "ServiceStats",
    "ResultCache",
    "CacheStats",
    "ReadWriteLock",
]
