"""Update-aware, repair-aware LRU cache of SSRQ results.

Urban query workloads are heavily skewed — a small set of hot users
issues most of the traffic — so caching whole top-k results pays off
enormously *if* the cache can survive a dynamic world where users move
constantly.  This module provides that: an LRU keyed on the full query
signature ``(user, k, α, method, t, normalization)`` with hit/miss
statistics, plus invalidation that *repairs or evicts exactly* the
entries a given update can affect instead of flushing everything.

**Location update of user m → exact screening, then repair.**  A move
can only change a cached ranking in three ways, each of which the cache
detects precisely:

1. queries *issued by* ``m`` (its spatial component moved) — tracked by
   a per-query-user key index; evicted (every spatial term changed:
   a recompute on the next miss);
2. queries whose cached top-k *contains* ``m`` (its score changed) —
   tracked by an inverted member → keys index.  For methods whose
   stored social distances are schedule-independent
   (:data:`~repro.core.engine.FORWARD_DETERMINISTIC_METHODS`) the
   entry is *repaired in place*: the move changed only ``m``'s spatial
   term, so
   re-scoring ``m`` with its stored social distance and re-sorting is
   the fresh answer — unless the new key exceeds the old k-th key, in
   which case ``m`` may drop out, the old (k+1)-th is unknown, and the
   entry is evicted (see :mod:`repro.stream.conditions` for the safety
   argument);
3. queries that ``m`` could *newly enter*: since scores are
   ``f = α·p/P_max + (1−α)·d/D_max`` and ``p ≥ 0``, the spatial part
   alone lower-bounds ``m``'s new score; if
   ``(1−α)·d(q, m_new)/D_max ≥ f_k`` the entry provably cannot change
   and survives (counted as *reused*).  Pure-social entries (``α = 1``)
   are never affected by location updates at all.

The screen costs O(cache) per update with an O(1) check per entry;
``scan_limit`` caps that work — a larger cache falls back to an
epoch-based full invalidation (O(1) decision, drop everything).

**Social edge update (u, v) → blast radius or epoch flush.**  An edge
change can alter social distances between arbitrarily distant pairs, so
the conservative default is a full epoch flush; with
``edge_blast_radius`` configured, only entries whose query user or
cached members lie within that many social hops of either endpoint are
evicted (pure-spatial ``α = 0`` entries are always kept — edge weights
cannot affect them).  Note that under the service layer's default
*companion-table* model, served results do not change until
:meth:`QueryService.rebuild_engine` folds the updates in (which flushes
anyway) — the per-update eviction is deliberate conservatism that also
covers live-attached tables (``attach_dynamics`` on the engine's own
landmark index) where repaired rows feed served bounds immediately.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.core.engine import FORWARD_DETERMINISTIC_METHODS
from repro.core.ranking import _TINY
from repro.core.result import Neighbor, SSRQResult

INF = math.inf

#: cache key layout: (user, k, alpha, method, t, normalization token,
#: budget) — the accuracy budget is appended last so shorter (older or
#: foreign) key shapes keep failing the ``len(key) <= _KEY_NORM``
#: guards conservatively
CacheKey = tuple

_KEY_K = 1
_KEY_ALPHA = 2
_KEY_METHOD = 3
_KEY_NORM = 5
_KEY_BUDGET = 6


def _key_alpha(key: CacheKey) -> float | None:
    """The α slot of a service-shaped key, or ``None`` for foreign key
    shapes (plain LRU use) — callers treat ``None`` conservatively."""
    return key[_KEY_ALPHA] if len(key) > _KEY_ALPHA else None


class InvalidationOutcome(int):
    """Result of one update-aware invalidation pass.

    Behaves as the number of *evicted* entries (an ``int`` subclass, so
    existing arithmetic and assertions keep working) and additionally
    reports how many entries were repaired in place, how many were
    examined and provably kept, and whether the pass fell back to an
    epoch flush.

        >>> from repro.service.cache import InvalidationOutcome
        >>> out = InvalidationOutcome(2, repaired=1, reused=5)
        >>> out == 2, out.repaired, out.reused, out.full_flush
        (True, 1, 5, False)
    """

    repaired: int
    reused: int
    full_flush: bool

    def __new__(
        cls, evicted: int, *, repaired: int = 0, reused: int = 0, full_flush: bool = False
    ) -> "InvalidationOutcome":
        self = super().__new__(cls, evicted)
        self.repaired = repaired
        self.reused = reused
        self.full_flush = full_flush
        return self

    @property
    def evicted(self) -> int:
        return int(self)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    #: LRU capacity evictions
    evictions: int = 0
    #: entries removed by update-aware invalidation (each one forces a
    #: recompute on its next lookup)
    invalidated: int = 0
    #: entries *repaired in place* by an update (single-candidate
    #: re-score; see the module docstring) instead of evicted
    repaired: int = 0
    #: entries an update examined and provably kept (screen NO-OP)
    reused: int = 0
    #: epoch bumps (full flushes)
    full_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """LRU result cache with exact update-aware invalidation.

        >>> from repro.service.cache import ResultCache
        >>> cache = ResultCache(capacity=2)
        >>> cache.put(("a",), "result-a")
        >>> cache.get(("a",))
        'result-a'
        >>> cache.get(("b",)) is None
        True
        >>> cache.stats.hits, cache.stats.misses
        (1, 1)

    All operations take an internal lock, so invalidation hooks may fire
    from any thread.  Entries must be :class:`SSRQResult`-like for the
    update-aware paths (plain values are fine for pure LRU use, as in
    the doctest above).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        scan_limit: int | None = None,
        edge_blast_radius: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: above this size, location screening gives way to a full flush
        self.scan_limit = scan_limit
        #: social-hop radius for edge invalidation (None: full flush)
        self.edge_blast_radius = edge_blast_radius
        self.stats = CacheStats()
        #: monotonically increasing; bumped on every full invalidation
        self.epoch = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._by_query_user: dict[int, set[CacheKey]] = {}
        self._by_member: dict[int, set[CacheKey]] = {}

    # -- plain cache operations ---------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: CacheKey):
        """The cached result for ``key`` (refreshing its LRU position),
        or ``None`` — counted as a hit or miss respectively."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: CacheKey):
        """Like :meth:`get` but without touching LRU order or stats."""
        return self._entries.get(key)

    def put(self, key: CacheKey, result) -> None:
        """Insert (or refresh) ``key``, evicting the LRU tail at
        capacity."""
        with self._lock:
            old = self._entries.get(key)
            if old is not None:
                self._drop_from_indexes(key, old)
                self._entries.move_to_end(key)
                self._entries[key] = result
                self._index(key, result)
                return
            while len(self._entries) >= self.capacity:
                victim, old = self._entries.popitem(last=False)
                self._drop_from_indexes(victim, old)
                self.stats.evictions += 1
            self._entries[key] = result
            self._index(key, result)
            self.stats.insertions += 1

    def _index(self, key: CacheKey, result) -> None:
        if not isinstance(result, SSRQResult):
            return
        self._by_query_user.setdefault(result.query_user, set()).add(key)
        for nb in result.neighbors:
            self._by_member.setdefault(nb.user, set()).add(key)

    def _discard_keys(self, keys: Iterable[CacheKey]) -> int:
        removed = 0
        for key in list(keys):
            result = self._entries.pop(key, None)
            if result is None:
                continue
            self._drop_from_indexes(key, result)
            removed += 1
        self.stats.invalidated += removed
        return removed

    def _drop_from_indexes(self, key: CacheKey, result) -> None:
        if not isinstance(result, SSRQResult):
            return
        keys = self._by_query_user.get(result.query_user)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_query_user[result.query_user]
        for nb in result.neighbors:
            keys = self._by_member.get(nb.user)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_member[nb.user]

    # -- update-aware invalidation ------------------------------------

    def invalidate_all(self) -> "InvalidationOutcome":
        """Epoch-based full invalidation: drop every entry at once."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._by_query_user.clear()
            self._by_member.clear()
            self.epoch += 1
            self.stats.invalidated += removed
            self.stats.full_invalidations += 1
            return InvalidationOutcome(removed, full_flush=True)

    def invalidate_query_user(self, user: int) -> int:
        """Drop every cache line keyed by query user ``user``."""
        with self._lock:
            return self._discard_keys(self._by_query_user.get(user, ()))

    def invalidate_location_update(
        self,
        user: int,
        x: float | None,
        y: float | None,
        *,
        query_location: Callable[[int], tuple[float, float] | None],
        d_max: float,
    ) -> "InvalidationOutcome":
        """Repair or evict exactly the entries a location update can
        affect.

        ``(x, y)`` is the user's *new* position (``None`` for a
        forgotten location); ``query_location`` resolves a query user's
        current position; ``d_max`` is the spatial normaliser the cached
        scores were computed under.  Returns an
        :class:`InvalidationOutcome` (``int``-compatible: the number of
        entries evicted) that also counts in-place repairs and entries
        provably kept.
        """
        with self._lock:
            if self.scan_limit is not None and len(self._entries) > self.scan_limit:
                return self.invalidate_all()
            evict: set[CacheKey] = set()
            repaired = reused = 0
            #: keys already resolved (kept, repaired, or mover-is-member)
            #: — the entrant scan below must not re-examine or re-count
            #: them
            settled: set[CacheKey] = set()
            for key in self._by_query_user.get(user, ()):
                if _key_alpha(key) == 1.0:
                    if key not in settled:
                        reused += 1  # pure-social: location cannot matter
                        settled.add(key)
                    continue
                evict.add(key)
            for key in list(self._by_member.get(user, ())):
                if key in evict or key in settled:
                    continue
                settled.add(key)
                if _key_alpha(key) == 1.0:
                    reused += 1
                    continue
                if self._repair_member_locked(key, user, x, y, query_location):
                    repaired += 1
                else:
                    evict.add(key)
            if x is not None:
                # The mover may newly enter someone else's top-k; keep
                # only entries whose spatial lower bound proves it out.
                for key, result in self._entries.items():
                    if key in evict or key in settled:
                        continue
                    alpha = _key_alpha(key)
                    if alpha == 1.0:
                        reused += 1
                        continue
                    if not isinstance(result, SSRQResult) or alpha is None:
                        evict.add(key)
                        continue
                    if result.query_user == user:
                        continue  # handled by the query-user index
                    if len(result.neighbors) < key[_KEY_K]:
                        evict.add(key)  # open slot: anyone may join
                        continue
                    q = query_location(result.query_user)
                    if q is None or d_max <= 0.0:
                        evict.add(key)
                        continue
                    # Mirror RankingFunction's float association exactly
                    # (w_spatial = (1-α)/D_max, then · d): the engine's
                    # score is fl(w_social·p + w_spatial·d) ≥ w_spatial·d
                    # for non-negative parts, so this is a sound lower
                    # bound.  `<=` (not `<`) covers the smaller-id
                    # tie-break at equal scores.
                    w_spatial = (1.0 - alpha) / max(d_max, _TINY)
                    dx = q[0] - x
                    dy = q[1] - y
                    lower = w_spatial * math.sqrt(dx * dx + dy * dy)
                    if lower <= result.fk:
                        evict.add(key)
                    else:
                        reused += 1
            removed = self._discard_keys(evict)
            self.stats.repaired += repaired
            self.stats.reused += reused
            return InvalidationOutcome(removed, repaired=repaired, reused=reused)

    def _repair_member_locked(
        self,
        key: CacheKey,
        user: int,
        x: float | None,
        y: float | None,
        query_location: Callable[[int], tuple[float, float] | None],
    ) -> bool:
        """Try to repair one cached entry whose top-k *contains* the
        mover: re-score the mover from its stored social distance and
        re-sort.  ``False`` means the entry must be evicted instead
        (non-repairable method, the mover may have dropped out, or the
        key shape is foreign).  See :mod:`repro.stream.conditions` for
        why the repaired entry equals a fresh recompute.
        """
        if len(key) <= _KEY_NORM:
            return False  # foreign key shape: evict conservatively
        method, norm = key[_KEY_METHOD], key[_KEY_NORM]
        if method not in FORWARD_DETERMINISTIC_METHODS:
            # e.g. AIS (scores are schedule-dependent) or approx (the
            # stored social term is a sketch midpoint, not the exact
            # distance — re-scoring from it would compound error past
            # the recorded bound): recompute on the next miss instead.
            return False
        if not (isinstance(norm, tuple) and len(norm) == 2):
            return False
        result = self._entries.get(key)
        if not isinstance(result, SSRQResult):
            return False
        alpha, k = key[_KEY_ALPHA], key[_KEY_K]
        neighbors = result.neighbors
        full = len(neighbors) >= k
        if x is None or y is None:
            # The mover lost its location: it drops out.  With an open
            # slot that *is* the fresh answer; at capacity the old
            # (k+1)-th is unknown.
            if full:
                return False
            repaired = [nb for nb in neighbors if nb.user != user]
        else:
            q = query_location(result.query_user)
            if q is None:
                return False
            p_max, d_max = norm
            w_social = alpha / max(p_max, _TINY)
            w_spatial = (1.0 - alpha) / max(d_max, _TINY)
            dx = q[0] - x
            dy = q[1] - y
            d = math.sqrt(dx * dx + dy * dy)
            moved = next(nb for nb in neighbors if nb.user == user)
            # RankingFunction.score association, zero-weight gating incl.
            social_part = w_social * moved.social if w_social != 0.0 else 0.0
            spatial_part = w_spatial * d if w_spatial != 0.0 else 0.0
            new_score = social_part + spatial_part
            if new_score != new_score or new_score == INF:
                return False
            if full:
                worst = neighbors[-1]
                if (new_score, user) > (worst.score, worst.user):
                    return False  # may drop below the unknown (k+1)-th
            repaired = sorted(
                [nb for nb in neighbors if nb.user != user]
                + [Neighbor(user, new_score, moved.social, d)],
                key=lambda nb: (nb.score, nb.user),
            )
        new_result = SSRQResult(
            result.query_user, result.k, result.alpha, repaired, result.stats,
            method=result.method,
        )
        self._drop_from_indexes(key, result)
        self._entries[key] = new_result  # in place: LRU position kept
        self._index(key, new_result)
        return True

    def invalidate_edge_update(
        self,
        u: int,
        v: int,
        *,
        neighbors_of: Callable[[int], Iterable[int]] | None = None,
    ) -> "InvalidationOutcome":
        """Invalidate after a social-edge insert/delete/re-weight.

        With no configured ``edge_blast_radius`` (or no adjacency to
        walk) this is a sound full flush; otherwise entries touching the
        hop-ball around the endpoints are evicted (bounded staleness —
        distance changes *can* propagate further).
        """
        with self._lock:
            if self.edge_blast_radius is None or neighbors_of is None:
                return self.invalidate_all()
            ball = self._hop_ball((u, v), self.edge_blast_radius, neighbors_of)
            evict: set[CacheKey] = set()
            kept: set[CacheKey] = set()  # counted once, however many
            for member in ball:          # ball members touch the entry
                for index in (self._by_query_user, self._by_member):
                    for key in index.get(member, ()):
                        if _key_alpha(key) == 0.0:
                            kept.add(key)  # pure-spatial: edges cannot matter
                        else:
                            evict.add(key)
            removed = self._discard_keys(evict)
            self.stats.reused += len(kept)
            return InvalidationOutcome(removed, reused=len(kept))

    @staticmethod
    def _hop_ball(
        seeds: Iterable[int], radius: int, neighbors_of: Callable[[int], Iterable[int]]
    ) -> set[int]:
        ball = set(seeds)
        frontier = deque((s, 0) for s in ball)
        while frontier:
            vertex, depth = frontier.popleft()
            if depth >= radius:
                continue
            for nbr in neighbors_of(vertex):
                if nbr not in ball:
                    ball.add(nbr)
                    frontier.append((nbr, depth + 1))
        return ball
