"""The traffic-serving front-end over :class:`GeoSocialEngine`.

:class:`QueryService` turns the single-query engine facade into a
component that can absorb realistic load:

- **batching** — :meth:`QueryService.query_many` accepts a heterogeneous
  batch (per-request method/α/k), deduplicates identical requests, and
  executes the distinct remainder concurrently on a thread pool, while
  returning responses in request order with rankings identical to a
  sequential ``engine.query`` loop;
- **caching** — an update-aware LRU (:mod:`repro.service.cache`) keyed
  on the full query signature, invalidated exactly on location moves
  and social-edge changes via the engine's and
  :class:`~repro.graph.dynamics.DynamicLandmarkTables`' listener hooks;
- **consistency** — the engine's readers-writer lock (``engine.rw_lock``,
  shared by every service over the same engine) lets queries run
  concurrently while serialising updates against in-flight queries (the
  engine's grid/aggregate-index mutation is not safe under readers).

The service is engine-kind agnostic: it serves a single
:class:`~repro.core.engine.GeoSocialEngine` or a
:class:`~repro.shard.ShardedGeoSocialEngine` identically — both expose
the same ``query``/update/listener/lock surface, and the sharded
engine's location listeners fire with the same semantics, so
update-aware cache invalidation (including boundary-crossing moves that
re-home a user onto another shard) needs no sharding-specific code
here.

The algorithms are read-mostly and pure-Python; a thread pool therefore
buys latency overlap (and true parallelism on GIL-free builds) while
the cache buys throughput on skewed workloads — see
``benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.engine import (
    AUTO,
    FORWARD_DETERMINISTIC_METHODS,
    GeoSocialEngine,
    resolve_dispatch,
)
from repro.core.result import SSRQResult
from repro.service.cache import CacheKey, ResultCache
from repro.service.model import QueryRequest, QueryResponse, ServiceStats
from repro.social.fused import fused_variants

if TYPE_CHECKING:
    from repro.graph.dynamics import DynamicLandmarkTables


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


class QueryService:
    """Concurrent, caching SSRQ serving layer.

        >>> from repro import GeoSocialEngine, gowalla_like
        >>> from repro.service import QueryRequest, QueryService
        >>> engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=7))
        >>> service = QueryService(engine, max_workers=2, cache_size=64)
        >>> batch = [QueryRequest(user=8, k=5), QueryRequest(user=11, k=3, alpha=0.7)]
        >>> responses = service.query_many(batch)
        >>> [r.cached for r in responses]
        [False, False]
        >>> service.query(QueryRequest(user=8, k=5)).cached   # repeat: cache hit
        True
        >>> service.move_user(8, 0.25, 0.75)                  # evicts user 8's line
        >>> service.query(QueryRequest(user=8, k=5)).cached
        False

    Parameters
    ----------
    engine:
        The (already built) engine to serve from — a
        :class:`~repro.core.engine.GeoSocialEngine` or a
        :class:`~repro.shard.ShardedGeoSocialEngine`.
    max_workers:
        Worker-pool width for batches (default: ``min(8, cpus)``).
        ``1`` executes batches inline with no pool.
    cache_size:
        LRU capacity; ``0`` disables result caching entirely.
    scan_limit, edge_blast_radius:
        Invalidation tuning, forwarded to :class:`ResultCache`.
    batch_dedup:
        Compute identical in-batch requests once (default on).
    social_cache_bytes:
        Byte budget for the engine's
        :class:`~repro.social.cache.SocialColumnCache` (``None`` keeps
        the engine's own setting, ``0`` disables column reuse).  Applied
        by resizing the live cache in place, and re-applied to every
        engine this service swaps in (:meth:`rebuild_engine` /
        :meth:`replace_engine`), so the knob survives rebuilds.
    """

    def __init__(
        self,
        engine: GeoSocialEngine,
        *,
        max_workers: int | None = None,
        cache_size: int = 1024,
        scan_limit: int | None = None,
        edge_blast_radius: int | None = None,
        batch_dedup: bool = True,
        social_cache_bytes: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.engine = engine
        self.max_workers = max_workers if max_workers is not None else _default_workers()
        self.batch_dedup = batch_dedup
        self.cache: ResultCache | None = (
            ResultCache(
                cache_size, scan_limit=scan_limit, edge_blast_radius=edge_blast_radius
            )
            if cache_size > 0
            else None
        )
        self.stats = ServiceStats()
        self._closed = False
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._dynamics: "DynamicLandmarkTables | None" = None
        self._dynamics_lock = threading.Lock()
        #: downstream edge-update subscribers (e.g. the stream layer's
        #: SubscriptionRegistry); fed by _on_edge_update regardless of
        #: whether result caching is enabled
        self._edge_listeners: list = []
        self._social_cache_bytes = social_cache_bytes
        self._apply_social_budget(engine)
        if self.cache is not None:
            engine.add_location_listener(self._on_location_update)

    def _apply_social_budget(self, engine: GeoSocialEngine) -> None:
        """Resize ``engine``'s social column cache to this service's
        requested byte budget (no-op when no budget was requested or the
        engine carries no cache — e.g. one built with
        ``social_cache_bytes=0``)."""
        if self._social_cache_bytes is None:
            return
        social = getattr(engine, "social_cache", None)
        if social is not None:
            social.resize(self._social_cache_bytes)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut down the service: stop the worker pool, detach the
        engine listeners, and flush the cache.  Any further serving or
        update call raises ``RuntimeError`` (the listeners are gone, so
        a reused service could otherwise silently serve stale
        results)."""
        self._closed = True
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        if self.cache is not None:
            self.engine.remove_location_listener(self._on_location_update)
            self.cache.invalidate_all()
        with self._dynamics_lock:
            if self._dynamics is not None:
                self._dynamics.remove_update_listener(self._on_edge_update)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("QueryService is closed")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            # Re-checked under the pool lock: a query racing close()
            # must not resurrect the pool after shutdown.
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="ssrq-worker"
                )
            return self._pool

    @contextmanager
    def _read_locked_engine(self) -> "Iterator[GeoSocialEngine]":
        """Hold the read side of the *current* engine's lock.

        :meth:`rebuild_engine` can swap ``self.engine``; the loop
        guarantees the lock we hold belongs to the engine we hand out
        (a swap between the read and the acquire retries)."""
        while True:
            engine = self.engine
            lock = engine.rw_lock
            lock.acquire_read()
            if self.engine is engine:
                try:
                    yield engine
                finally:
                    lock.release_read()
                return
            lock.release_read()

    # -- serving -------------------------------------------------------

    def _cache_key(
        self, request: QueryRequest, engine: GeoSocialEngine, resolved: str
    ) -> CacheKey:
        """The cache line for one request, keyed on the **resolved**
        method (endpoint routing applied; ``auto`` pinned to the
        planner's concrete pick).  Repair-awareness and the screening
        bounds therefore always classify the method that actually
        produced the stored result — and endpoint aliases (``tsa`` at
        ``alpha == 0`` and ``spa``, …) share one line.

        The accuracy budget is part of the signature (appended last so
        older positional consumers stay valid): a budgeted answer may
        be approximate, so it must never satisfy an exact request with
        otherwise identical parameters.  ``budget=0`` is normalised to
        the unset form — both demand exactness, so they share a line."""
        norm = engine.normalization
        return (
            request.user,
            request.k,
            request.alpha,
            resolved,
            request.t,
            (norm.p_max, norm.d_max),
            request.budget or None,
        )

    def _resolve(self, request: QueryRequest, engine: GeoSocialEngine):
        """``(resolved_method, decision, planner)`` for one request —
        the planner is consulted (and later fed the measured latency)
        only for ``method="auto"``."""
        resolved, decision = resolve_dispatch(
            engine,
            request.user,
            request.k,
            request.alpha,
            request.method,
            request.t,
            budget=request.budget,
        )
        return resolved, decision, engine.planner if decision is not None else None

    def _precalibrate_planner(self) -> None:
        """One-time planner calibration for ``auto`` traffic, run
        *before* this thread takes the engine's read lock: each probe
        acquires the read side itself, so a pending update stalls for
        one probe query, not the whole ~32-probe pass (the engine lock
        is writer-preferring — calibrating under a held read lock would
        stall every other reader behind a queued writer)."""
        engine = self.engine
        planner = engine.planner
        if not planner.calibrated:
            planner.calibrate(engine, read_lock=engine.rw_lock.read_locked)

    @staticmethod
    def _execute(
        request: QueryRequest, engine: GeoSocialEngine, resolved: str
    ) -> tuple[SSRQResult, float]:
        start = time.perf_counter()
        result = engine.query(
            request.user,
            k=request.k,
            alpha=request.alpha,
            method=resolved,
            t=request.t,
            budget=request.budget,
        )
        return result, time.perf_counter() - start

    def query(
        self,
        request: "int | QueryRequest",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        budget: float | None = None,
    ) -> QueryResponse:
        """Serve one SSRQ (cache-first); a plain user id takes the
        keyword defaults."""
        self._check_open()
        req = QueryRequest.coerce(
            request, k=k, alpha=alpha, method=method, t=t, budget=budget
        )
        if req.method == AUTO:
            self._precalibrate_planner()
        with self._read_locked_engine() as engine:
            resolved, decision, planner = self._resolve(req, engine)
            if self.cache is not None:
                key = self._cache_key(req, engine, resolved)
                hit = self.cache.get(key)
                if hit is not None:
                    with self._stats_lock:
                        self.stats.requests += 1
                        self.stats.cache_hits += 1
                    return QueryResponse(req, hit, cached=True)
            result, elapsed = self._execute(req, engine, resolved)
            if planner is not None:
                planner.observe(decision, elapsed)
            if self.cache is not None:
                self.cache.put(key, result)
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.cache_misses += 1
            self.stats.record_execution(resolved, result, elapsed)
        return QueryResponse(req, result, latency=elapsed)

    def query_many(
        self,
        requests: "Iterable[int | QueryRequest]",
        k: int = 30,
        alpha: float = 0.3,
        method: str = "ais",
        t: int | None = None,
        budget: float | None = None,
    ) -> list[QueryResponse]:
        """Serve a batch: cache lookups, in-batch deduplication, then
        concurrent execution of the distinct remainder.

        Responses come back in request order, and each ranking is
        identical to what a sequential ``engine.query`` loop would have
        produced (queries are read-only and deterministic; updates are
        excluded for the duration of the batch by the engine's
        readers-writer lock).
        """
        self._check_open()
        reqs = [
            QueryRequest.coerce(item, k=k, alpha=alpha, method=method, t=t, budget=budget)
            for item in requests
        ]
        responses: list[QueryResponse | None] = [None] * len(reqs)
        hits = 0
        if any(req.method == AUTO for req in reqs):
            self._precalibrate_planner()
        with self._read_locked_engine() as engine:
            # 0. one method resolution per *distinct* request, memoized
            #    so identical auto requests resolve identically inside
            #    the batch (dedup keeps collapsing them even while the
            #    planner explores between batches).
            resolutions: dict[QueryRequest, tuple] = {}

            def resolve(req: QueryRequest) -> tuple:
                entry = resolutions.get(req)
                if entry is None:
                    entry = resolutions[req] = self._resolve(req, engine)
                return entry

            # 1. cache pass + dedup: map each distinct key to the request
            #    indexes waiting on it.
            pending: "dict[CacheKey, list[int]]" = {}
            for i, req in enumerate(reqs):
                key = self._cache_key(req, engine, resolve(req)[0])
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        responses[i] = QueryResponse(req, hit, cached=True)
                        hits += 1
                        continue
                if not self.batch_dedup:
                    key = key + (i,)
                pending.setdefault(key, []).append(i)

            # 2. execute the distinct remainder (concurrently when the
            #    batch and the pool allow it).  Distinct (k, α) variants
            #    for one hot query user along a forward-deterministic
            #    path all derive from the same social column, so they
            #    collapse into ONE fused task: the column materialises
            #    once (through the engine's SocialColumnCache) and every
            #    variant is answered by a shared-column blend + top-k
            #    pass (:meth:`Kernels.blend_topk_multi`) — bit-identical
            #    to per-request ``engine.query``.  Planner-routed
            #    requests stay on the per-query path (their measured
            #    latency must feed the decision back), and SPA/TSA
            #    variants for an unlocated query user do too (they must
            #    raise that searcher's exact error); SFA/bruteforce
            #    tolerate unlocated users identically either way.
            work = [(key, reqs[indexes[0]]) for key, indexes in pending.items()]
            executed: "list[tuple[SSRQResult, float] | None]" = [None] * len(work)

            def run_single(wi: int) -> None:
                req = work[wi][1]
                executed[wi] = self._execute(req, engine, resolve(req)[0])

            def run_fused(user: int, indexes: "list[int]") -> None:
                variants = [
                    (work[wi][1].k, work[wi][1].alpha, resolve(work[wi][1])[0])
                    for wi in indexes
                ]
                for wi, result in zip(indexes, fused_variants(engine, user, variants)):
                    executed[wi] = (result, result.stats.elapsed)

            fusable: "dict[int, list[int]]" = {}
            for wi, (_key, req) in enumerate(work):
                resolved, decision, _ = resolve(req)
                if (
                    decision is None
                    and resolved in FORWARD_DETERMINISTIC_METHODS
                    # invalid users keep the per-query path (engine.query
                    # raises its exact error there)
                    and 0 <= req.user < engine.graph.n
                    and (
                        resolved in ("sfa", "bruteforce")
                        or engine.locations.get(req.user) is not None
                    )
                ):
                    fusable.setdefault(req.user, []).append(wi)
            groups = {u: wis for u, wis in fusable.items() if len(wis) >= 2}
            grouped = {wi for wis in groups.values() for wi in wis}
            tasks: "list" = [
                (lambda user=user, wis=wis: run_fused(user, wis))
                for user, wis in groups.items()
            ]
            tasks.extend(
                (lambda wi=wi: run_single(wi))
                for wi in range(len(work))
                if wi not in grouped
            )
            if len(tasks) > 1 and self.max_workers > 1:
                list(self._executor().map(lambda task: task(), tasks))
            else:
                for task in tasks:
                    task()

            # 3. fan results back out in request order.
            for (key, req), (result, elapsed) in zip(work, executed):
                resolved, decision, planner = resolve(req)
                if planner is not None:
                    planner.observe(decision, elapsed)
                if self.cache is not None:
                    self.cache.put(key if self.batch_dedup else key[:-1], result)
                indexes = pending[key]
                responses[indexes[0]] = QueryResponse(req, result, latency=elapsed)
                for j in indexes[1:]:
                    responses[j] = QueryResponse(reqs[j], result, deduplicated=True)
                with self._stats_lock:
                    self.stats.record_execution(resolved, result, elapsed)
                    self.stats.deduplicated += len(indexes) - 1

        with self._stats_lock:
            self.stats.batches += 1
            self.stats.requests += len(reqs)
            self.stats.cache_hits += hits
            self.stats.cache_misses += len(reqs) - hits
        return responses  # type: ignore[return-value]

    # -- updates -------------------------------------------------------

    def move_user(self, user: int, x: float, y: float) -> None:
        """Apply a location update exclusively (no queries in flight)
        and invalidate exactly the affected cache entries.

        Delegates to :meth:`GeoSocialEngine.move_user`, which takes the
        engine lock's exclusive side itself — so direct engine updates
        are serialised (and invalidate the cache) identically."""
        self._check_open()
        self.engine.move_user(user, x, y)

    def forget_location(self, user: int) -> None:
        """Forget a user's location (exclusive), with invalidation."""
        self._check_open()
        self.engine.forget_location(user)

    @property
    def dynamics(self) -> "DynamicLandmarkTables":
        """The dynamic landmark-maintenance companion (created and wired
        to cache invalidation on first use).

        It operates on a *copy* of the engine's landmark tables: live
        queries keep using bounds that are admissible for the graph the
        engine actually searches, while the companion accumulates the
        repaired topology for the next :meth:`rebuild_engine`.
        """
        if self._dynamics is None:
            from repro.graph.dynamics import DynamicLandmarkTables

            with self._dynamics_lock:
                if self._dynamics is None:
                    self._attach_dynamics_locked(
                        DynamicLandmarkTables(
                            self.engine.graph, self.engine.landmarks.copy()
                        )
                    )
        return self._dynamics

    def attach_dynamics(self, tables: "DynamicLandmarkTables") -> None:
        """Subscribe the result cache to an existing
        :class:`DynamicLandmarkTables`' edge updates.

        If ``tables`` wraps the engine's own :class:`LandmarkIndex`
        (rather than a :meth:`~repro.graph.landmarks.LandmarkIndex.copy`),
        every applied update mutates the live landmark rows while the
        engine's CSR graph stays unchanged — landmark bounds then stop
        being admissible and pruning methods can return wrong results.
        Prefer the :attr:`dynamics` property, which wires a companion
        copy.
        """
        with self._dynamics_lock:
            self._attach_dynamics_locked(tables)

    def _attach_dynamics_locked(self, tables: "DynamicLandmarkTables") -> None:
        if self._dynamics is not None:
            self._dynamics.remove_update_listener(self._on_edge_update)
        self._dynamics = tables
        tables.add_update_listener(self._on_edge_update)

    def add_edge_update_listener(self, listener) -> None:
        """Subscribe ``listener(u, v, weight)`` to every social-edge
        update flowing through this service's dynamics companion
        (fired inside the update's write lock, after cache
        invalidation).  The hook the stream layer's
        :class:`~repro.stream.SubscriptionRegistry` rides — it stays
        wired across :meth:`rebuild_engine` re-anchors, because the
        service re-attaches *itself* to every new companion."""
        self._edge_listeners.append(listener)

    def remove_edge_update_listener(self, listener) -> None:
        """Unsubscribe an edge-update listener (no-op if absent)."""
        try:
            self._edge_listeners.remove(listener)
        except ValueError:
            pass

    def update_edge(self, u: int, v: int, weight: float | None) -> None:
        """Record a social-edge update: maintain the companion landmark
        tables incrementally and invalidate the result cache.

        Served answers stay exact with respect to the engine's
        *indexed* graph — edge updates accumulate in :attr:`dynamics`
        (the paper's Section 5.1 batching model: graph updates are far
        rarer than location updates) until :meth:`rebuild_engine` folds
        them into a fresh engine.
        """
        self._check_open()
        tables = self.dynamics
        with self.engine.rw_lock.write_locked():
            tables.update_edge(u, v, weight)

    def rebuild_engine(self, **engine_kwargs) -> GeoSocialEngine:
        """Fold every edge update applied through :meth:`update_edge`
        into a fresh engine and swap it in.

        Builds a new engine *of the same kind* (via ``with_graph``; a
        sharded engine re-shards) from the dynamics snapshot
        (current topology) with the old engine's parameters
        (override any via ``engine_kwargs``), flushes the cache, swaps
        the engine in, and re-anchors the dynamics companion on it.
        The expensive build (landmark Dijkstras, index construction)
        runs *outside* the lock — only the snapshot and the swap hold
        the exclusive side, so queries stall for milliseconds, not the
        whole rebuild; an edge update that slips in mid-build triggers
        a re-snapshot.  The swapped-out engine's pooled resources are
        released (``old.close()``) — callers holding a direct reference
        to it should switch to the returned engine.  Returns the new
        engine.
        """
        self._check_open()
        tables = self.dynamics
        old = self.engine
        while True:
            with old.rw_lock.write_locked():
                graph = tables.snapshot()
                version = tables.updates_applied
            # `with_graph` preserves the engine kind: a sharded engine
            # re-shards over the repaired topology, a single engine
            # rebuilds its indexes; both keep the old normalization so
            # rankings stay comparable across the swap.
            new_engine = old.with_graph(graph, **engine_kwargs)
            with old.rw_lock.write_locked():
                if tables.updates_applied != version:
                    continue  # an edge update interleaved: re-snapshot
                self._swap_engine_locked(old, new_engine)
            # Outside the write lock (no service reader can still hold
            # the old engine once the swap is visible): release the old
            # engine's worker pools so periodic rebuilds don't leak
            # threads for the process lifetime.
            old.close()
            return new_engine

    def _swap_engine_locked(self, old: GeoSocialEngine, new_engine: GeoSocialEngine) -> None:
        """Make ``new_engine`` the served engine (caller holds ``old``'s
        exclusive lock): re-home the invalidation listeners, flush the
        cache, publish the engine, and re-anchor the dynamics companion
        (when one exists) on the new graph.  Downstream swap detection —
        the stream layer's ``_ensure_current_engine`` identity check —
        needs nothing more than the ``self.engine`` assignment."""
        if self.cache is not None:
            old.remove_location_listener(self._on_location_update)
            new_engine.add_location_listener(self._on_location_update)
            self.cache.invalidate_all()
        self.engine = new_engine
        # The old engine's column cache dies with it; the new engine
        # starts from a fresh (empty) cache, re-sized to this service's
        # requested byte budget so the knob survives rebuilds.
        self._apply_social_budget(new_engine)
        with self._dynamics_lock:
            if self._dynamics is not None:
                from repro.graph.dynamics import DynamicLandmarkTables

                self._attach_dynamics_locked(
                    DynamicLandmarkTables(new_engine.graph, new_engine.landmarks.copy())
                )

    def replace_engine(self, new_engine: GeoSocialEngine) -> GeoSocialEngine:
        """Swap in an externally built engine — the restore path of
        :class:`~repro.store.SnapshotManager` — through the same
        cache-flush / listener / dynamics re-anchor sequence as
        :meth:`rebuild_engine`, so every downstream layer (result cache,
        update stream, standing subscriptions) observes the swap
        identically.  Edge updates batched against the old engine are
        discarded with it: a restore rewinds to the snapshot's topology.
        The old engine's pools are released; returns the new engine."""
        self._check_open()
        if new_engine.graph.n != self.engine.graph.n:
            raise ValueError(
                f"replacement engine covers {new_engine.graph.n} users, "
                f"the served one {self.engine.graph.n}"
            )
        old = self.engine
        with old.rw_lock.write_locked():
            self._swap_engine_locked(old, new_engine)
        old.close()
        return new_engine

    @property
    def pending_edge_updates(self) -> int:
        """Edge updates applied through :meth:`update_edge` since the
        last :meth:`rebuild_engine` (0 with no dynamics companion) —
        what :class:`~repro.store.SnapshotManager` consults to decide
        whether a snapshot must fold the update stream first."""
        tables = self._dynamics
        return tables.updates_applied if tables is not None else 0

    def snapshots(self, root) -> "object":
        """A :class:`~repro.store.SnapshotManager` rooted at ``root``
        taking crash-consistent snapshots of (and restoring into) this
        service."""
        from repro.store import SnapshotManager

        return SnapshotManager(self, root)

    # -- invalidation listeners (fire inside the update's write lock
    #    when driven through this service; the cache takes its own lock
    #    so direct engine updates stay safe too) -----------------------

    def _on_location_update(self, user: int, x: float | None, y: float | None) -> None:
        if self.cache is None:
            return
        outcome = self.cache.invalidate_location_update(
            user,
            x,
            y,
            query_location=self.engine.locations.get,
            d_max=self.engine.normalization.d_max,
        )
        # The outcome carries its own full-flush flag, so concurrent
        # invalidations attribute their counters exactly (no
        # read-around-the-call races on the shared cache stats).
        with self._stats_lock:
            self.stats.invalidated_entries += int(outcome)
            self.stats.repaired_entries += outcome.repaired
            self.stats.reused_entries += outcome.reused
            if outcome.full_flush:
                self.stats.full_invalidations += 1

    def _on_edge_update(self, u: int, v: int, weight: float | None) -> None:
        try:
            # The social column cache is edge-epoch keyed: an edge update
            # may change any distance from any source, so drop every
            # column before any downstream consumer can observe the new
            # topology.  (Location moves, by contrast, never touch it.)
            social = getattr(self.engine, "social_cache", None)
            if social is not None:
                social.invalidate_all()
            if self.cache is None:
                return
            outcome = self.cache.invalidate_edge_update(
                u, v, neighbors_of=lambda vertex: (nbr for nbr, _ in self.engine.graph.neighbors(vertex))
            )
            with self._stats_lock:
                self.stats.invalidated_entries += int(outcome)
                self.stats.reused_entries += outcome.reused
                if outcome.full_flush:
                    self.stats.full_invalidations += 1
        finally:
            # Snapshot: a listener may detach itself concurrently.
            for listener in list(self._edge_listeners):
                listener(u, v, weight)

    # -- introspection -------------------------------------------------

    def cache_info(self) -> dict:
        """Cache statistics snapshot: the result cache's counters at the
        top level (absent when result caching is off) plus the engine's
        social column cache under ``"social"`` (absent when the engine
        carries none) — so ``/stats``, ``/metrics``, and ``repro stats``
        surface both caches from one call."""
        info: dict = {}
        if self.cache is not None:
            stats = self.cache.stats
            info.update(
                {
                    "size": len(self.cache),
                    "capacity": self.cache.capacity,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": stats.hit_rate,
                    "evictions": stats.evictions,
                    "invalidated": stats.invalidated,
                    "repaired": stats.repaired,
                    "reused": stats.reused,
                    "full_invalidations": stats.full_invalidations,
                    "epoch": self.cache.epoch,
                }
            )
        social = getattr(self.engine, "social_cache", None)
        if social is not None:
            info["social"] = social.info()
        return info

    def __repr__(self) -> str:
        cache = len(self.cache) if self.cache is not None else "off"
        return (
            f"QueryService(workers={self.max_workers}, cache={cache}, "
            f"served={self.stats.requests})"
        )
