"""Figure 10: AIS-BID vs AIS− vs AIS."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.figures import AIS_VERSIONS
from repro.bench.workloads import get_bundle

# AIS-BID repeats a from-scratch bidirectional search per evaluation —
# the paper's point is precisely how expensive that is, so the sweep
# uses the two ends of the k range rather than all five points.
_K_POINTS = (min(PROFILE.k_values), max(PROFILE.k_values))


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
@pytest.mark.parametrize("k", _K_POINTS)
@pytest.mark.parametrize("method", AIS_VERSIONS)
def test_fig10_version_sweep(benchmark, kind, k, method):
    bundle = get_bundle(kind, PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method, k, PROFILE.default_alpha
    )


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
def test_fig10_sharing_beats_bid(benchmark, kind):
    """Computation sharing (AIS−) must beat per-evaluation bidirectional
    search (AIS-BID) on both time and pops (paper Figure 10)."""
    from repro.bench.runner import run_method

    bundle = get_bundle(kind, PROFILE)

    def run():
        bid = run_method(bundle.engine, bundle.query_users, "ais-bid", k=PROFILE.default_k)
        minus = run_method(bundle.engine, bundle.query_users, "ais-minus", k=PROFILE.default_k)
        full = run_method(bundle.engine, bundle.query_users, "ais", k=PROFILE.default_k)
        return bid, minus, full

    bid, minus, full = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bid_s"] = round(bid.avg_time, 4)
    benchmark.extra_info["minus_s"] = round(minus.avg_time, 4)
    benchmark.extra_info["full_s"] = round(full.avg_time, 4)
    assert minus.avg_time < bid.avg_time
    assert minus.avg_pops < bid.avg_pops
    # Delayed evaluation must not increase exact evaluations.
    assert full.avg_evaluations <= minus.avg_evaluations
