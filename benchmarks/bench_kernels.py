"""Kernel microbenchmark: scalar vs vectorized data-plane primitives.

Times the three hot-loop kernels (Euclidean distance to a query point,
ALT landmark lower bounds, α-blended scoring) plus the composite
"bulk score" pipeline (distance + ALT bound + blend + top-k selection —
what ``bruteforce`` and the AIS leaf expansion actually run) at
``n ∈ {1e3, 1e4, 1e5}`` for both backends.

Run standalone (prints the table and asserts the acceptance gate:
the vectorized composite must be ≥ 5x the scalar one at n = 1e5)::

    PYTHONPATH=src python benchmarks/bench_kernels.py

Set ``REPRO_KERNELS_GATE=report`` to print without asserting (the
report-only mode CI uses on noisy shared runners).  Without NumPy the
script reports the scalar timings and skips the comparison.
"""

from __future__ import annotations

import math
import os
import random
import time

from repro.backend import HAS_NUMPY, PythonKernels, resolve_backend

INF = math.inf

SIZES = (1_000, 10_000, 100_000)
GATE_SIZE = 100_000
GATE_SPEEDUP = 5.0
M_LANDMARKS = 8
K = 30
REPEATS = 5


class _Tables:
    """Duck-typed landmark tables (``dist`` rows + ``matrix``) with the
    inf-pattern of a real index: a fraction of disconnected vertices."""

    def __init__(self, m: int, n: int, rng: random.Random) -> None:
        self.dist = [
            [rng.uniform(0.0, 8.0) if rng.random() > 0.02 else INF for _ in range(n)]
            for _ in range(m)
        ]
        if HAS_NUMPY:
            import numpy as np

            self.matrix = np.array(self.dist, dtype=np.float64)
        else:  # pragma: no cover - numpy-less environments
            self.matrix = None


def _dataset(n: int, seed: int = 7):
    rng = random.Random(seed)
    xs = [rng.random() if rng.random() > 0.1 else math.nan for _ in range(n)]
    ys = [rng.random() if x == x else math.nan for x in xs]
    tables = _Tables(M_LANDMARKS, n, rng)
    query_vector = tuple(rng.uniform(0.0, 8.0) for _ in range(M_LANDMARKS))
    ids = list(range(n))
    if HAS_NUMPY:
        import numpy as np

        xs = np.array(xs)
        ys = np.array(ys)
        ids = np.arange(n, dtype=np.intp)
    return xs, ys, tables, query_vector, ids


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = INF
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _bench_backend(kernels, xs, ys, tables, query_vector, ids):
    qx, qy = 0.5, 0.5
    w_social, w_spatial = 0.3 / 8.0, 0.7 / 1.4142

    def composite():
        d = kernels.euclidean_to_point(xs, ys, qx, qy, ids)
        lb = kernels.alt_lower_bounds(tables, query_vector, ids)
        scores = kernels.blend(w_social, w_spatial, lb, d)
        kernels.top_k_by_score(scores, ids, K)

    distance = _best_of(lambda: kernels.euclidean_to_point(xs, ys, qx, qy, ids))
    alt = _best_of(lambda: kernels.alt_lower_bounds(tables, query_vector, ids))
    d = kernels.euclidean_to_point(xs, ys, qx, qy, ids)
    lb = kernels.alt_lower_bounds(tables, query_vector, ids)
    blend = _best_of(lambda: kernels.blend(w_social, w_spatial, lb, d))
    bulk = _best_of(composite)
    return {"distance": distance, "alt_bound": alt, "blend": blend, "bulk_score": bulk}


def main() -> None:
    report_only = os.environ.get("REPRO_KERNELS_GATE", "").lower() == "report"
    backends = [PythonKernels()]
    if HAS_NUMPY:
        backends.append(resolve_backend("numpy"))
    else:
        print("numpy unavailable: reporting scalar timings only, gate skipped")

    print(f"{'n':>8}  {'kernel':<12} " + "".join(f"{b.name:>12} " for b in backends) + f"{'speedup':>9}")
    gate_speedup = None
    points = []
    for n in SIZES:
        xs, ys, tables, query_vector, ids = _dataset(n)
        results = {b.name: _bench_backend(b, xs, ys, tables, query_vector, ids) for b in backends}
        for kernel in ("distance", "alt_bound", "blend", "bulk_score"):
            row = f"{n:>8}  {kernel:<12} "
            point = {"n": n, "kernel": kernel}
            for b in backends:
                row += f"{results[b.name][kernel] * 1e3:>10.3f}ms "
                point[f"{b.name}_s"] = results[b.name][kernel]
            if len(backends) == 2:
                speedup = results["python"][kernel] / max(results["numpy"][kernel], 1e-12)
                row += f"{speedup:>8.1f}x"
                point["speedup"] = speedup
                if n == GATE_SIZE and kernel == "bulk_score":
                    gate_speedup = speedup
            points.append(point)
            print(row)
        print()

    from repro.bench.artifacts import write_bench_json

    print(
        "wrote "
        + str(
            write_bench_json(
                "kernels",
                {
                    "sizes": list(SIZES),
                    "repeats": REPEATS,
                    "gate_size": GATE_SIZE,
                    "gate_speedup_required": GATE_SPEEDUP,
                    "gate_speedup_measured": gate_speedup,
                    "points": points,
                },
            )
        )
    )

    if gate_speedup is not None:
        verdict = f"bulk scoring at n={GATE_SIZE}: {gate_speedup:.1f}x (gate: >= {GATE_SPEEDUP}x)"
        if report_only:
            print(f"[report-only] {verdict}")
        else:
            assert gate_speedup >= GATE_SPEEDUP, verdict
            print(f"PASS {verdict}")


if __name__ == "__main__":
    main()
