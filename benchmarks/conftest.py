"""Shared configuration for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper: every
pytest-benchmark case is one data point (one method at one x-axis
value), timed as a single batch of queries (``rounds=1`` — the paper
averages over repeated *queries*, not repeated batch runs).

Scale comes from ``REPRO_BENCH_PROFILE`` (smoke/quick/full, default
quick); see ``repro/bench/config.py``.
"""

from __future__ import annotations

import pytest

from repro.bench.config import get_profile

PROFILE = get_profile()


@pytest.fixture(scope="session")
def profile():
    return PROFILE


def run_point(benchmark, engine, users, method, k, alpha, t=None):
    """Benchmark one data point: a full query batch, one round."""
    from repro.bench.runner import run_method

    aggregate = benchmark.pedantic(
        run_method,
        args=(engine, users, method),
        kwargs={"k": k, "alpha": alpha, "t": t},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["method"] = method
    benchmark.extra_info["queries"] = aggregate.queries
    benchmark.extra_info["avg_query_time_s"] = round(aggregate.avg_time, 6)
    benchmark.extra_info["pop_ratio"] = round(aggregate.pop_ratio, 4)
    return aggregate
