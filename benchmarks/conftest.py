"""Shared configuration for the benchmark suite.

Each ``bench_*`` file regenerates one table/figure of the paper: every
pytest-benchmark case is one data point (one method at one x-axis
value), timed as a single batch of queries (``rounds=1`` — the paper
averages over repeated *queries*, not repeated batch runs).

Scale comes from ``REPRO_BENCH_PROFILE`` (smoke/quick/full, default
quick); see ``repro/bench/config.py``.
"""

from __future__ import annotations

import pytest

from repro.bench.artifacts import write_bench_json
from repro.bench.config import get_profile

PROFILE = get_profile()

#: measured pytest-benchmark points per bench module, harvested by the
#: autouse fixture below and written as one BENCH_<module>.json each at
#: session end
_RECORDED: dict[str, list[dict]] = {}


def _bench_name(module_name: str) -> str:
    short = module_name.rsplit(".", 1)[-1]
    return short[len("bench_"):] if short.startswith("bench_") else short


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(autouse=True)
def _bench_json_recorder(request):
    """Harvest every measured benchmark case into the module's JSON
    artifact (no-op for plain tests and unmeasured cases)."""
    yield
    fixture = getattr(request.node, "funcargs", {}).get("benchmark")
    meta = getattr(fixture, "stats", None)  # pytest-benchmark Metadata
    stats = getattr(meta, "stats", None)
    if stats is None:
        return
    point = {
        "test": request.node.name,
        "median_s": stats.median,
        "mean_s": stats.mean,
        "rounds": stats.rounds,
        "extra_info": dict(getattr(meta, "extra_info", {}) or {}),
    }
    _RECORDED.setdefault(_bench_name(request.module.__name__), []).append(point)


def pytest_sessionfinish(session, exitstatus):
    for name, points in _RECORDED.items():
        payload = {
            "source": "pytest-benchmark",
            "queries_per_point": PROFILE.queries,
            "points": points,
        }
        try:
            write_bench_json(name, payload)
        except OSError:
            # Read-only checkout (or unwritable REPRO_BENCH_JSON_DIR):
            # the artifact is a convenience, not worth failing a
            # benchmark session over — divert it to the tmp dir.
            import tempfile

            path = write_bench_json(name, payload, tempfile.gettempdir())
            print(f"\nbench artifact dir unwritable; wrote {path} instead")


def run_point(benchmark, engine, users, method, k, alpha, t=None):
    """Benchmark one data point: a full query batch, one round."""
    from repro.bench.runner import run_method

    aggregate = benchmark.pedantic(
        run_method,
        args=(engine, users, method),
        kwargs={"k": k, "alpha": alpha, "t": t},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["method"] = method
    benchmark.extra_info["queries"] = aggregate.queries
    benchmark.extra_info["avg_query_time_s"] = round(aggregate.avg_time, 6)
    benchmark.extra_info["pop_ratio"] = round(aggregate.pop_ratio, 4)
    return aggregate
