"""Figure 13: the high-average-degree Twitter-like dataset."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.figures import MAIN_METHODS
from repro.bench.workloads import get_bundle


@pytest.mark.parametrize("k", PROFILE.k_values)
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig13_by_k(benchmark, k, method):
    bundle = get_bundle("twitter", PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method, k, PROFILE.default_alpha
    )


@pytest.mark.parametrize("alpha", PROFILE.alpha_values)
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig13_by_alpha(benchmark, alpha, method):
    bundle = get_bundle("twitter", PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method, PROFILE.default_k, alpha
    )


def test_fig13_high_degree_shrinks_hop_radius(benchmark):
    """Paper: the higher degree means results are reachable in fewer
    hops than on the default datasets."""
    import math

    from repro.graph.traversal import DijkstraIterator

    def furthest_hops(kind):
        bundle = get_bundle(kind, PROFILE)
        hops = []
        for user in bundle.query_users:
            result = bundle.engine.query(user, k=PROFILE.default_k, alpha=0.3)
            if not result.neighbors:
                continue
            tree = DijkstraIterator(bundle.engine.graph, user)
            target = result.neighbors[-1].user
            if tree.run_until(target) == math.inf:
                continue
            hops.append(len(tree.path_to(target)) - 1)
        return sum(hops) / len(hops)

    twitter, gowalla = benchmark.pedantic(
        lambda: (furthest_hops("twitter"), furthest_hops("gowalla")),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["twitter_avg_hops"] = round(twitter, 2)
    benchmark.extra_info["gowalla_avg_hops"] = round(gowalla, 2)
    assert twitter <= gowalla + 1.0
