"""Approx fast path: sketch-answered queries versus the exact methods.

The sketch trades a certified score-error bound for work: an approx
query touches ``O(sketch entries + spatial column)`` instead of running
a Dijkstra-backed threshold search, so its advantage is largest exactly
where exact search is slowest — high-degree query users, whose social
frontier is widest.  This bench drives a hot-user workload (top of the
degree ranking) at the paper's defaults (``k=30``, ``alpha=0.3``) and
reports:

- **speedup vs best exact** — approx total versus the cheapest exact
  fixed method's total on the same stream (the headline gate);
- **speedup vs bruteforce** — the exact reference the differential
  check uses;
- **bound certification** — for a sampled subset, every reported
  neighbour's approx score is compared to its exact score; the run
  records the worst observed error next to the worst advertised bound
  (the former must never exceed the latter);
- an **alpha sweep** — speedup and bound tightness across the blend
  range (the fast path helps most at low alpha, where exact search
  must settle the most social distances).

Acceptance gates (standalone run)::

    PYTHONPATH=src python benchmarks/bench_approx.py

- approx >= 10x faster than the best exact fixed method on the hot
  workload, and
- every differential case's measured error within its advertised bound.

Set ``REPRO_APPROX_GATE=report`` to print without asserting (CI's
noisy-runner policy); the ``smoke`` profile is always report-only (at
smoke scale exact queries are already microseconds — there is nothing
for the sketch to amortise).  Results are written to
``BENCH_approx.json`` before gating either way.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.bench.artifacts import write_bench_json
from repro.bench.config import get_profile
from repro.core.engine import GeoSocialEngine
from repro.datasets.synthetic import gowalla_like

SPEEDUP_GATE = 10.0
#: exact fixed methods the headline speedup is measured against
EXACT_METHODS = ("sfa", "tsa")
#: hot-workload shape: the paper's default k, blend-regime alpha
HOT_K = 30
HOT_ALPHA = 0.3
ALPHA_SWEEP = (0.1, 0.3, 0.5, 0.7)
#: the sketch's advantage grows with n (exact search settles an ever
#: wider frontier; the sketch stays capped) — quick/full rent a larger
#: instance than the figure benches so the gate measures the regime the
#: fast path exists for
MIN_BENCH_N = 12_000
#: per-query best-of-reps (standard wall-clock noise killer)
REPS = 3
#: users whose approx answers get the full differential scan
DIFFERENTIAL_USERS = 8
TOL = 1e-12


def hot_users(engine, count: int) -> list[int]:
    """Located users from the top of the degree ranking."""
    located = sorted(
        engine.locations.located_users(), key=lambda u: -engine.graph.degree(u)
    )
    return located[:count]


def best_of_reps(engine, users, k, alpha, method: str) -> list[float]:
    passes = []
    for _ in range(REPS):
        times = []
        for user in users:
            start = time.perf_counter()
            engine.query(user, k=k, alpha=alpha, method=method)
            times.append(time.perf_counter() - start)
        passes.append(times)
    return [min(per_query) for per_query in zip(*passes)]


def certify(engine, users, k, alpha) -> dict:
    """Differential bound check: worst measured error versus worst
    advertised bound over every reported neighbour."""
    worst_error = 0.0
    worst_bound = 0.0
    cases = 0
    violations = 0
    for user in users:
        approx = engine.query(user, k=k, alpha=alpha, method="approx")
        exact = {
            nb.user: nb.score
            for nb in engine.query(user, k=engine.graph.n, alpha=alpha, method="bruteforce")
        }
        worst_bound = max(worst_bound, approx.error_bound)
        for nb in approx:
            err = abs(nb.score - exact[nb.user])
            worst_error = max(worst_error, err)
            cases += 1
            if err > approx.error_bound + TOL:
                violations += 1
    return {
        "users": len(users),
        "cases": cases,
        "worst_measured_error": worst_error,
        "worst_advertised_bound": worst_bound,
        "violations": violations,
    }


def main() -> int:
    report_only = os.environ.get("REPRO_APPROX_GATE", "").lower() == "report"
    profile = get_profile()
    if profile.name == "smoke":
        if not report_only:
            report_only = True
            print("[smoke profile: gates report-only — use quick/full to assert]")
        n = profile.gowalla_n
    else:
        n = max(profile.gowalla_n, MIN_BENCH_N)

    dataset = gowalla_like(n=n, seed=profile.seed)
    engine = GeoSocialEngine.from_dataset(
        dataset, num_landmarks=profile.num_landmarks, seed=profile.seed
    )
    build_start = time.perf_counter()
    engine.sketch  # materialise outside every timed window
    sketch_build_s = time.perf_counter() - build_start
    hot = hot_users(engine, max(profile.queries * 4, 12))

    # warm lazy searcher construction on both sides
    for method in (*EXACT_METHODS, "bruteforce", "approx"):
        engine.query(hot[0], k=HOT_K, alpha=HOT_ALPHA, method=method)

    exact_times = {
        m: best_of_reps(engine, hot, HOT_K, HOT_ALPHA, m) for m in EXACT_METHODS
    }
    brute_times = best_of_reps(engine, hot, HOT_K, HOT_ALPHA, "bruteforce")
    approx_times = best_of_reps(engine, hot, HOT_K, HOT_ALPHA, "approx")

    exact_totals = {m: sum(ts) for m, ts in exact_times.items()}
    best_exact = min(exact_totals, key=exact_totals.get)
    approx_total = sum(approx_times)
    speedup = exact_totals[best_exact] / approx_total if approx_total else float("inf")
    brute_speedup = sum(brute_times) / approx_total if approx_total else float("inf")

    differential = certify(engine, hot[:DIFFERENTIAL_USERS], HOT_K, HOT_ALPHA)

    print("== approx fast path: hot-user (degree-ranked) workload ==")
    print(
        f"dataset n={engine.graph.n}, hot users={len(hot)} (best of {REPS} passes), "
        f"k={HOT_K}, alpha={HOT_ALPHA}; sketch: {engine.sketch!r} "
        f"built in {sketch_build_s:.2f}s"
    )
    for method in EXACT_METHODS:
        marker = " (best exact)" if method == best_exact else ""
        print(
            f"  {method:<10} total {exact_totals[method]*1e3:9.1f}ms  "
            f"median {statistics.median(exact_times[method])*1e6:8.1f}us{marker}"
        )
    print(
        f"  {'bruteforce':<10} total {sum(brute_times)*1e3:9.1f}ms  "
        f"median {statistics.median(brute_times)*1e6:8.1f}us"
    )
    print(
        f"  {'approx':<10} total {approx_total*1e3:9.1f}ms  "
        f"median {statistics.median(approx_times)*1e6:8.1f}us"
    )
    print(
        f"\nspeedup vs best exact ({best_exact}): {speedup:.1f}x "
        f"(gate >= {SPEEDUP_GATE}x); vs bruteforce: {brute_speedup:.1f}x"
    )
    print(
        f"bound certification: {differential['cases']} neighbour cases over "
        f"{differential['users']} users — worst measured error "
        f"{differential['worst_measured_error']:.3g} vs worst advertised bound "
        f"{differential['worst_advertised_bound']:.3g}, "
        f"{differential['violations']} violations"
    )

    sweep = []
    for alpha in ALPHA_SWEEP:
        a_exact = {
            m: sum(best_of_reps(engine, hot, HOT_K, alpha, m)) for m in EXACT_METHODS
        }
        a_approx = sum(best_of_reps(engine, hot, HOT_K, alpha, "approx"))
        bounds = [
            engine.query(u, k=HOT_K, alpha=alpha, method="approx").error_bound
            for u in hot[:DIFFERENTIAL_USERS]
        ]
        row = {
            "alpha": alpha,
            "speedup_vs_best_exact": min(a_exact.values()) / a_approx if a_approx else float("inf"),
            "mean_advertised_bound": statistics.fmean(bounds),
        }
        sweep.append(row)
        print(
            f"  alpha={alpha}: speedup {row['speedup_vs_best_exact']:5.1f}x, "
            f"mean bound {row['mean_advertised_bound']:.3g}"
        )

    payload = {
        "workload": {
            "n": engine.graph.n,
            "hot_users": len(hot),
            "reps": REPS,
            "k": HOT_K,
            "alpha": HOT_ALPHA,
            "seed": profile.seed,
        },
        "sketch": {
            "max_entries": engine.sketch.max_entries,
            "entry_count": engine.sketch.entry_count(),
            "empirical_half": engine.sketch.empirical_half,
            "build_s": sketch_build_s,
        },
        "exact_total_s": exact_totals,
        "bruteforce_total_s": sum(brute_times),
        "approx_total_s": approx_total,
        "approx_median_s": statistics.median(approx_times),
        "speedup_vs_best_exact": speedup,
        "speedup_vs_bruteforce": brute_speedup,
        "best_exact": best_exact,
        "differential": differential,
        "alpha_sweep": sweep,
        "gates": {"speedup_min": SPEEDUP_GATE, "bound_violations_max": 0},
    }
    # Written before gating: a failed gate still leaves the numbers on
    # disk for the cross-PR perf trajectory.
    print(f"wrote {write_bench_json('approx', payload)}")

    verdict = (
        f"speedup {speedup:.1f}x (>= {SPEEDUP_GATE}x) and "
        f"{differential['violations']} bound violations (== 0)"
    )
    if report_only:
        print(f"[report-only] {verdict}")
    else:
        assert differential["violations"] == 0, verdict
        assert speedup >= SPEEDUP_GATE, verdict
        print(f"PASS {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
