"""Figure 9: effect of the preference parameter alpha."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.figures import MAIN_METHODS
from repro.bench.workloads import get_bundle


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
@pytest.mark.parametrize("alpha", PROFILE.alpha_values)
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig9_alpha_sweep(benchmark, kind, alpha, method):
    bundle = get_bundle(kind, PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method, PROFILE.default_k, alpha
    )


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
def test_fig9_sfa_improves_with_alpha(benchmark, kind):
    """SFA examines vertices in social order, so a larger alpha
    (stronger social weight) tightens its bound (paper Section 6)."""
    from repro.bench.runner import run_method

    bundle = get_bundle(kind, PROFILE)

    def run():
        lo = run_method(bundle.engine, bundle.query_users, "sfa", k=PROFILE.default_k, alpha=0.1)
        hi = run_method(bundle.engine, bundle.query_users, "sfa", k=PROFILE.default_k, alpha=0.9)
        return lo, hi

    lo, hi = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pops_alpha_0.1"] = lo.avg_pops
    benchmark.extra_info["pops_alpha_0.9"] = hi.avg_pops
    assert hi.avg_pops <= lo.avg_pops
