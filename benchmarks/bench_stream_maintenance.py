"""Stream maintenance vs recompute-per-update: the amortized cost of
keeping standing top-k queries current.

A fleet of standing queries rides a mostly-stable Zipf update stream
(see :mod:`repro.bench.stream_workload`): most moves are far from
every subscription and discharge as O(1) NO-OPs, a few repair a single
candidate, and only a handful force a full recompute.  The baseline —
what a server without incremental maintenance must do — re-runs every
standing query after every update.

Run standalone (prints the table and asserts the acceptance gate: the
maintained strategy must be ≥ 5x cheaper per update, with results
verified equal to the baseline's)::

    PYTHONPATH=src python benchmarks/bench_stream_maintenance.py

Set ``REPRO_STREAM_GATE=report`` to print without asserting (the
report-only mode CI uses on noisy shared runners, same policy as
``REPRO_KERNELS_GATE`` / ``REPRO_SHARDED_GATE``).
"""

from __future__ import annotations

import os

from repro.bench.config import get_profile
from repro.bench.stream_workload import stream_maintenance

GATE_SPEEDUP = 5.0


def main() -> int:
    from repro.bench.artifacts import tables_payload, write_bench_json

    report_only = os.environ.get("REPRO_STREAM_GATE", "").lower() == "report"
    profile = get_profile()
    tables = list(stream_maintenance(profile))
    summary = {}
    verdicts = []
    for table in tables:
        print(table.to_text())
        speedup = table.column("Speedup")[-1]
        noops = table.column("NO-OP")[-1]
        assert "verified equal" in table.notes, table.notes
        summary = {"amortized_speedup": speedup, "noop_classifications": noops}
        verdicts.append(
            (
                speedup,
                f"amortized speedup over recompute-per-update: {speedup:.1f}x "
                f"({noops} NO-OP classifications; gate: >= {GATE_SPEEDUP}x)",
            )
        )
    # The artifact is written before gating, so a failed gate still
    # leaves the measured numbers on disk for the perf trajectory.
    payload = tables_payload(tables)
    payload.update(summary)
    payload["gate_speedup_required"] = GATE_SPEEDUP
    print(f"wrote {write_bench_json('stream_maintenance', payload)}")
    for speedup, verdict in verdicts:
        if report_only:
            print(f"[report-only] {verdict}")
        else:
            assert speedup >= GATE_SPEEDUP, verdict
            print(f"PASS {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
