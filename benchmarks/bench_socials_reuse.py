"""Cross-query social-distance reuse: warm column cache vs cold engine.

Real SSRQ traffic is heavily skewed — a few hot users issue most of the
queries — and every forward-deterministic method pays for the same
object first: the social-distance column from the query user.  The
:class:`~repro.social.SocialColumnCache` makes that column a one-time
cost per (user, edge-epoch): the first query fills (or parks) it, every
repeat answers by a columnar scan or a resumed expansion.  This bench
drives a Zipf-distributed hot-user request stream (mixed methods, mixed
alphas) through two otherwise identical engines — cache enabled vs
``social_cache_bytes=0`` — and reports:

- **amortized speedup** — cold stream total over warm stream total,
  *including* the warm engine's fill cost (the cache is flushed before
  every timed pass, so each pass pays its own misses);
- **bit-identity** — every request in the stream is answered by both
  engines and compared field-for-field (the cache is a pure
  performance layer: any divergence fails the run before any gate);
- **fused same-user batching** — one :func:`~repro.social.fused.
  fused_variants` pass over several (k, alpha) variants versus the
  same variants as sequential cold queries (reported, not gated).

Acceptance gate (standalone run)::

    PYTHONPATH=src python benchmarks/bench_socials_reuse.py

- warm stream >= 3x faster than cold, amortized over the whole stream.

Set ``REPRO_SOCIALS_GATE=report`` to print without asserting (CI's
noisy-runner policy); the ``smoke`` profile is always report-only.
Results are written to ``BENCH_socials.json`` before gating either way.
"""

from __future__ import annotations

import os
import random
import statistics
import time

from repro.bench.artifacts import write_bench_json
from repro.bench.config import get_profile
from repro.core.engine import GeoSocialEngine
from repro.datasets.synthetic import gowalla_like
from repro.social.fused import fused_variants

SPEEDUP_GATE = 3.0
#: distinct hot query users (Zipf ranks 1..H over the degree ranking)
HOT_USERS = 8
#: the stream mixes the forward-deterministic searchers; the full-scan
#: reference runs its expansion to exhaustion, so its first occurrence
#: per user promotes that user's column to *full* — after which every
#: threshold searcher answers by one columnar scan
STREAM_METHODS = ("sfa", "spa", "tsa", "bruteforce")
STREAM_ALPHAS = (0.3, 0.5, 0.7)
STREAM_K = 10
#: stream length multiplier over the hot-user count: ~10 repeats per
#: user on average, the regime amortization exists for
STREAM_FACTOR = 10
#: cold expansions grow with n while warm scans stay one pass, so the
#: gate is measured above bench-figure scale (same policy as approx)
MIN_BENCH_N = 12_000
REPS = 3
#: (k, alpha) variants per user in the fused-batch section
FUSED_VARIANTS = ((10, 0.3), (30, 0.3), (10, 0.5), (30, 0.5), (20, 0.7))


def hot_users(engine, count: int) -> list[int]:
    """Located users from the top of the degree ranking."""
    located = sorted(
        engine.locations.located_users(), key=lambda u: -engine.graph.degree(u)
    )
    return located[:count]


def zipf_stream(hot: list[int], length: int, seed: int) -> list[tuple]:
    """A request stream whose users follow Zipf ranks over ``hot``."""
    rng = random.Random(seed)
    weights = [1.0 / rank for rank in range(1, len(hot) + 1)]
    return [
        (
            rng.choices(hot, weights=weights)[0],
            STREAM_K,
            rng.choice(STREAM_ALPHAS),
            rng.choice(STREAM_METHODS),
        )
        for _ in range(length)
    ]


def run_stream(engine, stream) -> float:
    """Wall-clock total of answering ``stream`` in order; a warm
    engine's cache is flushed first so every pass pays its own fill."""
    cache = engine.social_cache
    if cache is not None:
        cache.invalidate_all()
    start = time.perf_counter()
    for user, k, alpha, method in stream:
        engine.query(user, k=k, alpha=alpha, method=method)
    return time.perf_counter() - start


def fingerprint(result):
    return [(nb.user, nb.score, nb.social, nb.spatial) for nb in result.neighbors]


def main() -> int:
    report_only = os.environ.get("REPRO_SOCIALS_GATE", "").lower() == "report"
    profile = get_profile()
    if profile.name == "smoke":
        if not report_only:
            report_only = True
            print("[smoke profile: gates report-only — use quick/full to assert]")
        n = profile.gowalla_n
    else:
        n = max(profile.gowalla_n, MIN_BENCH_N)

    dataset = gowalla_like(n=n, seed=profile.seed)
    warm = GeoSocialEngine.from_dataset(
        dataset, num_landmarks=profile.num_landmarks, seed=profile.seed
    )
    cold = GeoSocialEngine.from_dataset(
        dataset,
        num_landmarks=profile.num_landmarks,
        seed=profile.seed,
        social_cache_bytes=0,
    )
    hot = hot_users(warm, HOT_USERS)
    stream = zipf_stream(hot, HOT_USERS * STREAM_FACTOR, profile.seed)

    # differential pass first (untimed): the cache must be invisible in
    # the answers before its speed means anything
    mismatches = 0
    for user, k, alpha, method in stream:
        got = warm.query(user, k=k, alpha=alpha, method=method)
        ref = cold.query(user, k=k, alpha=alpha, method=method)
        if fingerprint(got) != fingerprint(ref):
            mismatches += 1
    assert mismatches == 0, f"{mismatches} warm results diverged from cold"

    warm_totals = [run_stream(warm, stream) for _ in range(REPS)]
    cold_totals = [run_stream(cold, stream) for _ in range(REPS)]
    warm_total = min(warm_totals)
    cold_total = min(cold_totals)
    speedup = cold_total / warm_total if warm_total else float("inf")
    cache_info = warm.social_cache.info()

    # fused same-user batch: one column materialisation + V columnar
    # passes vs V independent cold queries
    fused_user = hot[0]
    variants = [(k, alpha, "sfa") for k, alpha in FUSED_VARIANTS]
    fused_times, seq_times = [], []
    for _ in range(REPS):
        warm.social_cache.invalidate_all()
        start = time.perf_counter()
        fused = fused_variants(warm, fused_user, variants)
        fused_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        seq = [
            cold.query(fused_user, k=k, alpha=alpha, method="sfa")
            for k, alpha in FUSED_VARIANTS
        ]
        seq_times.append(time.perf_counter() - start)
    for got, ref in zip(fused, seq):
        assert fingerprint(got) == fingerprint(ref), "fused result diverged"
    fused_speedup = (
        min(seq_times) / min(fused_times) if min(fused_times) else float("inf")
    )

    print("== social column reuse: Zipf hot-user stream ==")
    print(
        f"dataset n={warm.graph.n}, stream={len(stream)} requests over "
        f"{len(hot)} hot users (Zipf), methods={STREAM_METHODS}, "
        f"alphas={STREAM_ALPHAS}, k={STREAM_K}, best of {REPS} passes"
    )
    print(
        f"  cold total {cold_total*1e3:9.1f}ms   "
        f"({statistics.median(cold_totals)*1e3:.1f}ms median pass)"
    )
    print(
        f"  warm total {warm_total*1e3:9.1f}ms   "
        f"({statistics.median(warm_totals)*1e3:.1f}ms median pass, "
        f"fill included)"
    )
    print(
        f"  last warm pass: hits={cache_info['hits']} "
        f"resumes={cache_info['resumes']} misses={cache_info['misses']} "
        f"columns={cache_info['columns']} bytes={cache_info['bytes']}"
    )
    print(f"\namortized speedup: {speedup:.1f}x (gate >= {SPEEDUP_GATE}x)")
    print(
        f"fused batch ({len(FUSED_VARIANTS)} variants, one user): "
        f"{fused_speedup:.1f}x vs sequential cold queries (reported)"
    )

    payload = {
        "workload": {
            "n": warm.graph.n,
            "hot_users": len(hot),
            "stream": len(stream),
            "methods": list(STREAM_METHODS),
            "alphas": list(STREAM_ALPHAS),
            "k": STREAM_K,
            "reps": REPS,
            "seed": profile.seed,
        },
        "cold_total_s": cold_total,
        "warm_total_s": warm_total,
        "amortized_speedup": speedup,
        "differential_mismatches": mismatches,
        "cache": cache_info,
        "fused": {
            "variants": [list(v) for v in FUSED_VARIANTS],
            "fused_s": min(fused_times),
            "sequential_s": min(seq_times),
            "speedup": fused_speedup,
        },
        "gates": {"amortized_speedup_min": SPEEDUP_GATE, "mismatches_max": 0},
    }
    # Written before gating: a failed gate still leaves the numbers on
    # disk for the cross-PR perf trajectory.
    print(f"wrote {write_bench_json('socials', payload)}")

    verdict = f"amortized speedup {speedup:.1f}x (>= {SPEEDUP_GATE}x)"
    if report_only:
        print(f"[report-only] {verdict}")
    else:
        assert speedup >= SPEEDUP_GATE, verdict
        print(f"PASS {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
