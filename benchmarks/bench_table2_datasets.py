"""Table 2: dataset statistics (build cost + calibration checks)."""

import pytest

from benchmarks.conftest import PROFILE
from repro.bench.figures import table2
from repro.bench.workloads import get_bundle


@pytest.mark.parametrize("kind", ["gowalla", "foursquare", "twitter"])
def test_table2_dataset_build(benchmark, kind):
    """Times dataset+engine construction; asserts Table 2 calibration."""
    bundle = benchmark.pedantic(get_bundle, args=(kind, PROFILE), rounds=1, iterations=1)
    stats = bundle.dataset.stats()
    benchmark.extra_info.update(stats)
    if kind == "twitter":
        assert stats["avg_degree"] > 40  # paper: 57.7
        assert stats["coverage"] == 1.0
    else:
        assert 8 <= stats["avg_degree"] <= 12  # paper: 9.7 / 9.5
        expected = 0.544 if kind == "gowalla" else 0.603
        assert abs(stats["coverage"] - expected) < 0.03


def test_table2_rows(benchmark):
    """Regenerates the Table 2 rows."""
    tables = benchmark.pedantic(table2, args=(PROFILE,), rounds=1, iterations=1)
    print()
    print(tables[0].to_text())
    assert len(tables[0].rows) == 3
