"""Figure 7: the nature of SSRQ — hop statistics and Jaccard overlap."""

from benchmarks.conftest import PROFILE
from repro.bench.figures import fig7a, fig7b


def test_fig7a_hop_statistics(benchmark):
    tables = benchmark.pedantic(fig7a, args=(PROFILE,), rounds=1, iterations=1)
    table = tables[0]
    print()
    print(table.to_text())
    # Results span multiple hops (paper: up to ~8); at least one row
    # must reach beyond the immediate friends.
    assert max(table.column("G. Max. hop")) >= 2
    assert max(table.column("F. Max. hop")) >= 2


def test_fig7b_jaccard_vs_single_domain(benchmark):
    tables = benchmark.pedantic(fig7b, args=(PROFILE,), rounds=1, iterations=1)
    table = tables[0]
    print()
    print(table.to_text())
    vs_social = table.column("vs. social")
    vs_spatial = table.column("vs. spatial")
    # As alpha grows, SSRQ approaches the social top-k and departs from
    # the spatial one (the paper's monotone trend).
    assert vs_social[-1] >= vs_social[0]
    assert vs_spatial[-1] <= vs_spatial[0]
