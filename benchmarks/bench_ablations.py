"""Ablation benchmarks beyond the paper's figures.

DESIGN.md calls out the load-bearing design choices; each ablation
removes one and measures the damage:

- social summaries in the aggregate index (vs spatial-only bounds);
- the 1:1 forward/reverse interleave of Algorithm 3 (vs throttled
  forward search — shows why the shared forward search matters);
- landmark count M (the paper fine-tuned M = 8);
- landmark selection strategy (farthest vs random vs degree).
"""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.workloads import get_bundle
from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.engine import GeoSocialEngine


def _ais_with(engine, variant):
    return AggregateIndexSearch(
        engine.graph, engine.locations, engine.landmarks,
        engine.aggregate, engine.normalization, variant,
    )


@pytest.mark.parametrize("method", ["ais", "ais-nosummary"])
def test_ablation_social_summaries(benchmark, method):
    """Dropping the social summaries leaves only spatial cell bounds."""
    bundle = get_bundle("gowalla", PROFILE)
    agg = run_point(
        benchmark, bundle.engine, bundle.query_users, method,
        PROFILE.default_k, PROFILE.default_alpha,
    )
    assert agg.avg_pops > 0


@pytest.mark.parametrize("interleave", [1, 4])
def test_ablation_forward_interleave(benchmark, interleave):
    """Algorithm 3 advances forward and reverse 1:1; throttling the
    forward search starves the meeting test and the β bound."""
    bundle = get_bundle("gowalla", PROFILE)
    searcher = _ais_with(bundle.engine, AISVariant(forward_interleave=interleave))

    def run():
        total = 0
        for user in bundle.query_users:
            total += searcher.search(user, PROFILE.default_k, PROFILE.default_alpha).stats.pops
        return total / len(bundle.query_users)

    pops = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["avg_pops"] = pops


@pytest.mark.parametrize("m", [2, 8, 16])
def test_ablation_landmark_count(benchmark, m):
    """The paper tuned M to 8: too few landmarks -> loose bounds; too
    many -> per-bound evaluation cost grows."""
    bundle = get_bundle("gowalla", PROFILE)
    ds = bundle.dataset

    def build_and_query():
        engine = GeoSocialEngine(
            ds.graph, ds.locations, num_landmarks=m, s=PROFILE.default_s, seed=1
        )
        total = 0.0
        for user in bundle.query_users:
            result = engine.query(user, k=PROFILE.default_k, alpha=PROFILE.default_alpha)
            total += result.stats.pops
        return total / len(bundle.query_users)

    pops = benchmark.pedantic(build_and_query, rounds=1, iterations=1)
    benchmark.extra_info["avg_pops"] = pops


@pytest.mark.parametrize("strategy", ["farthest", "random", "degree"])
def test_ablation_landmark_strategy(benchmark, strategy):
    bundle = get_bundle("gowalla", PROFILE)
    ds = bundle.dataset

    def build_and_query():
        engine = GeoSocialEngine(
            ds.graph, ds.locations,
            num_landmarks=PROFILE.num_landmarks,
            landmark_strategy=strategy, s=PROFILE.default_s, seed=1,
        )
        total = 0.0
        for user in bundle.query_users:
            result = engine.query(user, k=PROFILE.default_k, alpha=PROFILE.default_alpha)
            total += result.stats.pops
        return total / len(bundle.query_users)

    pops = benchmark.pedantic(build_and_query, rounds=1, iterations=1)
    benchmark.extra_info["avg_pops"] = pops
