"""HTTP server under open-loop load: the saturation curve.

Not a paper figure — this benchmarks the serving boundary added on top
of the reproduction (`repro.server`).  A real :class:`ServerThread` is
driven by Poisson arrivals at a fixed *offered* rate (open-loop: the
generator never waits for responses, so queueing delay is measured
instead of hidden — no coordinated omission).  The sweep covers light
load, near-capacity, and deliberate overload; the interesting numbers
are the arrival-anchored p50/p99/p999, the achieved qps, and the shed
rate once admission control starts returning ``429``.

Run as pytest-benchmark cases::

    PYTHONPATH=src python -m pytest benchmarks/bench_server_load.py

or standalone (prints the sweep table, asserts overload sheds while
light load doesn't, and writes ``BENCH_server.json``)::

    PYTHONPATH=src python benchmarks/bench_server_load.py
"""

from __future__ import annotations

import pytest

from repro import QueryService
from repro.bench.server_load import (
    LOAD_FRACTIONS,
    estimate_capacity_qps,
    run_load_point,
    server_load_sweep,
)
from repro.bench.service_workload import zipf_arrivals
from repro.bench.workloads import get_bundle
from repro.server import ServerThread


@pytest.fixture(scope="module")
def served(profile):
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 20, 120), skew=1.1, seed=profile.seed
    )
    with QueryService(bundle.engine, cache_size=0) as service:
        with ServerThread(service, queue_depth=16, workers=2) as handle:
            yield handle, arrivals


@pytest.fixture(scope="module")
def capacity(served, profile):
    handle, arrivals = served
    return estimate_capacity_qps(
        handle.host,
        handle.port,
        arrivals[: max(len(arrivals) // 2, 60)],
        k=profile.default_k,
        alpha=profile.default_alpha,
    )


@pytest.mark.parametrize("label,fraction", LOAD_FRACTIONS)
def test_server_load(benchmark, served, capacity, profile, label, fraction):
    handle, arrivals = served
    point = benchmark.pedantic(
        run_load_point,
        args=(handle.host, handle.port, arrivals),
        kwargs=dict(
            offered_qps=max(capacity * fraction, 1.0),
            k=profile.default_k,
            alpha=profile.default_alpha,
            label=label,
            seed=profile.seed,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["offered_qps"] = round(point.offered_qps, 1)
    benchmark.extra_info["achieved_qps"] = round(point.achieved_qps, 1)
    benchmark.extra_info["shed_rate"] = round(point.shed_rate, 4)
    benchmark.extra_info["p50_ms"] = round(point.latency_ms(0.50), 2)
    benchmark.extra_info["p99_ms"] = round(point.latency_ms(0.99), 2)
    benchmark.extra_info["p999_ms"] = round(point.latency_ms(0.999), 2)
    assert point.errors == 0, "load generator saw non-200/429 responses"


def test_overload_sheds_light_load_does_not(served, capacity, profile):
    """Acceptance: past saturation the admission queue sheds (429s),
    under light load it doesn't (or barely), and every response is
    either served or cleanly shed — never a 5xx."""
    handle, arrivals = served
    light = run_load_point(
        handle.host, handle.port, arrivals,
        offered_qps=max(capacity * 0.4, 1.0),
        k=profile.default_k, alpha=profile.default_alpha, label="light",
        seed=profile.seed,
    )
    overload = run_load_point(
        handle.host, handle.port, arrivals,
        offered_qps=max(capacity * 2.5, 2.0),
        k=profile.default_k, alpha=profile.default_alpha, label="overload",
        seed=profile.seed,
    )
    assert light.errors == 0 and overload.errors == 0
    assert overload.shed > 0, "2.5x capacity must trip admission control"
    assert light.shed_rate < overload.shed_rate
    assert overload.ok > 0, "shedding must not starve admitted requests"


def main() -> int:
    import os

    from repro.bench.artifacts import write_bench_json

    capacity, points, table = server_load_sweep()
    print(table.to_text())
    print(f"\nclosed-loop calibrated capacity: {capacity:.1f} qps")
    by_label = {p.label: p for p in points}
    overload = by_label["overload"]
    light = by_label["light"]
    # REPRO_SERVER_GATE=report: the same noisy-runner policy as the
    # other wall-clock gates — capacity calibration on a shared VM can
    # drift between the calibration pass and the sweep.
    if os.environ.get("REPRO_SERVER_GATE", "assert") != "report":
        assert overload.shed > 0, "overload point must shed"
        assert light.shed_rate < overload.shed_rate
    elif overload.shed == 0:
        print("REPORT: overload point did not shed (gate skipped)")
    print(
        f"overload ({overload.offered_qps:.0f} qps offered): "
        f"{overload.achieved_qps:.1f} qps served, "
        f"{overload.shed_rate:.1%} shed, p99 {overload.latency_ms(0.99):.1f} ms"
    )
    payload = {
        "capacity_qps": capacity,
        "points": [p.payload() for p in points],
    }
    print(f"wrote {write_bench_json('server', payload)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
