"""Service-layer throughput: queries/sec versus batch size, worker
count, and result caching under Zipf-skewed arrivals.

Not a paper figure — this benchmarks the serving layer added on top of
the reproduction (`repro.service`).  Each case serves the *same* arrival
sequence; the interesting numbers are the speedups over the sequential
no-cache baseline and the cache hit rate the skew produces.

Run as pytest-benchmark cases::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py

or standalone (prints the throughput table and asserts the >1x
batching+caching speedup)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import pytest

from repro.bench.service_workload import (
    run_throughput_point,
    service_throughput,
    zipf_arrivals,
)
from repro.bench.workloads import get_bundle

CASES = [
    ("baseline-seq-nocache", 1, 1, 0),
    ("batch16-workers4-nocache", 16, 4, 0),
    ("seq-cache4096", 1, 1, 4096),
    ("batch64-workers4-cache4096", 64, 4, 4096),
]


def _workload(profile):
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 25, 100), skew=1.1, seed=profile.seed
    )
    return bundle.engine, arrivals


@pytest.mark.parametrize("label,batch,workers,cache", CASES)
def test_service_throughput(benchmark, profile, label, batch, workers, cache):
    engine, arrivals = _workload(profile)
    point = benchmark.pedantic(
        run_throughput_point,
        args=(engine, arrivals),
        kwargs=dict(
            label=label,
            batch_size=batch,
            workers=workers,
            cache_size=cache,
            k=profile.default_k,
            alpha=profile.default_alpha,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qps"] = round(point.qps, 2)
    benchmark.extra_info["cache_hit_rate"] = round(point.hit_rate, 4)
    benchmark.extra_info["queries"] = point.queries


def test_batching_and_caching_speed_up_skewed_traffic(profile):
    """Acceptance: batching+caching beats the sequential no-cache loop
    (>1x) on a Zipf-skewed workload, with a meaningful hit rate."""
    engine, arrivals = _workload(profile)
    baseline = run_throughput_point(
        engine, arrivals, label="baseline", batch_size=1, workers=1, cache_size=0,
        k=profile.default_k, alpha=profile.default_alpha,
    )
    combined = run_throughput_point(
        engine, arrivals, label="batch+cache", batch_size=64, workers=4,
        cache_size=4096, k=profile.default_k, alpha=profile.default_alpha,
    )
    assert combined.hit_rate > 0.0, "Zipf skew must produce repeat hits"
    speedup = combined.qps / baseline.qps
    assert speedup > 1.0, (
        f"batching+caching must beat the sequential baseline, got {speedup:.2f}x "
        f"(hit rate {combined.hit_rate:.1%})"
    )


def main() -> int:
    from repro.bench.artifacts import tables_payload, write_bench_json

    tables = list(service_throughput())
    best = 0.0
    hit_rate = 0.0
    for table in tables:
        print(table.to_text())
        speedups = table.column("Speedup")
        hit_rates = table.column("Cache hit rate")
        best = max(best, max(speedups))
        hit_rate = max(hit_rate, max(hit_rates))
        print(
            f"\nbest speedup over sequential no-cache baseline: {max(speedups):.2f}x "
            f"(best cache hit rate {max(hit_rates):.1%})"
        )
        assert max(speedups) > 1.0, "expected >1x speedup from batching+caching"
    payload = tables_payload(tables)
    payload.update({"best_speedup": best, "best_cache_hit_rate": hit_rate})
    print(f"wrote {write_bench_json('service_throughput', payload)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
