"""Figure 14: correlation-controlled data and scalability."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.figures import MAIN_METHODS
from repro.bench.workloads import get_bundle

_CORRELATIONS = ("positive", "independent", "negative")


@pytest.mark.parametrize("correlation", _CORRELATIONS)
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig14a_correlation(benchmark, correlation, method):
    bundle = get_bundle(f"correlated-{correlation}", PROFILE)
    users = bundle.query_users * max(3, PROFILE.queries // 2)
    run_point(
        benchmark, bundle.engine, users, method, PROFILE.default_k, PROFILE.default_alpha
    )


def test_fig14a_positive_faster_than_negative(benchmark):
    """Positively correlated social/spatial proximity lets every method
    terminate earlier (paper Figure 14a) — checked on pops, the
    noise-free cost measure."""
    from repro.bench.runner import run_method

    def run():
        out = {}
        for correlation in ("positive", "negative"):
            bundle = get_bundle(f"correlated-{correlation}", PROFILE)
            out[correlation] = run_method(
                bundle.engine, bundle.query_users, "tsa",
                k=PROFILE.default_k, alpha=PROFILE.default_alpha,
            )
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["positive_pops"] = result["positive"].avg_pops
    benchmark.extra_info["negative_pops"] = result["negative"].avg_pops
    assert result["positive"].avg_pops <= result["negative"].avg_pops


@pytest.mark.parametrize("index", [0, 1, 2])
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig14b_scalability(benchmark, index, method):
    bundle = get_bundle(f"scale-{index}", PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method,
        PROFILE.default_k, PROFILE.default_alpha,
    )


def test_fig14b_cost_grows_with_size(benchmark):
    """Run-time/pops grow (roughly linearly) with |V| for every method."""
    from repro.bench.runner import run_method

    def run():
        pops = []
        for index in (0, 2):
            bundle = get_bundle(f"scale-{index}", PROFILE)
            agg = run_method(
                bundle.engine, bundle.query_users, "sfa",
                k=PROFILE.default_k, alpha=PROFILE.default_alpha,
            )
            pops.append((bundle.engine.graph.n, agg.avg_pops))
        return pops

    (n_small, pops_small), (n_big, pops_big) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["pops_small"] = pops_small
    benchmark.extra_info["pops_big"] = pops_big
    assert n_big > n_small
    assert pops_big > pops_small
