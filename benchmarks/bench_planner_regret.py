"""Planner regret: ``method="auto"`` versus every fixed method on a
mixed workload.

The paper's crossover result (Figures 7–10) means any *fixed* method
choice is wrong for part of a mixed workload.  This bench generates a
Zipf-skewed query stream mixing ``k``, ``alpha``, and query-user
degree (hot users are drawn degree-biased), runs every fixed candidate
method over it recording per-query latencies, then runs ``auto`` (one
calibrated planner, online feedback) over the same stream.

Reported metrics:

- **oracle** — the per-query best fixed method's total latency (the
  unachievable lower bound a perfect planner would hit);
- **regret ratio** — ``auto_total / oracle_total``;
- **speedup vs worst** — ``worst_fixed_total / auto_total``.

Acceptance gates (standalone run)::

    PYTHONPATH=src python benchmarks/bench_planner_regret.py

- auto within 1.25x of the per-query oracle, and
- auto >= 2x faster than the worst fixed method.

Set ``REPRO_PLANNER_GATE=report`` to print without asserting (CI's
noisy-runner policy, same as the other wall-clock gates); the
``smoke`` profile is always report-only (its microsecond-scale queries
make planner overhead dominate the oracle total).  Results are written
to ``BENCH_planner.json`` before gating either way.
"""

from __future__ import annotations

import os
import random
import statistics
import time

from repro.bench.artifacts import write_bench_json
from repro.bench.config import get_profile
from repro.core.engine import AUTO, GeoSocialEngine
from repro.datasets.synthetic import gowalla_like
from repro.plan import DEFAULT_CANDIDATES, AdaptivePlanner

ORACLE_GATE = 1.25
WORST_GATE = 2.0
K_CHOICES = (10, 30, 50)
ALPHA_CHOICES = (0.1, 0.3, 0.5, 0.7, 0.9)
#: workload repetitions; per-query cost is the best-of-reps (the
#: standard noise killer — bursty background load otherwise inflates
#: whichever pass it lands on and flips the tight 1.25x gate)
REPS = 2


def build_workload(engine, profile, count: int):
    """A Zipf-skewed mixed stream: hot query users drawn degree-biased
    (rank-ordered by degree, Zipf over ranks), k and alpha mixed."""
    rng = random.Random(profile.seed)
    located = sorted(
        engine.locations.located_users(), key=lambda u: -engine.graph.degree(u)
    )
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(located))]
    queries = []
    for _ in range(count):
        user = rng.choices(located, weights=weights)[0]
        queries.append((user, rng.choice(K_CHOICES), rng.choice(ALPHA_CHOICES)))
    return queries


def _one_pass(engine, queries, method: str) -> list[float]:
    times = []
    for user, k, alpha in queries:
        start = time.perf_counter()
        engine.query(user, k=k, alpha=alpha, method=method)
        times.append(time.perf_counter() - start)
    return times


def run_fixed(engine, queries, method: str) -> list[float]:
    """Per-query best-of-``REPS`` latencies for one fixed method."""
    passes = [_one_pass(engine, queries, method) for _ in range(REPS)]
    return [min(per_query) for per_query in zip(*passes)]


def run_auto(engine, queries) -> tuple[list[float], dict]:
    """Per-query best-of-``REPS`` latencies for ``auto`` (the planner
    keeps learning across passes — steady-state behavior is the thing
    being measured)."""
    passes = [_one_pass(engine, queries, AUTO) for _ in range(REPS)]
    return [min(per_query) for per_query in zip(*passes)], engine.planner.snapshot()


def main() -> int:
    report_only = os.environ.get("REPRO_PLANNER_GATE", "").lower() == "report"
    profile = get_profile()
    if profile.name == "smoke" and not report_only:
        # The smoke workload (n=800, microsecond queries) is too small
        # for the regret gate to be meaningful: planner overhead and
        # exploration dominate the oracle total.  The gates are
        # calibrated for quick/full; smoke always reports.
        report_only = True
        print("[smoke profile: gates report-only — use quick/full to assert]")
    dataset = gowalla_like(n=profile.gowalla_n, seed=profile.seed)
    engine = GeoSocialEngine.from_dataset(
        dataset, num_landmarks=profile.num_landmarks, seed=profile.seed
    )
    queries = build_workload(engine, profile, count=max(profile.queries * 20, 120))

    # Warm every searcher's lazy construction outside the timed windows
    # (both sides benefit identically), then seed the planner with its
    # one-time calibration pass — also outside the serving window, the
    # way a deployment would warm up.
    probe = queries[0]
    for method in DEFAULT_CANDIDATES:
        engine.query(probe[0], k=10, alpha=0.5, method=method)
    engine.planner = AdaptivePlanner(seed=profile.seed)
    engine.planner.calibrate(engine)

    fixed_times = {m: run_fixed(engine, queries, m) for m in DEFAULT_CANDIDATES}
    auto_times, planner_snapshot = run_auto(engine, queries)

    fixed_totals = {m: sum(ts) for m, ts in fixed_times.items()}
    oracle_total = sum(min(ts) for ts in zip(*fixed_times.values()))
    auto_total = sum(auto_times)
    best_fixed = min(fixed_totals, key=fixed_totals.get)
    worst_fixed = max(fixed_totals, key=fixed_totals.get)
    regret_ratio = auto_total / oracle_total if oracle_total else float("inf")
    worst_speedup = fixed_totals[worst_fixed] / auto_total if auto_total else float("inf")

    print("== planner regret: mixed (k, alpha, degree-skew) Zipf workload ==")
    print(
        f"dataset n={engine.graph.n}, queries={len(queries)} (best of {REPS} passes), "
        f"k in {K_CHOICES}, alpha in {ALPHA_CHOICES}"
    )
    for method in DEFAULT_CANDIDATES:
        ts = fixed_times[method]
        marker = " (best)" if method == best_fixed else (" (worst)" if method == worst_fixed else "")
        print(
            f"  {method:<8} total {fixed_totals[method]*1e3:9.1f}ms  "
            f"median {statistics.median(ts)*1e6:8.1f}us{marker}"
        )
    print(
        f"  {'oracle':<8} total {oracle_total*1e3:9.1f}ms  (per-query best fixed)"
    )
    print(
        f"  {'auto':<8} total {auto_total*1e3:9.1f}ms  "
        f"median {statistics.median(auto_times)*1e6:8.1f}us"
    )
    print(
        f"\nregret ratio vs oracle: {regret_ratio:.3f}x (gate <= {ORACLE_GATE}x); "
        f"speedup vs worst fixed ({worst_fixed}): {worst_speedup:.2f}x "
        f"(gate >= {WORST_GATE}x)"
    )
    picks = planner_snapshot.get("per_method", {})
    print(f"auto resolutions: {picks}; explorations: {planner_snapshot.get('explorations')}")

    payload = {
        "workload": {
            "n": engine.graph.n,
            "queries": len(queries),
            "reps": REPS,
            "k_choices": list(K_CHOICES),
            "alpha_choices": list(ALPHA_CHOICES),
            "zipf_skew": 1.1,
            "seed": profile.seed,
        },
        "fixed_total_s": fixed_totals,
        "fixed_median_s": {m: statistics.median(ts) for m, ts in fixed_times.items()},
        "oracle_total_s": oracle_total,
        "auto_total_s": auto_total,
        "auto_median_s": statistics.median(auto_times),
        "regret_ratio": regret_ratio,
        "speedup_vs_worst_fixed": worst_speedup,
        "best_fixed": best_fixed,
        "worst_fixed": worst_fixed,
        "gates": {"oracle_ratio_max": ORACLE_GATE, "worst_speedup_min": WORST_GATE},
        "planner": planner_snapshot,
    }
    # Written before gating: a failed gate still leaves the numbers on
    # disk for the cross-PR perf trajectory.
    print(f"wrote {write_bench_json('planner', payload)}")

    verdict = (
        f"regret {regret_ratio:.3f}x (<= {ORACLE_GATE}x) and "
        f"worst-fixed speedup {worst_speedup:.2f}x (>= {WORST_GATE}x)"
    )
    if report_only:
        print(f"[report-only] {verdict}")
    else:
        assert regret_ratio <= ORACLE_GATE, verdict
        assert worst_speedup >= WORST_GATE, verdict
        print(f"PASS {verdict}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
