"""Figure 12: effect of the grid granularity parameter s."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.workloads import get_bundle

_METHODS = ("spa", "ais-bid", "ais-minus", "ais")


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
@pytest.mark.parametrize("s", PROFILE.s_values)
@pytest.mark.parametrize("method", ["spa", "ais"])
def test_fig12_granularity_sweep(benchmark, kind, s, method):
    bundle = get_bundle(kind, PROFILE, s=s)
    run_point(
        benchmark, bundle.engine, bundle.query_users, method,
        PROFILE.default_k, PROFILE.default_alpha,
    )


@pytest.mark.parametrize("kind", ["gowalla"])
@pytest.mark.parametrize("method", ["ais-bid", "ais-minus"])
def test_fig12_ais_versions_at_extremes(benchmark, kind, method):
    """The slower AIS versions at the two ends of the s range."""
    from repro.bench.runner import run_method

    s_lo, s_hi = min(PROFILE.s_values), max(PROFILE.s_values)

    def run():
        out = []
        for s in (s_lo, s_hi):
            bundle = get_bundle(kind, PROFILE, s=s)
            out.append(
                run_method(
                    bundle.engine, bundle.query_users, method,
                    k=PROFILE.default_k, alpha=PROFILE.default_alpha,
                )
            )
        return out

    lo, hi = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info[f"s={s_lo}_s"] = round(lo.avg_time, 4)
    benchmark.extra_info[f"s={s_hi}_s"] = round(hi.avg_time, 4)
