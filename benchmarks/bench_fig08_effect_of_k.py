"""Figure 8: effect of k on run-time and pop ratio, incl. CH variants."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.figures import CH_METHODS, MAIN_METHODS
from repro.bench.workloads import get_bundle


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
@pytest.mark.parametrize("k", PROFILE.k_values)
@pytest.mark.parametrize("method", MAIN_METHODS)
def test_fig8_main_methods(benchmark, kind, k, method):
    bundle = get_bundle(kind, PROFILE)
    agg = run_point(
        benchmark, bundle.engine, bundle.query_users, method, k, PROFILE.default_alpha
    )
    assert len(agg.results) == 0  # results not retained in timing runs
    assert agg.avg_time > 0


@pytest.mark.parametrize("kind", ["gowalla-ch", "foursquare-ch"])
@pytest.mark.parametrize("k", [min(PROFILE.k_values), PROFILE.default_k])
@pytest.mark.parametrize("method", CH_METHODS)
def test_fig8_ch_variants(benchmark, kind, k, method):
    """CH-backed distance modules, on the reduced CH instances."""
    bundle = get_bundle(kind, PROFILE, queries=PROFILE.ch_queries)
    users = bundle.query_users[: PROFILE.ch_queries]
    agg = run_point(benchmark, bundle.engine, users, method, k, PROFILE.default_alpha)
    assert agg.avg_time > 0


@pytest.mark.parametrize("kind", ["gowalla-ch", "foursquare-ch"])
def test_fig8_ch_slower_than_vanilla(benchmark, kind):
    """The paper's Figure 8 finding: CH variants lose to the vanilla
    methods' shared incremental Dijkstra."""
    from repro.bench.runner import run_method

    bundle = get_bundle(kind, PROFILE, queries=PROFILE.ch_queries)
    users = bundle.query_users[: PROFILE.ch_queries]

    def both():
        vanilla = run_method(bundle.engine, users, "sfa", k=PROFILE.default_k)
        ch = run_method(bundle.engine, users, "sfa-ch", k=PROFILE.default_k)
        return vanilla, ch

    vanilla, ch = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["vanilla_s"] = round(vanilla.avg_time, 4)
    benchmark.extra_info["ch_s"] = round(ch.avg_time, 4)
    assert ch.avg_time > vanilla.avg_time
