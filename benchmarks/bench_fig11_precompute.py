"""Figure 11: graph-distance pre-computation (AIS-Cache) vs t."""

import pytest

from benchmarks.conftest import PROFILE, run_point
from repro.bench.workloads import get_bundle


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
@pytest.mark.parametrize("t", PROFILE.t_values)
def test_fig11_ais_cache(benchmark, kind, t):
    bundle = get_bundle(kind, PROFILE)
    # Pre-computation is offline: build the lists before timing.
    bundle.engine.neighbor_cache(t).prebuild(bundle.query_users)
    run_point(
        benchmark, bundle.engine, bundle.query_users, "ais-cache",
        PROFILE.default_k, PROFILE.default_alpha, t=t,
    )


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
def test_fig11_baseline_ais(benchmark, kind):
    """The flat AIS baseline the cache curve is compared against."""
    bundle = get_bundle(kind, PROFILE)
    run_point(
        benchmark, bundle.engine, bundle.query_users, "ais",
        PROFILE.default_k, PROFILE.default_alpha,
    )


@pytest.mark.parametrize("kind", ["gowalla", "foursquare"])
def test_fig11_fallback_rate_decreases_with_t(benchmark, kind):
    """Larger caches answer more queries without the AIS fallback."""
    from repro.bench.runner import run_method

    bundle = get_bundle(kind, PROFILE)
    t_small, t_large = min(PROFILE.t_values), max(PROFILE.t_values)

    def run():
        rates = []
        for t in (t_small, t_large):
            bundle.engine.neighbor_cache(t).prebuild(bundle.query_users)
            agg = run_method(
                bundle.engine, bundle.query_users, "ais-cache",
                k=PROFILE.default_k, alpha=PROFILE.default_alpha, t=t,
                keep_results=True,
            )
            rates.append(
                sum(r.stats.extra.get("fallback", 0) for r in agg.results) / agg.queries
            )
        return rates

    small_rate, large_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["fallback_small_t"] = small_rate
    benchmark.extra_info["fallback_large_t"] = large_rate
    assert large_rate <= small_rate
