"""Sharded engine scaling: throughput and pruned-shard fraction versus
shard count on the Zipf-skewed service workload.

Not a paper figure — this benchmarks `repro.shard`'s scatter-gather
engine. Each case serves the same arrival sequence (no result cache);
the interesting numbers are the speedup over the 1-shard configuration,
the pruning rate the shard-level MINF bound achieves, and — for the
mixed read/update scenario — whether the warm process pool absorbed the
update stream as shipped deltas instead of cold re-forks.

Run as pytest-benchmark cases::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_scaling.py

or standalone (prints the scaling tables, asserts the acceptance gates,
and writes the tracked ``BENCH_sharded.json`` baseline; gates: nonzero
pruning always; cold re-forks <= 1 under the update stream whenever
fork exists; >=3x at 4 shards whenever the machine has the >=4 cores
that give shard parallelism real margin)::

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.bench.sharded_workload import (
    build_sharded_engine,
    run_sharded_mixed,
    run_sharded_point,
    sharded_scaling,
)
from repro.bench.service_workload import zipf_arrivals
from repro.bench.workloads import get_bundle

SHARD_CASES = [1, 2, 4, 8]

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _workload(profile):
    bundle = get_bundle("gowalla", profile)
    located = list(bundle.dataset.locations.located_users())
    arrivals = zipf_arrivals(
        located, count=max(profile.queries * 25, 100), skew=1.1, seed=profile.seed
    )
    return bundle, arrivals


@pytest.mark.parametrize("shards", SHARD_CASES)
def test_sharded_throughput(benchmark, profile, shards):
    bundle, arrivals = _workload(profile)
    engine = build_sharded_engine(
        bundle.dataset,
        shards,
        profile=profile,
        landmarks=bundle.engine.landmarks,
        normalization=bundle.engine.normalization,
    )
    try:
        point = benchmark.pedantic(
            run_sharded_point,
            args=(engine, arrivals),
            kwargs=dict(k=profile.default_k, alpha=profile.default_alpha),
            rounds=1,
            iterations=1,
        )
    finally:
        engine.close()
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["qps"] = round(point.qps, 2)
    benchmark.extra_info["pruned_fraction"] = round(point.pruned_fraction, 4)
    benchmark.extra_info["searched_per_query"] = round(point.shards_searched_per_query, 3)


def test_pruning_bound_skips_shards(profile):
    """Acceptance: at 4 shards the MINF bound must prune a nonzero
    fraction of non-home shards on the Zipf workload."""
    bundle, arrivals = _workload(profile)
    engine = build_sharded_engine(
        bundle.dataset,
        4,
        profile=profile,
        landmarks=bundle.engine.landmarks,
        normalization=bundle.engine.normalization,
    )
    try:
        point = run_sharded_point(
            engine, arrivals, k=profile.default_k, alpha=profile.default_alpha
        )
    finally:
        engine.close()
    assert point.pruned_fraction > 0.0, (
        "shard-level MINF bound pruned nothing on a spatially clustered "
        "Zipf workload — the bound machinery is broken"
    )


@pytest.mark.skipif(not _HAS_FORK, reason="process backend requires fork")
def test_warm_pool_absorbs_update_stream(profile):
    """Acceptance: under a mixed read/update workload the warm process
    pool must ship the updates to its live workers as deltas — at most
    one cold re-fork round (the expectation is zero).  This is a
    correctness property of delta shipping, not a timing, so it asserts
    on any core count."""
    bundle, arrivals = _workload(profile)
    engine = build_sharded_engine(
        bundle.dataset,
        4,
        profile=profile,
        landmarks=bundle.engine.landmarks,
        normalization=bundle.engine.normalization,
        copy_locations=True,
    )
    try:
        point = run_sharded_mixed(
            engine,
            arrivals,
            backend="process",
            k=profile.default_k,
            alpha=profile.default_alpha,
            seed=profile.seed,
        )
    finally:
        engine.close()
    assert point.updates > 0
    assert point.deltas_shipped > 0, (
        "the update stream never reached the warm workers as deltas"
    )
    assert point.cold_reforks <= 1, (
        f"warm pool cold re-forked {point.cold_reforks} rounds under the "
        f"update stream — delta shipping is not keeping the workers warm"
    )


def main() -> int:
    from repro.bench.artifacts import tables_payload, write_bench_json

    tables = list(sharded_scaling())
    scaling = next(t for t in tables if t.experiment == "Sharded")
    mixed = next(t for t in tables if t.experiment == "Sharded mixed")
    for table in tables:
        print(table.to_text())

    shards_col = scaling.column("Shards")
    backend_col = scaling.column("Backend")
    speedups = scaling.column("Speedup")
    pruned = scaling.column("Pruned fraction")
    by_key = {
        (s, b): (sp, pf)
        for s, b, sp, pf in zip(shards_col, backend_col, speedups, pruned)
    }
    four_speedup = max(by_key[(4, b)][0] for b in ("inline", "process"))
    four_pruned = max(by_key[(4, b)][1] for b in ("inline", "process"))
    cores = os.cpu_count() or 1
    print(
        f"\n4-shard speedup over 1 shard: {four_speedup:.2f}x "
        f"(pruned fraction {four_pruned:.1%}, {cores} core(s))"
    )
    assert four_pruned > 0.0, "expected a nonzero shard-pruning rate"

    mixed_rows = dict(
        zip(
            mixed.column("Backend"),
            zip(
                mixed.column("Updates"),
                mixed.column("Cold re-forks"),
                mixed.column("Re-forks"),
                mixed.column("Deltas shipped"),
            ),
        )
    )
    summary = {
        "four_shard_speedup": four_speedup,
        "four_shard_pruned_fraction": four_pruned,
        "cores": cores,
        "mixed": {
            backend: {
                "updates": updates,
                "cold_reforks": cold,
                "reforks": reforks,
                "deltas_shipped": deltas,
            }
            for backend, (updates, cold, reforks, deltas) in mixed_rows.items()
        },
    }
    if "process" in mixed_rows:
        updates, cold, _, deltas = mixed_rows["process"]
        print(
            f"warm pool under updates: {updates} updates, "
            f"{deltas} deltas shipped, {cold} cold re-fork round(s)"
        )
        # Schedule-independent correctness: delta shipping must keep the
        # forked workers warm across the update stream regardless of how
        # many cores the box has.
        assert cold <= 1, (
            f"warm pool cold re-forked {cold} rounds under the update "
            f"stream — delta shipping is not keeping the workers warm"
        )

    # The 4-shard configuration does ~1.3x the single-index work (the
    # home shard re-derives roughly the global top-k), so with P cores
    # the warm process backend's ceiling is ~P/1.3: the >=3x gate needs
    # >= 4 cores to have real margin; fewer cores cannot express shard
    # parallelism.  REPRO_SHARDED_GATE overrides the core-count
    # heuristic: "strict" always asserts, "report" never does (what CI
    # uses — shared noisy-neighbor runners make a wall-clock gate flake
    # on changes unrelated to sharding).
    gate = os.environ.get("REPRO_SHARDED_GATE", "auto")
    if gate == "strict" or (gate == "auto" and cores >= 4):
        assert four_speedup >= 3.0, (
            f"expected >=3x at 4 shards over 1 shard with {cores} cores, "
            f"got {four_speedup:.2f}x"
        )
    else:
        print(
            f"(gate={gate}, {cores} core(s): the 3x gate is reported, "
            f"not asserted — best 4-shard speedup here {four_speedup:.2f}x)"
        )
    payload = tables_payload(tables)
    payload.update(summary)
    print(f"wrote {write_bench_json('sharded', payload)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
