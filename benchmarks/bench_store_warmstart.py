"""Warm-start benchmark: mmap snapshot load vs cold engine rebuild.

The store's performance claim: restart is O(read) instead of
O(rebuild).  A cold start re-runs landmark selection and M Dijkstra
sweeps over the social graph plus grid construction; a warm start
memory-maps the persisted columns and rebuilds only the cheap derived
state (CSR adoption, grid cells from arrays, aggregate summaries).
This script times both at ``n ∈ {1e4, 1e5}``, checks the loaded
engine answers a probe query identically, and asserts the acceptance
gate: **warm load must be ≥ 5x faster than cold rebuild at n = 1e5**.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store_warmstart.py

Set ``REPRO_STORE_GATE=report`` to print without asserting (the
report-only mode CI uses on noisy shared runners).  Results land in
``BENCH_store.json`` — the tracked warm-start perf artifact.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro import GeoSocialEngine, gowalla_like, load_engine

SIZES = (10_000, 100_000)
GATE_SIZE = 100_000
GATE_SPEEDUP = 5.0
NUM_LANDMARKS = 4
SEED = 7


def _probe(engine):
    user = next(iter(engine.locations.located_users()))
    return [(nb.user, nb.score) for nb in engine.query(user=user, k=10, alpha=0.3)]


def bench_size(n: int, workdir: str) -> dict:
    dataset = gowalla_like(n=n, seed=SEED)

    start = time.perf_counter()
    engine = GeoSocialEngine.from_dataset(dataset, num_landmarks=NUM_LANDMARKS, seed=2)
    cold_s = time.perf_counter() - start

    path = os.path.join(workdir, f"snap-{n}")
    start = time.perf_counter()
    engine.save(path)
    save_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = load_engine(path, mmap=True, verify=False)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    verified = load_engine(path, mmap=True, verify=True)
    warm_verified_s = time.perf_counter() - start

    reference = _probe(engine)
    assert _probe(warm) == reference, f"warm-started engine diverged at n={n}"
    assert _probe(verified) == reference, f"verified load diverged at n={n}"

    return {
        "n": n,
        "cold_build_s": cold_s,
        "save_s": save_s,
        "warm_load_s": warm_s,
        "warm_load_verified_s": warm_verified_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "speedup_verified": cold_s / max(warm_verified_s, 1e-12),
    }


def main() -> None:
    report_only = os.environ.get("REPRO_STORE_GATE", "").lower() == "report"
    workdir = tempfile.mkdtemp(prefix="repro-store-bench-")
    points = []
    gate_speedup = None
    print(
        f"{'n':>8} {'cold build':>12} {'save':>10} {'warm load':>11} "
        f"{'warm+verify':>12} {'speedup':>9}"
    )
    try:
        for n in SIZES:
            point = bench_size(n, workdir)
            points.append(point)
            print(
                f"{n:>8} {point['cold_build_s']:>11.2f}s {point['save_s']:>9.2f}s "
                f"{point['warm_load_s']:>10.3f}s {point['warm_load_verified_s']:>11.3f}s "
                f"{point['speedup']:>8.1f}x"
            )
            if n == GATE_SIZE:
                gate_speedup = point["speedup"]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    from repro.bench.artifacts import write_bench_json

    print(
        "wrote "
        + str(
            write_bench_json(
                "store",
                {
                    "sizes": list(SIZES),
                    "num_landmarks": NUM_LANDMARKS,
                    "gate_size": GATE_SIZE,
                    "gate_speedup_required": GATE_SPEEDUP,
                    "gate_speedup_measured": gate_speedup,
                    "points": points,
                },
            )
        )
    )

    verdict = (
        f"warm start at n={GATE_SIZE}: {gate_speedup:.1f}x faster than cold "
        f"rebuild (gate: >= {GATE_SPEEDUP}x)"
    )
    if report_only:
        print(f"[report-only] {verdict}")
    else:
        assert gate_speedup >= GATE_SPEEDUP, verdict
        print(f"PASS {verdict}")


if __name__ == "__main__":
    main()
