"""Tests for landmark selection and ALT bound validity."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.landmarks import LandmarkIndex, select_landmarks
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from tests.conftest import random_graph

INF = math.inf


class TestSelection:
    def test_requested_count(self):
        g = random_graph(50, 4.0, seed=1)
        for strategy in ("random", "farthest", "degree"):
            assert len(select_landmarks(g, 5, strategy, seed=3)) == 5

    def test_landmarks_are_distinct(self):
        g = random_graph(50, 4.0, seed=1)
        marks = select_landmarks(g, 8, "farthest")
        assert len(set(marks)) == 8

    def test_degree_strategy_picks_hubs(self):
        g = random_graph(60, 5.0, seed=2)
        marks = select_landmarks(g, 3, "degree")
        degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
        assert sorted((g.degree(v) for v in marks), reverse=True) == degrees[:3]

    def test_unknown_strategy(self):
        g = random_graph(10, 3.0, seed=1)
        with pytest.raises(ValueError):
            select_landmarks(g, 2, "mystery")

    def test_too_many_landmarks(self):
        g = random_graph(10, 3.0, seed=1)
        with pytest.raises(ValueError):
            select_landmarks(g, 11)

    def test_deterministic(self):
        g = random_graph(40, 4.0, seed=5)
        assert select_landmarks(g, 4, "farthest", 1) == select_landmarks(g, 4, "farthest", 1)
        assert select_landmarks(g, 4, "random", 1) == select_landmarks(g, 4, "random", 1)


class TestBounds:
    @pytest.fixture(scope="class")
    def setup(self):
        g = random_graph(70, 5.0, seed=7)
        lm = LandmarkIndex.build(g, m=4, seed=7)
        truth = {v: dijkstra_distances(g, v) for v in range(0, 70, 7)}
        return g, lm, truth

    def test_lower_bound_is_valid(self, setup):
        g, lm, truth = setup
        for u, dist in truth.items():
            for v in range(g.n):
                true_d = dist.get(v, INF)
                assert lm.lower_bound(u, v) <= true_d + 1e-9

    def test_upper_bound_is_valid(self, setup):
        g, lm, truth = setup
        for u, dist in truth.items():
            for v in range(g.n):
                true_d = dist.get(v, INF)
                ub = lm.upper_bound(u, v)
                if true_d == INF:
                    continue  # ub may be inf too; nothing to check
                assert ub >= true_d - 1e-9

    def test_bound_of_self_is_zero(self, setup):
        _, lm, _ = setup
        assert lm.lower_bound(3, 3) == 0.0

    def test_heuristic_matches_lower_bound(self, setup):
        g, lm, _ = setup
        h = lm.heuristic_to(11)
        for v in range(g.n):
            assert h(v) == lm.lower_bound(v, 11)

    def test_disconnected_pair_bound_is_inf(self):
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        lm = LandmarkIndex(g, [0])
        assert lm.lower_bound(0, 2) == INF
        assert lm.lower_bound(2, 3) == 0.0  # same component as each other,
        # but landmark 0 unreachable from both: uninformative, bound 0

    def test_vector_matches_tables(self):
        g = random_graph(30, 4.0, seed=9)
        lm = LandmarkIndex.build(g, m=3, seed=9)
        vec = lm.vector(5)
        for j in range(3):
            assert vec[j] == lm.dist[j][5]

    def test_max_finite_distance_positive(self):
        g = random_graph(30, 4.0, seed=9)
        lm = LandmarkIndex.build(g, m=3, seed=9)
        assert lm.max_finite_distance() > 0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_triangle_bounds(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 30)
    g = random_graph(n, 3.0, seed=seed % 999)
    lm = LandmarkIndex.build(g, m=min(3, n), seed=seed % 7)
    u, v = rng.randrange(n), rng.randrange(n)
    true_d = dijkstra_distances(g, u).get(v, INF)
    assert lm.lower_bound(u, v) <= true_d + 1e-9
    if true_d != INF:
        assert lm.upper_bound(u, v) >= true_d - 1e-9
