"""Public API surface: imports, __all__ hygiene, and docstrings.

A downstream user's first contact is ``import repro``; these tests pin
the promises the README makes.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.graph",
    "repro.spatial",
    "repro.index",
    "repro.topk",
    "repro.datasets",
    "repro.bench",
    "repro.plan",
    "repro.service",
    "repro.shard",
    "repro.sketch",
    "repro.store",
    "repro.stream",
    "repro.utils",
]


def test_version():
    assert repro.__version__ == "1.10.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import_and_document(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_readme_quickstart_names_exist():
    # The names used in README's quickstart snippet.
    from repro import GeoSocialEngine, gowalla_like  # noqa: F401

    assert callable(gowalla_like)
    assert hasattr(GeoSocialEngine, "query")
    assert hasattr(GeoSocialEngine, "move_user")


def test_methods_constant_documented_in_engine():
    from repro.core.engine import METHODS, GeoSocialEngine

    doc = inspect.getmodule(GeoSocialEngine).__doc__
    for method in METHODS:
        assert method in doc, f"method {method!r} missing from engine docs"


def test_public_classes_have_docstrings():
    public = [
        repro.GeoSocialEngine,
        repro.SocialGraph,
        repro.LocationTable,
        repro.AggregateIndex,
        repro.RankingFunction,
        repro.TopKBuffer,
        repro.SSRQResult,
        repro.SearchStats,
        repro.SocialFirstSearch,
        repro.SpatialFirstSearch,
        repro.TwofoldSearch,
        repro.AggregateIndexSearch,
        repro.BruteForceSearch,
        repro.SocialNeighborCache,
        repro.CachedSocialFirst,
    ]
    for cls in public:
        assert cls.__doc__ and cls.__doc__.strip(), f"{cls.__name__} lacks a docstring"


def test_dataset_builders_are_deterministic_across_import():
    a = repro.gowalla_like(n=200, seed=3)
    b = repro.gowalla_like(n=200, seed=3)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
