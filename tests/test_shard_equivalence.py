"""Cross-shard equivalence harness: the sharded engine must reproduce
the single engine's rankings exactly.

The core promise of :mod:`repro.shard` is that partitioning is purely a
performance/layout decision — never a semantics one.  This suite pins
it property-based: Hypothesis generates datasets (size, coverage,
degree, seeds), shard counts {1, 2, 4, 7}, both partitioner kinds, and
query parameters, and asserts that
:class:`~repro.shard.ShardedGeoSocialEngine` ranks exactly like
:class:`~repro.core.engine.GeoSocialEngine` for every paper method the
issue pins ({spa, tsa, ais}) and beyond — including tie-break order.

Exactness tiers (see ``repro/shard/engine.py`` for the why):

- *forward-Dijkstra methods* (spa, tsa and variants, sfa, bruteforce):
  bit-identical results, raw distances included;
- *ais family*: identical rankings; scores may differ by float
  associativity (≤ 1 ulp) because the bidirectional evaluation sums
  forward+backward parts at a schedule-dependent meeting vertex — the
  same noise the single engine shows between its own methods, which is
  why the repo-wide ``assert_same_scores`` uses a tolerance at all.

The property tests run under a fixed, derandomized Hypothesis profile
(registered as ``shard-ci`` and applied *per test*, so the global
profile other suites run under is untouched), making local and CI runs
byte-for-byte deterministic; pass ``--hypothesis-profile=<name>`` to
override via the plugin.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import GeoSocialEngine
from repro.graph.socialgraph import SocialGraph
from repro.shard import (
    GridPartitioner,
    KDTreePartitioner,
    ShardedGeoSocialEngine,
    make_partitioner,
)
from repro.spatial.point import LocationTable
from tests.conftest import random_instance

settings.register_profile(
    "shard-ci",
    max_examples=20,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
#: applied per test (decorator) — never via load_profile, which would
#: silently swap the global profile under every later-collected suite
SHARD_CI = settings.get_profile("shard-ci")

SHARD_COUNTS = (1, 2, 4, 7)
PINNED_METHODS = ("spa", "tsa", "ais")
#: methods whose per-user distances are schedule-independent (forward
#: Dijkstra / exhaustive): the sharded engine must match them bit-wise
EXACT_METHODS = ("spa", "tsa", "tsa-qc", "tsa-plain", "sfa", "bruteforce")


def build_pair(n, seed, coverage, n_shards, kind, avg_degree=6.0):
    """A (single, sharded) engine pair over one shared dataset."""
    graph, locations = random_instance(n, seed=seed, coverage=coverage, avg_degree=avg_degree)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    single = GeoSocialEngine(graph, locations.copy(), num_landmarks=3, s=3, seed=3)
    sharded = ShardedGeoSocialEngine(
        graph,
        locations.copy(),
        n_shards=n_shards,
        partitioner_kind=kind,
        num_landmarks=3,
        s=3,
        seed=3,
        max_workers=1,
    )
    return single, sharded


def assert_rankings_equal(a, b, method):
    """Rankings must match exactly (order included); raw fields must be
    bit-equal for schedule-independent methods and within float
    associativity for the ais family."""
    assert a.users == b.users, f"{method}: ranking differs: {a.users} vs {b.users}"
    if method in EXACT_METHODS:
        assert [(nb.user, nb.score, nb.social, nb.spatial) for nb in a] == [
            (nb.user, nb.score, nb.social, nb.spatial) for nb in b
        ], f"{method}: raw neighbor fields differ"
    else:
        for na, nb in zip(a, b):
            assert na.score == pytest.approx(nb.score, rel=1e-12, abs=1e-15), (
                f"{method}: score beyond float-associativity noise: "
                f"{na.score} vs {nb.score}"
            )


@SHARD_CI
@given(
    n=st.integers(min_value=10, max_value=48),
    seed=st.integers(min_value=0, max_value=2**16),
    coverage=st.sampled_from([1.0, 0.85, 0.6, 0.35]),
    n_shards=st.sampled_from(SHARD_COUNTS),
    kind=st.sampled_from(["grid", "kd"]),
    k=st.integers(min_value=1, max_value=8),
    alpha=st.sampled_from([0.0, 0.1, 0.3, 0.5, 0.8, 1.0]),
)
def test_property_rankings_equal_for_pinned_methods(
    n, seed, coverage, n_shards, kind, k, alpha
):
    single, sharded = build_pair(n, seed, coverage, n_shards, kind)
    located = list(single.locations.located_users())
    queries = located[:: max(1, len(located) // 4)][:4]
    for q in queries:
        for method in PINNED_METHODS:
            assert_rankings_equal(
                single.query(q, k=k, alpha=alpha, method=method),
                sharded.query(q, k=k, alpha=alpha, method=method),
                method,
            )


@SHARD_CI
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from(SHARD_COUNTS),
    kind=st.sampled_from(["grid", "kd"]),
)
def test_property_every_method_agrees(seed, n_shards, kind):
    """Beyond the pinned trio: the full method suite (spatial-index,
    social-stream, delegated, precomputed) stays equivalent."""
    single, sharded = build_pair(36, seed, 0.8, n_shards, kind)
    located = list(single.locations.located_users())
    q = located[len(located) // 2]
    for method in (
        "spa", "tsa", "tsa-plain", "tsa-qc", "sfa", "bruteforce",
        "ais", "ais-minus", "ais-bid", "ais-nosummary", "ais-cache",
    ):
        for alpha in (0.0, 0.4, 1.0):
            assert_rankings_equal(
                single.query(q, k=5, alpha=alpha, method=method, t=12),
                sharded.query(q, k=5, alpha=alpha, method=method, t=12),
                method,
            )


def test_tie_break_order_is_preserved():
    """Exact score ties must break identically (toward smaller ids):
    co-located users with no social edges are all tied at alpha=0."""
    n = 12
    graph = SocialGraph.from_edges(n, [])
    locations = LocationTable.empty(n)
    for u in range(n):
        # three co-located groups of four exactly tied users
        locations.set(u, float(u % 3), 0.0)
    single = GeoSocialEngine(graph, locations.copy(), num_landmarks=1, s=2, seed=0)
    for n_shards in SHARD_COUNTS:
        sharded = ShardedGeoSocialEngine(
            graph, locations.copy(), n_shards=n_shards,
            num_landmarks=1, s=2, seed=0, max_workers=1,
        )
        for q in range(n):
            a = single.query(q, k=6, alpha=0.0, method="spa")
            b = sharded.query(q, k=6, alpha=0.0, method="spa")
            assert [(nb.user, nb.score) for nb in a] == [
                (nb.user, nb.score) for nb in b
            ]
            # ties really exist and break toward smaller ids
            scores = [nb.score for nb in a]
            assert len(set(scores)) < len(scores)
            for s1, s2 in zip(a.neighbors, a.neighbors[1:]):
                assert (s1.score, s1.user) < (s2.score, s2.user)


def test_unlocated_query_user_raises_identically():
    graph, locations = random_instance(30, seed=9, coverage=0.5)
    unlocated = next(
        u for u in range(graph.n) if not locations.has_location(u)
    )
    single = GeoSocialEngine(graph, locations.copy(), num_landmarks=2, s=2, seed=1)
    sharded = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=4, num_landmarks=2, s=2, seed=1
    )
    for method in ("spa", "tsa", "ais"):
        with pytest.raises(ValueError, match="no known location"):
            single.query(unlocated, k=3, alpha=0.4, method=method)
        with pytest.raises(ValueError, match="no known location"):
            sharded.query(unlocated, k=3, alpha=0.4, method=method)
    # pure social queries from unlocated users work on both
    a = single.query(unlocated, k=3, alpha=1.0, method="ais")
    b = sharded.query(unlocated, k=3, alpha=1.0, method="ais")
    assert a.users == b.users


def test_more_shards_than_occupied_regions():
    """7 shards over 2 tight clusters: most regions stay empty and are
    skipped, results still exact."""
    n = 16
    graph, _ = random_instance(n, seed=4, coverage=1.0)
    locations = LocationTable.empty(n)
    for u in range(n):
        base = (0.05, 0.05) if u % 2 else (0.95, 0.95)
        locations.set(u, base[0] + 0.001 * u, base[1])
    single = GeoSocialEngine(graph, locations.copy(), num_landmarks=2, s=2, seed=1)
    sharded = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=7, num_landmarks=2, s=2, seed=1
    )
    assert len(sharded.shard_sizes()) < 7  # empty regions never materialise
    for q in (0, 1, n - 1):
        for method in PINNED_METHODS:
            assert_rankings_equal(
                single.query(q, k=5, alpha=0.3, method=method),
                sharded.query(q, k=5, alpha=0.3, method=method),
                method,
            )


def test_parallel_scatter_matches_sequential_scatter():
    graph, locations = random_instance(60, seed=13, coverage=0.9)
    sequential = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=4, num_landmarks=3, s=3, seed=2, max_workers=1
    )
    parallel = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=4, num_landmarks=3, s=3, seed=2, max_workers=4
    )
    located = list(sequential.locations.located_users())
    for q in located[:8]:
        for method in PINNED_METHODS:
            a = sequential.query(q, k=5, alpha=0.3, method=method)
            b = parallel.query(q, k=5, alpha=0.3, method=method)
            assert a.users == b.users
            assert a.scores == b.scores
    parallel.close()
    sequential.close()


def test_process_scatter_pool_matches_inline():
    """The fork-based multi-core backend returns the same rankings as
    the in-process scatter, across update epochs (delta shipping keeps
    the warm workers coherent instead of re-forking them)."""
    from repro.shard import ProcessScatterPool

    graph, locations = random_instance(50, seed=17, coverage=0.9)
    sharded = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=4, num_landmarks=2, s=2, seed=1, max_workers=1
    )
    located = list(sharded.locations.located_users())
    batch = located[:8] + located[:2]  # duplicates collapse
    with ProcessScatterPool(sharded, processes=2) as pool:
        got = pool.query_many(batch, k=5, alpha=0.3, method="ais")
        want = [sharded.query(u, k=5, alpha=0.3, method="ais") for u in batch]
        for g, w in zip(got, want):
            assert g.users == w.users
        # location update bumps the epoch; the delta ships to the live
        # workers and the pool serves the new placement without a fork
        mover = located[0]
        sharded.move_user(mover, 0.5, 0.5)
        refreshed = pool.query_many([located[1]], k=5, alpha=0.3)[0]
        assert refreshed.users == sharded.query(located[1], k=5, alpha=0.3).users
        assert pool.info()["reforks"] == 0
        assert pool.info()["deltas_shipped"] > 0
    sharded.close()


def test_query_many_matches_query_loop():
    graph, locations = random_instance(40, seed=23, coverage=0.9)
    sharded = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=4, num_landmarks=2, s=2, seed=1
    )
    located = list(sharded.locations.located_users())[:6]
    batch = sharded.query_many(located, k=4, alpha=0.4)
    loop = [sharded.query(u, k=4, alpha=0.4) for u in located]
    assert [r.users for r in batch] == [r.users for r in loop]
    sharded.close()


# -- partitioner / bounds units ---------------------------------------


def test_grid_partitioner_covers_the_plane():
    table = LocationTable.from_dict(4, {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (0.2, 0.9), 3: (0.9, 0.1)})
    for n_shards in (1, 2, 3, 4, 5, 7, 9):
        part = GridPartitioner.fit(table, n_shards)
        assert part.n_shards == n_shards
        for x, y in [(-5.0, -5.0), (0.5, 0.5), (9.0, 0.2), (0.3, 99.0)]:
            assert 0 <= part.shard_of(x, y) < n_shards


def test_kd_partitioner_balances_and_covers():
    import random

    rng = random.Random(3)
    table = LocationTable.empty(64)
    for u in range(64):
        table.set(u, rng.random(), rng.random())
    for n_shards in (1, 2, 3, 5, 7, 8):
        part = KDTreePartitioner.fit(table, n_shards)
        assert part.n_shards == n_shards
        counts = [0] * n_shards
        for u in range(64):
            x, y = table.get(u)
            counts[part.shard_of(x, y)] += 1
        assert sum(counts) == 64
        if n_shards > 1:
            assert max(counts) <= 64  # total function; balance is best-effort
            assert min(counts) >= 0
        for x, y in [(-3.0, 0.5), (0.5, -3.0), (4.0, 4.0)]:
            assert 0 <= part.shard_of(x, y) < n_shards


def test_make_partitioner_rejects_unknown_kind():
    table = LocationTable.from_dict(2, {0: (0.0, 0.0), 1: (1.0, 1.0)})
    with pytest.raises(ValueError, match="unknown partitioner"):
        make_partitioner(table, 2, kind="voronoi")


def test_shard_bounds_admissible_under_churn():
    """The widen-only envelope must stay a valid lower bound through
    inserts, moves, and removals."""
    import random

    from repro.core.ranking import RankingFunction
    from repro.shard.bounds import ShardBounds

    graph, locations = random_instance(40, seed=31, coverage=1.0)
    single = GeoSocialEngine(graph, locations, num_landmarks=3, s=2, seed=5)
    lm = single.landmarks
    rng = random.Random(7)
    members: dict[int, tuple[float, float]] = {}
    bounds = ShardBounds(lm.m)
    for step in range(200):
        u = rng.randrange(40)
        if u in members and rng.random() < 0.3:
            del members[u]
            bounds.remove_member()
        else:
            x, y = rng.random(), rng.random()
            if u in members:
                bounds.update_member(x, y)
            else:
                bounds.add_member(x, y, lm.vector(u))
            members[u] = (x, y)
        assert bounds.count == len(members)

    import math

    from repro.index.bounds import minf, social_lower_bound_vertex

    rank = RankingFunction(0.4, single.normalization)
    for q in range(0, 40, 3):
        qx, qy = locations.get(q)
        qvec = lm.vector(q)
        group_social = bounds.social_bound(qvec)
        group_spatial = bounds.spatial_lower_bound(qx, qy)
        score_bound = bounds.score_lower_bound(rank, qx, qy, qvec)
        for u, (x, y) in members.items():
            d = math.hypot(qx - x, qy - y)
            # spatial envelope bounds every member's true distance
            assert group_spatial <= d + 1e-12
            # Lemma 2's group bound never exceeds the per-vertex bound
            # of any member whose vector was widened in
            assert group_social <= social_lower_bound_vertex(qvec, lm.vector(u)) + 1e-12
            # ... so the combined MINF bounds every member's best score
            assert score_bound <= minf(
                rank, social_lower_bound_vertex(qvec, lm.vector(u)), d
            ) + 1e-12


def test_scatter_stats_accounting():
    graph, locations = random_instance(50, seed=41, coverage=1.0)
    sharded = ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=2, s=2, seed=1, max_workers=1
    )
    located = list(sharded.locations.located_users())
    for q in located[:10]:
        sharded.query(q, k=3, alpha=0.2, method="ais")
    info = sharded.scatter_info()
    assert info["scatter_queries"] == 10
    assert info["shards_searched"] + info["shards_pruned"] == info["shards_considered"]
    assert info["shards_searched"] >= info["scatter_queries"]  # home always runs
    sharded.query(located[0], k=3, alpha=1.0, method="ais")  # delegated
    assert sharded.scatter_info()["delegated_queries"] == 1
    sharded.close()
