"""``repro.utils.rng.make_rng`` — the seed-handling contract every
stochastic component (generators, workloads, landmark selection)
relies on for reproducibility."""

from __future__ import annotations

import random

from repro.utils.rng import make_rng


def test_integer_seed_is_deterministic():
    a = make_rng(1234)
    b = make_rng(1234)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_distinct_seeds_diverge():
    assert [make_rng(1).random() for _ in range(5)] != [
        make_rng(2).random() for _ in range(5)
    ]


def test_existing_generator_passes_through_unchanged():
    rng = random.Random(7)
    rng.random()  # advance: the state must be preserved, not reseeded
    state = rng.getstate()
    assert make_rng(rng) is rng
    assert rng.getstate() == state


def test_none_yields_a_usable_generator():
    rng = make_rng(None)
    assert isinstance(rng, random.Random)
    assert 0.0 <= rng.random() < 1.0


def test_returns_isolated_generators():
    """Two generators from the same seed are independent objects:
    consuming one never perturbs the other (call-order independence)."""
    a = make_rng(99)
    b = make_rng(99)
    assert a is not b
    [a.random() for _ in range(100)]
    assert b.random() == make_rng(99).random()
